"""The ``repro`` console entry point.

One installed command, subcommand-per-driver::

    repro suite --jobs 4 --experiment all      # the paper's evaluation suite
    repro serve --port 8423                    # the HTTP schedule-job server

Both subcommands are thin ``main(argv)`` functions over the same
:mod:`repro.api` facade the analysis drivers use, so the CLI adds no
behaviour of its own — ``repro suite`` is byte-identical to the
library path, and ``repro serve`` dispatches through the identical
batch runner + result cache.
"""

from __future__ import annotations

import sys
from typing import List, Optional

_USAGE = """\
usage: repro <command> [options]

commands:
  suite    run the paper's evaluation suite (figures 10-12 experiments)
  serve    run the asyncio HTTP schedule-job server

Run 'repro <command> --help' for command options.
"""


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0 if argv else 2
    command, rest = argv[0], argv[1:]
    if command == "suite":
        from repro.cli.suite import main as suite_main

        return suite_main(rest)
    if command == "serve":
        from repro.cli.serve import main as serve_main

        return serve_main(rest)
    print(f"repro: unknown command {command!r}\n\n{_USAGE}", end="", file=sys.stderr)
    return 2
