"""The ``repro suite`` subcommand: the paper's evaluation suite.

Schedules the selected benchmarks on the selected machine configurations
with CARS and with the proposed technique, sharded across ``--jobs``
worker processes, and emits the per-benchmark speed-up series
(Figure 11), the compile-effort distribution (Figure 10) and optionally
the cross-input comparison (Figure 12) as tables on stdout and as JSON.
Every experiment drives :func:`repro.api.schedule_many` — the same
facade the HTTP job server dispatches through.

The JSON has two top-level keys: ``results`` is a pure function of the
workload definition (schedule digests, dp work, cycle counts — byte-
identical for any ``--jobs`` value), while ``meta`` carries the
non-deterministic context (wall time, worker count, host).  The CI
perf-regression gate and the determinism tests compare ``results`` only.

Usage::

    repro suite --jobs 4
    repro suite --suite specint --blocks 4
    repro suite --experiment all --output suite.json
    repro suite --benchmarks 130.li g721dec --jobs auto

(``scripts/run_suite.py`` remains as a thin wrapper for environments
without an installed entry point.)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import replace
from pathlib import Path

from repro.analysis import EffortThresholds, format_compile_time_table, format_speedup_series
from repro.analysis.experiments import (
    backend_comparisons,
    run_backend_records,
    run_compile_time_experiment,
    run_cross_input_experiment,
    run_scenario_matrix,
    run_speedup_records,
)
from repro.machine import (
    all_machine_specs,
    machine_families,
    machine_family,
    paper_configurations,
)
from repro.runner import (
    BatchScheduler,
    CacheSpec,
    CacheStats,
    fingerprint_digest,
    shared_pool_stats,
)
from repro.scheduler import (
    BackendSpec,
    UnknownStageError,
    VcsConfig,
    available_backends,
    available_stages,
    backend_info,
    resolve_stage_order,
)
from repro.scheduler.registry import SCHEDULER_ENV_VAR, VCS_ENV_PREFIX
from repro.workloads import (
    all_profiles,
    build_suite,
    build_workload_families,
    profile_by_name,
    workload_families,
    workload_family,
)

EXPERIMENTS = ("speedup", "compile-time", "cross-input", "backends", "matrix")
#: Backends swept by the ``backends`` experiment: everything registered,
#: with the CARS baseline first (same source of truth as --list-schedulers,
#: so newly registered backends join the sweep automatically).
BACKEND_SWEEP = ("cars",) + tuple(b for b in available_backends() if b != "cars")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--experiment",
        choices=EXPERIMENTS + ("all",),
        default="speedup",
        help="which evaluation to run (default: speedup)",
    )
    parser.add_argument(
        "--scheduler",
        default=None,
        metavar="NAME",
        help="proposed-side scheduler backend (see --list-schedulers; "
        "default: $REPRO_SCHEDULER or vcs)",
    )
    parser.add_argument(
        "--stages",
        metavar="NAME[,NAME...]",
        help="explicit decision-stage order for VCS-derived backends "
        "(names from the stage pipeline; extraction is appended when omitted)",
    )
    parser.add_argument(
        "--list-schedulers",
        action="store_true",
        help="list the registered scheduler backends and exit",
    )
    parser.add_argument(
        "--list-machines",
        action="store_true",
        help="list the known machine configurations (every family's specs) and exit",
    )
    parser.add_argument(
        "--list-machine-families",
        action="store_true",
        help="list the registered machine families and exit",
    )
    parser.add_argument(
        "--list-workload-families",
        action="store_true",
        help="list the registered workload families and exit",
    )
    parser.add_argument(
        "--suite",
        choices=("all", "specint", "mediabench"),
        default="all",
        help="benchmark suite to run (default: all 14 applications)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        help="explicit benchmark names (overrides --suite)",
    )
    parser.add_argument(
        "--machines",
        nargs="+",
        metavar="NAME",
        help="machine configuration names from any family "
        "(default: the paper's three)",
    )
    parser.add_argument(
        "--machine-family",
        nargs="+",
        metavar="NAME",
        dest="machine_families",
        help="machine families: the figure experiments run on every machine "
        "of the selected families, and the matrix experiment sweeps them "
        "(default: paper)",
    )
    parser.add_argument(
        "--workload-family",
        nargs="+",
        metavar="NAME",
        dest="workload_families",
        help="workload families: the figure experiments run every profile of "
        "the selected families, and the matrix experiment sweeps them "
        "(default: the --suite selection; matrix default: kernels)",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=2,
        help="superblocks generated per benchmark (default: 2)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=None,
        help="deduction-work budget per block "
        "(default: $REPRO_VCS_WORK_BUDGET or 60000)",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help="worker processes: an integer or 'auto' (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="jobs per pool task (default: computed from the batch size)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job time allowance in seconds (default: none)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the on-disk result cache for this run "
        "(equivalent to REPRO_CACHE=off)",
    )
    parser.add_argument(
        "--cache-dir",
        metavar="PATH",
        default=None,
        help="result-cache directory (default: $REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    parser.add_argument("--output", metavar="PATH", help="write the JSON report here")
    parser.add_argument("--quiet", action="store_true", help="suppress the stdout tables")
    return parser.parse_args(argv)


def select_profiles(args: argparse.Namespace):
    if args.benchmarks:
        try:
            return [profile_by_name(name) for name in args.benchmarks]
        except KeyError as exc:
            # profile_by_name raises KeyError with a full message already.
            known = sorted(p.name for p in all_profiles())
            raise SystemExit(f"{exc.args[0]}; known: {known}") from None
    profiles = all_profiles()
    if args.suite != "all":
        profiles = [p for p in profiles if p.suite == args.suite]
    return profiles


def select_workload_families(names):
    """Resolve workload family names (non-zero exit on unknown ones)."""
    try:
        return [workload_family(name) for name in names]
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None


def select_machine_families(names):
    """Resolve machine family names (non-zero exit on unknown ones)."""
    try:
        return [machine_family(name) for name in names]
    except KeyError as exc:
        raise SystemExit(exc.args[0]) from None


def build_workloads(args: argparse.Namespace):
    """The workload populations the figure experiments run on.

    ``--workload-family`` builds the selected families (any registered
    family, parametric or paper); otherwise the ``--suite``/
    ``--benchmarks`` profile selection is generated as before."""
    if args.workload_families:
        try:
            pairs = build_workload_families(args.workload_families, args.blocks)
        except (KeyError, ValueError) as exc:
            raise SystemExit(exc.args[0]) from None
        return [workload for _, workload in pairs]
    return build_suite(select_profiles(args), blocks_per_benchmark=args.blocks)


def select_machines(args: argparse.Namespace):
    if args.machines:
        specs = all_machine_specs()
        missing = [name for name in args.machines if name not in specs]
        if missing:
            raise SystemExit(
                f"unknown machine(s) {missing}; known: {sorted(specs)} "
                "(see --list-machines)"
            )
        return [specs[name].to_machine() for name in args.machines]
    if args.machine_families:
        machines = []
        seen = set()
        for family in select_machine_families(args.machine_families):
            for machine in family.machines():
                if machine.name not in seen:
                    seen.add(machine.name)
                    machines.append(machine)
        return machines
    return paper_configurations()


def select_scheduler(args: argparse.Namespace) -> str:
    """The proposed-side backend: ``--scheduler`` wins over the
    ``REPRO_SCHEDULER`` environment override; validated against the
    registry (non-zero exit on unknown names)."""
    name = args.scheduler or os.environ.get(SCHEDULER_ENV_VAR) or "vcs"
    if name not in available_backends():
        raise SystemExit(
            f"unknown scheduler {name!r}; known: {available_backends()} "
            "(see --list-schedulers)"
        )
    return name


def build_vcs_config(args: argparse.Namespace) -> VcsConfig:
    """The VCS knobs shared by every VCS-derived backend of the run:
    ``REPRO_VCS_<FIELD>`` environment overrides first, then the explicit
    ``--stages`` flag on top.  Only the VCS fields are read here — the
    backend name is :func:`select_scheduler`'s business, so a stale
    ``REPRO_SCHEDULER`` cannot abort a run that picked a valid
    ``--scheduler`` explicitly."""
    vcs_env = {
        key: value for key, value in os.environ.items() if key.startswith(VCS_ENV_PREFIX)
    }
    try:
        config = BackendSpec.from_env(env=vcs_env).vcs or VcsConfig()
        if args.stages:
            names = tuple(name.strip() for name in args.stages.split(",") if name.strip())
            config = replace(config, stage_order=names)
        # Resolve once so a bad order fails before any scheduling happens.
        resolve_stage_order(config)
    except (UnknownStageError, ValueError) as exc:
        raise SystemExit(str(exc)) from None
    return config


def build_cache(args: argparse.Namespace) -> CacheSpec:
    """The result-cache configuration of this run: ``--no-cache`` /
    ``--cache-dir`` win over ``REPRO_CACHE`` / ``REPRO_CACHE_DIR``
    (non-zero exit on contradictory or unusable selections)."""
    if args.no_cache and args.cache_dir:
        raise SystemExit(
            "--no-cache and --cache-dir are mutually exclusive: --no-cache "
            "disables the result cache entirely, --cache-dir relocates it "
            "(drop one of the two)"
        )
    if args.no_cache:
        return CacheSpec.disabled()
    if args.cache_dir:
        path = Path(args.cache_dir)
        if path.exists() and not path.is_dir():
            raise SystemExit(
                f"--cache-dir {str(path)!r} exists and is not a directory; "
                "pass a directory path (it is created on the first store)"
            )
        return CacheSpec.from_env(cache_dir=str(path))
    return CacheSpec.from_env()


def list_schedulers() -> int:
    print("registered scheduler backends:")
    for name in available_backends():
        info = backend_info(name)
        knobs = " [takes --stages and VCS knobs]" if info.uses_vcs_config else ""
        print(f"  {name:8s} {info.description}{knobs}")
    print(f"\ndecision stages (VCS pipeline order): {', '.join(available_stages())}")
    return 0


def list_machines() -> int:
    print("known machine configurations (by family):")
    for family in machine_families():
        print(f"{family.name}: {family.description}")
        for spec in family.specs:
            print(f"  {spec.name:16s} {spec.describe()}")
    return 0


def list_machine_families() -> int:
    print("registered machine families:")
    for family in machine_families():
        print(f"  {family.name:16s} {len(family.specs):2d} machines  {family.description}")
    return 0


def list_workload_families() -> int:
    print("registered workload families:")
    for family in workload_families():
        count = len(family.benchmark_names)
        print(f"  {family.name:12s} {count:2d} workloads  {family.description}")
    return 0


def comparison_row(comparison) -> dict:
    return {
        "benchmark": comparison.name,
        "suite": comparison.suite,
        "n_blocks": comparison.n_blocks,
        "baseline_cycles": comparison.baseline_cycles,
        "proposed_cycles": comparison.proposed_cycles,
        "speedup": comparison.speedup,
        "fallback_fraction": comparison.fallback_fraction,
    }


def effort_row(stats, thresholds: EffortThresholds) -> dict:
    return {
        "scheduler": stats.scheduler,
        "machine": stats.machine,
        "n_blocks": stats.n_blocks,
        "total_work": stats.total_work,
        "timed_out_blocks": stats.timed_out_blocks,
        "fractions": stats.fractions(thresholds),
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.list_schedulers:
        return list_schedulers()
    if args.list_machines:
        return list_machines()
    if args.list_machine_families:
        return list_machine_families()
    if args.list_workload_families:
        return list_workload_families()
    scheduler = select_scheduler(args)
    vcs_config = build_vcs_config(args)
    # Explicit --budget wins over the REPRO_VCS_WORK_BUDGET override the
    # config layer read from the environment.
    if args.budget is not None:
        budget = args.budget
    elif vcs_config.work_budget is not None:
        budget = vcs_config.work_budget
    else:
        budget = 60_000
    machines = select_machines(args)
    runner = BatchScheduler(jobs=args.jobs, chunk_size=args.chunk_size, timeout=args.timeout)
    cache_spec = build_cache(args)
    cache_stats = CacheStats()
    experiments = EXPERIMENTS if args.experiment == "all" else (args.experiment,)
    # The matrix sweeps whole families; the figure experiments a flat
    # workload x machine selection.
    matrix_machine_families = args.machine_families or ["paper"]
    matrix_workload_families = args.workload_families or ["kernels"]
    if "matrix" in experiments:
        select_machine_families(matrix_machine_families)
        select_workload_families(matrix_workload_families)

    # The figure-suite population is only generated when a figure
    # experiment will schedule it; a matrix-only run describes its
    # workloads in the results["matrix"] section instead.
    figure_experiments = tuple(name for name in experiments if name != "matrix")
    suite = build_workloads(args) if figure_experiments else []
    n_blocks = sum(w.n_blocks for w in suite)
    # Jobs per (block, machine): the backend sweep schedules every
    # registered backend, the figure experiments a (baseline, proposed)
    # pair.  The matrix enumerates its own cross product and reports it
    # when it runs.
    def experiment_jobs(name: str) -> int:
        if name == "matrix":
            return 0
        per_block = len(BACKEND_SWEEP) if name == "backends" else 2
        return per_block * n_blocks * len(machines)

    total_jobs = sum(experiment_jobs(name) for name in experiments)
    if not args.quiet:
        print(
            f"[suite] {len(suite)} benchmarks x {args.blocks} blocks x "
            f"{len(machines)} machines ({total_jobs} jobs over "
            f"{len(experiments)} experiment(s)) "
            f"on {runner.n_workers} worker(s), proposed backend {scheduler!r}"
        )

    results: dict = {
        "workload": {
            "benchmarks": [w.name for w in suite],
            "blocks_per_benchmark": args.blocks,
            "machines": [m.name for m in machines],
            "work_budget": budget,
            "scheduler": scheduler,
            "stage_order": list(resolve_stage_order(vcs_config)),
        },
    }
    t0 = time.perf_counter()

    if "speedup" in experiments:
        grouped = run_speedup_records(
            suite,
            machines,
            work_budget=budget,
            vcs_config=vcs_config,
            runner=runner,
            schedulers=("cars", scheduler),
            cache=cache_spec,
            cache_stats=cache_stats,
        )
        results["speedup"] = {
            machine.name: [record.comparison() for record in grouped[machine.name]]
            for machine in machines
        }
        results["schedule_digests"] = {
            machine.name: fingerprint_digest(
                fp for record in grouped[machine.name] for fp in record.fingerprints()
            )
            for machine in machines
        }
        results["dp_work"] = {
            machine.name: sum(
                result.work
                for record in grouped[machine.name]
                for result in record.baseline_results + record.proposed_results
            )
            for machine in machines
        }
        if not args.quiet:
            for machine in machines:
                print(f"\n=== speed-up over CARS | {machine.name} ===")
                print(format_speedup_series(results["speedup"][machine.name]))
        results["speedup"] = {
            name: [comparison_row(c) for c in rows] for name, rows in results["speedup"].items()
        }

    if "backends" in experiments:
        backend_records = run_backend_records(
            suite,
            machines,
            BACKEND_SWEEP,
            work_budget=budget,
            vcs_config=vcs_config,
            runner=runner,
            cache=cache_spec,
            cache_stats=cache_stats,
        )
        rows = [
            {
                "backend": record.backend,
                "benchmark": record.workload.name,
                "machine": record.machine.name,
                "total_work": record.total_work,
                "total_cycles": sum(r.total_cycles for r in record.results if r.ok),
                "fallback_blocks": sum(1 for r in record.results if r.fallback_used),
            }
            for record in backend_records
        ]
        digests = {
            backend: fingerprint_digest(
                fp
                for record in backend_records
                if record.backend == backend
                for fp in record.fingerprints()
            )
            for backend in BACKEND_SWEEP
        }
        grouped = backend_comparisons(backend_records, baseline="cars")
        results["backends"] = {
            "rows": rows,
            "schedule_digests": digests,
            "speedup_vs_cars": {
                machine_name: {
                    backend: [comparison_row(c) for c in comparisons]
                    for backend, comparisons in by_backend.items()
                }
                for machine_name, by_backend in grouped.items()
            },
        }
        if not args.quiet:
            for machine in machines:
                print(f"\n=== backend comparison vs CARS | {machine.name} ===")
                for backend, comparisons in grouped[machine.name].items():
                    print(f"-- {backend} --")
                    print(format_speedup_series(comparisons))

    if "compile-time" in experiments:
        thresholds = EffortThresholds(
            small=max(budget // 30, 500),
            medium=max(budget // 4, 2000),
            large=budget,
        )
        stats = run_compile_time_experiment(
            suite,
            machines,
            thresholds,
            runner=runner,
            vcs_config=vcs_config,
            schedulers=("cars", scheduler),
            cache=cache_spec,
            cache_stats=cache_stats,
        )
        if not args.quiet:
            print("\n=== compile-effort distribution ===")
            print(format_compile_time_table(stats, thresholds))
        results["compile_time"] = {
            "thresholds": dict(zip(thresholds.labels, thresholds.as_tuple())),
            "rows": [effort_row(s, thresholds) for s in stats],
        }

    if "cross-input" in experiments:
        grouped = run_cross_input_experiment(
            suite,
            machines,
            work_budget=budget,
            runner=runner,
            vcs_config=vcs_config,
            schedulers=("cars", scheduler),
            cache=cache_spec,
            cache_stats=cache_stats,
        )
        if not args.quiet:
            for machine in machines:
                print(f"\n=== cross-input (train-profile scheduling) | {machine.name} ===")
                print(format_speedup_series(grouped[machine.name]))
        results["cross_input"] = {
            name: [comparison_row(c) for c in rows] for name, rows in grouped.items()
        }

    if "matrix" in experiments:
        backends = ("cars", scheduler) if scheduler != "cars" else ("cars",)
        cells, _records = run_scenario_matrix(
            matrix_machine_families,
            matrix_workload_families,
            backends=backends,
            blocks_per_benchmark=args.blocks,
            work_budget=budget,
            vcs_config=vcs_config,
            runner=runner,
            cache=cache_spec,
            cache_stats=cache_stats,
        )
        results["matrix"] = {
            "machine_families": list(matrix_machine_families),
            "workload_families": list(matrix_workload_families),
            "backends": list(backends),
            "cells": [cell.as_row() for cell in cells],
        }
        if not args.quiet:
            print(
                f"\n=== scenario matrix | {len(cells)} cells "
                f"({'+'.join(matrix_machine_families)} x "
                f"{'+'.join(matrix_workload_families)} x {'+'.join(backends)}) ==="
            )
            header = (
                f"{'machine':18s} {'workloads':12s} {'backend':8s} "
                f"{'blocks':>6s} {'dp_work':>10s} {'cycles':>12s} {'fb':>3s}"
            )
            print(header)
            for cell in cells:
                print(
                    f"{cell.machine:18s} {cell.workload_family:12s} "
                    f"{cell.backend:8s} {cell.n_blocks:6d} {cell.dp_work:10d} "
                    f"{cell.total_cycles:12.0f} {cell.fallback_blocks:3d}"
                )

    wall = time.perf_counter() - t0
    report = {
        "meta": {
            "jobs": runner.n_workers,
            "cpu_count": os.cpu_count(),
            "wall_time_s": wall,
            "experiments": list(experiments),
            "python": sys.version.split()[0],
            "cache": {
                "enabled": cache_spec.enabled,
                "dir": cache_spec.root if cache_spec.enabled else None,
                **cache_stats.to_dict(),
            },
            "pool": shared_pool_stats(),
        },
        "results": results,
    }
    if not args.quiet:
        per_sec = total_jobs / wall if wall > 0 else 0.0
        cache_note = (
            f", cache {cache_stats.hits}/{cache_stats.lookups} hits"
            if cache_spec.enabled
            else ", cache off"
        )
        print(
            f"\n[suite] wall time {wall:.2f}s "
            f"({per_sec:.1f} schedules/s, {runner.n_workers} worker(s){cache_note})"
        )
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"[suite] wrote {args.output}")
    return 0
