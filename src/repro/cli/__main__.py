"""``python -m repro.cli`` — the uninstalled form of the ``repro`` command."""

from repro.cli import main

raise SystemExit(main())
