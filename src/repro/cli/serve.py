"""The ``repro serve`` subcommand: run the asyncio HTTP job server.

Binds a :class:`repro.service.JobServer` on the configured host/port
(``--host``/``--port`` beat ``REPRO_SERVICE_HOST``/``REPRO_SERVICE_PORT``
beat the defaults, the :class:`repro.config.RuntimeConfig` precedence)
and serves until interrupted.  The server dispatches every job through
:func:`repro.api.schedule_many` — the exact batch-runner path — so HTTP
results are byte-identical to local runs and repeated submissions are
result-cache hits.

Usage::

    repro serve --port 8423 --jobs 4
    REPRO_SERVICE_PORT=8423 repro serve
"""

from __future__ import annotations

import argparse
import asyncio
from typing import List, Optional

from repro.config import RuntimeConfig
from repro.runner.batch import BatchScheduler
from repro.runner.cache import CacheSpec
from repro.service.server import JobServer


def parse_args(argv: Optional[List[str]] = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Serve schedule jobs over HTTP through the batch runner.",
    )
    parser.add_argument(
        "--host",
        default=None,
        help="bind address (default: REPRO_SERVICE_HOST or 127.0.0.1)",
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="bind port; 0 picks an ephemeral port "
        "(default: REPRO_SERVICE_PORT or 0)",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help="worker processes per dispatch round: a count or 'auto' "
        "(default: REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="max jobs folded into one dispatch round (default: worker count)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job wall-clock timeout in seconds "
        "(default: REPRO_SERVICE_TIMEOUT or none)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="disable the content-addressed result cache (cold computes only)",
    )
    parser.add_argument(
        "--cache-dir",
        default=None,
        help="result-cache root (default: REPRO_CACHE_DIR or ~/.cache/repro)",
    )
    return parser.parse_args(argv)


def build_server(args: argparse.Namespace) -> JobServer:
    overrides = {}
    if args.host is not None:
        overrides["service_host"] = args.host
    if args.port is not None:
        overrides["service_port"] = args.port
    if args.jobs is not None:
        overrides["jobs"] = args.jobs
    if args.timeout is not None:
        overrides["service_timeout"] = args.timeout
    if args.no_cache:
        overrides["cache"] = "off"
    if args.cache_dir is not None:
        overrides["cache_dir"] = args.cache_dir
    config = RuntimeConfig.load(**overrides)
    runner = BatchScheduler(jobs=config.jobs, timeout=config.service_timeout)
    cache = CacheSpec.from_env(enabled=config.cache)
    if args.cache_dir is not None and config.cache:
        cache = CacheSpec(enabled=True, root=config.cache_dir, salt=cache.salt)
    return JobServer(
        runner=runner, cache=cache, max_batch=args.max_batch, config=config
    )


async def _serve(server: JobServer) -> None:
    await server.start()
    print(f"repro serve: listening on {server.url}", flush=True)
    print(
        f"repro serve: {server.runner.n_workers} worker(s), "
        f"cache {'on at ' + server.cache.root if server.cache.enabled else 'off'}",
        flush=True,
    )
    try:
        await server.serve_forever()
    finally:
        await server.stop()


def main(argv: Optional[List[str]] = None) -> int:
    args = parse_args(argv)
    server = build_server(args)
    try:
        asyncio.run(_serve(server))
    except KeyboardInterrupt:
        print("repro serve: interrupted, shutting down", flush=True)
    return 0
