"""Evaluation harness: metrics, compile-effort statistics and reporting.

This package turns per-block :class:`~repro.scheduler.schedule.ScheduleResult`
objects into the aggregates the paper reports: total dynamic cycles and
speed-ups per benchmark/configuration (Figure 11), the distribution of
compile effort across blocks and thresholds (Figure 10), and the cross-input
profiling comparison (Figure 12).
"""

from repro.analysis.metrics import (
    BlockComparison,
    BenchmarkComparison,
    compare_block,
    evaluate_benchmark,
    speedup,
    geometric_mean,
    evaluated_awct,
)
from repro.analysis.compile_time import (
    EffortThresholds,
    CompileEffortStats,
    collect_effort,
    fraction_within,
)
from repro.analysis.report import (
    format_table,
    format_speedup_series,
    format_compile_time_table,
)
from repro.analysis.experiments import (
    ScenarioCell,
    run_scenario_matrix,
)

__all__ = [
    "ScenarioCell",
    "run_scenario_matrix",
    "BlockComparison",
    "BenchmarkComparison",
    "compare_block",
    "evaluate_benchmark",
    "speedup",
    "geometric_mean",
    "evaluated_awct",
    "EffortThresholds",
    "CompileEffortStats",
    "collect_effort",
    "fraction_within",
    "format_table",
    "format_speedup_series",
    "format_compile_time_table",
]
