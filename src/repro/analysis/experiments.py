"""End-to-end experiment runners used by the benchmark harness and examples.

Each function reproduces the workflow of one of the paper's evaluation
figures: schedule every block of a workload with CARS and with the proposed
technique (at a given compile-effort threshold), aggregate the results and
return both the raw records and the formatted report.

Every driver executes through the parallel runner
(:mod:`repro.runner`): the full (workload, machine, block) cross product
of an experiment is enumerated up front as one flat job list, sharded
across worker processes, and merged back in enumeration order — so the
records an experiment returns are byte-identical whether it ran serially
(the ``REPRO_JOBS=1`` default) or on every core of the machine.

Schedulers are selected by registry name (:mod:`repro.scheduler.registry`),
so the same drivers compare any baseline/proposed backend pair
(``run_workload(..., schedulers=("cars", "hybrid"))``), and
:func:`run_backend_records` / :func:`run_backend_comparison` sweep an
arbitrary backend list as one flat batch — the Figure 11-style
backend-vs-backend experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.compile_time import CompileEffortStats, EffortThresholds, collect_effort
from repro.analysis.metrics import (
    BenchmarkComparison,
    compare_block,
    evaluate_benchmark,
)
from repro.machine.families import machine_family
from repro.machine.machine import ClusteredMachine
from repro.api import schedule_many
from repro.runner import (
    SCHEDULER_KINDS,
    BatchScheduler,
    CacheStats,
    ScheduleJob,
    enumerate_workload_jobs,
    fingerprint_digest,
)
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig
from repro.workloads.families import build_workload_families
from repro.workloads.suite import BenchmarkWorkload, train_variant


@dataclass
class ExperimentRecord:
    """Raw results of scheduling one workload on one machine."""

    workload: BenchmarkWorkload
    machine: ClusteredMachine
    baseline_results: List[ScheduleResult] = field(default_factory=list)
    proposed_results: List[ScheduleResult] = field(default_factory=list)

    def comparison(self, evaluation_blocks: Optional[Sequence] = None) -> BenchmarkComparison:
        blocks = []
        for index, (base, prop) in enumerate(zip(self.baseline_results, self.proposed_results)):
            eval_block = evaluation_blocks[index] if evaluation_blocks is not None else None
            blocks.append(compare_block(base, prop, evaluation_block=eval_block))
        return evaluate_benchmark(
            self.workload.name, self.workload.suite, self.machine.name, blocks
        )

    def effort(self) -> Tuple[CompileEffortStats, CompileEffortStats]:
        return (
            collect_effort("CARS", self.machine.name, self.baseline_results),
            collect_effort("VCS", self.machine.name, self.proposed_results),
        )

    def fingerprints(self) -> List[list]:
        """Canonical fingerprints of every result, baseline then proposed
        per block — the payload the determinism checks compare."""
        out: List[list] = []
        for base, prop in zip(self.baseline_results, self.proposed_results):
            out.append(base.fingerprint())
            out.append(prop.fingerprint())
        return out


@dataclass(frozen=True)
class _RecordSpec:
    """One (workload, machine) record to produce, with its job slice."""

    workload: BenchmarkWorkload
    machine: ClusteredMachine
    offset: int
    n_jobs: int


def _effective_config(vcs_config: Optional[VcsConfig], work_budget: Optional[int]) -> VcsConfig:
    config = vcs_config or VcsConfig()
    if work_budget is not None:
        config = replace(config, work_budget=work_budget)
    return config


def run_experiment_records(
    pairs: Sequence[Tuple[BenchmarkWorkload, ClusteredMachine]],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    scheduling_blocks: Optional[Dict[str, Sequence]] = None,
    runner: Optional[BatchScheduler] = None,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> List[ExperimentRecord]:
    """Schedule every block of every ``(workload, machine)`` pair as one
    flat batch and regroup the results into per-pair records.

    ``schedulers`` is the (baseline, proposed) backend-name pair —
    ``("cars", "vcs")`` by default, any two registered backends otherwise
    (``run_suite.py --scheduler hybrid`` passes ``("cars", "hybrid")``).
    ``scheduling_blocks`` optionally maps a workload name to different
    blocks (same DGs, different profiles) to *schedule*, while the
    workload's own blocks are what the caller will later *evaluate*
    against — the Figure 12 setup.  ``cache`` selects the result cache
    (``None`` follows ``REPRO_CACHE``/``REPRO_CACHE_DIR``); pass a
    :class:`~repro.runner.CacheStats` as ``cache_stats`` to accumulate
    hit/miss counters across several driver calls.
    """
    schedulers = tuple(schedulers)
    if len(schedulers) != 2:
        raise ValueError(
            f"expected a (baseline, proposed) backend pair, got {schedulers!r}"
        )
    config = _effective_config(vcs_config, work_budget)
    jobs = []
    specs: List[_RecordSpec] = []
    for workload, machine in pairs:
        blocks = workload.blocks
        if scheduling_blocks is not None and workload.name in scheduling_blocks:
            blocks = scheduling_blocks[workload.name]
        pair_jobs = enumerate_workload_jobs(
            workload.name,
            blocks,
            machine,
            vcs_config=config,
            check_schedules=check_schedules,
            schedulers=schedulers,
        )
        specs.append(_RecordSpec(workload, machine, len(jobs), len(pair_jobs)))
        jobs.extend(pair_jobs)

    batch = schedule_many(jobs, runner=runner, cache=cache)
    if cache_stats is not None and batch.cache is not None:
        cache_stats.merge(batch.cache)

    records: List[ExperimentRecord] = []
    for spec in specs:
        record = ExperimentRecord(workload=spec.workload, machine=spec.machine)
        # Jobs come in (baseline, proposed) pairs per block, in block order.
        for i in range(spec.offset, spec.offset + spec.n_jobs, 2):
            record.baseline_results.append(batch.values[i])
            record.proposed_results.append(batch.values[i + 1])
        records.append(record)
    return records


def run_workload(
    workload: BenchmarkWorkload,
    machine: ClusteredMachine,
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    scheduling_blocks: Optional[Sequence] = None,
    runner: Optional[BatchScheduler] = None,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> ExperimentRecord:
    """Schedule every block of *workload* with the baseline and the
    proposed backend (CARS and VCS by default).

    ``scheduling_blocks`` optionally provides different blocks (same DGs,
    different profiles) to *schedule*, while the workload's own blocks are
    what the caller will later *evaluate* against — the Figure 12 setup.
    """
    overrides = None
    if scheduling_blocks is not None:
        overrides = {workload.name: scheduling_blocks}
    return run_experiment_records(
        [(workload, machine)],
        work_budget=work_budget,
        vcs_config=vcs_config,
        check_schedules=check_schedules,
        scheduling_blocks=overrides,
        runner=runner,
        schedulers=schedulers,
        cache=cache,
        cache_stats=cache_stats,
    )[0]


def run_speedup_records(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    runner: Optional[BatchScheduler] = None,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> Dict[str, List[ExperimentRecord]]:
    """The raw records behind Figure 11, grouped by machine name."""
    pairs = [(workload, machine) for machine in machines for workload in workloads]
    records = run_experiment_records(
        pairs,
        work_budget=work_budget,
        vcs_config=vcs_config,
        runner=runner,
        schedulers=schedulers,
        cache=cache,
        cache_stats=cache_stats,
    )
    grouped: Dict[str, List[ExperimentRecord]] = {machine.name: [] for machine in machines}
    for record in records:
        grouped[record.machine.name].append(record)
    return grouped


def run_speedup_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    runner: Optional[BatchScheduler] = None,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> Dict[str, List[BenchmarkComparison]]:
    """Figure 11: per-benchmark speed-up of the proposed backend over the
    baseline backend (VCS over CARS by default) for every machine
    configuration.  Returns comparisons grouped by machine name."""
    grouped = run_speedup_records(
        workloads,
        machines,
        work_budget=work_budget,
        vcs_config=vcs_config,
        runner=runner,
        schedulers=schedulers,
        cache=cache,
        cache_stats=cache_stats,
    )
    return {
        machine_name: [record.comparison() for record in records]
        for machine_name, records in grouped.items()
    }


# --------------------------------------------------------------------------- #
# backend-vs-backend sweeps (the registry-driven Figure 11 generalisation)
# --------------------------------------------------------------------------- #
@dataclass
class BackendRecord:
    """All of one backend's results on one (workload, machine) pair."""

    workload: BenchmarkWorkload
    machine: ClusteredMachine
    backend: str
    results: List[ScheduleResult] = field(default_factory=list)

    def fingerprints(self) -> List[list]:
        return [result.fingerprint() for result in self.results]

    @property
    def total_work(self) -> int:
        return sum(result.work for result in self.results)


def run_backend_records(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    backends: Sequence[str],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    runner: Optional[BatchScheduler] = None,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> List[BackendRecord]:
    """Schedule every block of every workload on every machine with every
    backend in *backends*, as one flat batch.

    Returns one record per (machine, workload, backend), machines outer,
    ``backends`` order innermost — matching the canonical job enumeration
    (blocks in position order, backends within a block), so a parallel
    run is byte-identical to a serial one like every other driver."""
    backends = tuple(backends)
    if not backends:
        raise ValueError("need at least one backend name")
    config = _effective_config(vcs_config, work_budget)
    jobs = []
    specs: List[_RecordSpec] = []
    for machine in machines:
        for workload in workloads:
            pair_jobs = enumerate_workload_jobs(
                workload.name,
                workload.blocks,
                machine,
                vcs_config=config,
                check_schedules=check_schedules,
                schedulers=backends,
            )
            specs.append(_RecordSpec(workload, machine, len(jobs), len(pair_jobs)))
            jobs.extend(pair_jobs)

    batch = schedule_many(jobs, runner=runner, cache=cache)
    if cache_stats is not None and batch.cache is not None:
        cache_stats.merge(batch.cache)

    records: List[BackendRecord] = []
    for spec in specs:
        for b_index, backend in enumerate(backends):
            record = BackendRecord(workload=spec.workload, machine=spec.machine, backend=backend)
            for i in range(spec.offset + b_index, spec.offset + spec.n_jobs, len(backends)):
                record.results.append(batch.values[i])
            records.append(record)
    return records


def backend_comparisons(
    records: Sequence[BackendRecord], baseline: str = "cars"
) -> Dict[str, Dict[str, List[BenchmarkComparison]]]:
    """Group per-backend *records* into per-benchmark comparisons of every
    backend against *baseline*: ``{machine_name: {backend: [comparison]}}``.

    Pure aggregation over records from :func:`run_backend_records` —
    callers that already hold the records (e.g. ``run_suite.py``'s
    ``backends`` experiment) reuse them without scheduling anything
    again.  Machine/workload/backend order follows first appearance in
    *records* (the canonical enumeration order)."""
    machines: List[str] = []
    workloads: List[str] = []
    backends: List[str] = []
    by_key: Dict[Tuple[str, str, str], BackendRecord] = {}
    for record in records:
        key = (record.machine.name, record.workload.name, record.backend)
        by_key[key] = record
        if record.machine.name not in machines:
            machines.append(record.machine.name)
        if record.workload.name not in workloads:
            workloads.append(record.workload.name)
        if record.backend not in backends:
            backends.append(record.backend)
    if baseline not in backends:
        raise ValueError(f"baseline backend {baseline!r} not among the records' {backends}")
    grouped: Dict[str, Dict[str, List[BenchmarkComparison]]] = {
        machine: {b: [] for b in backends if b != baseline} for machine in machines
    }
    for machine in machines:
        for workload in workloads:
            base = by_key.get((machine, workload, baseline))
            if base is None:
                raise ValueError(
                    f"missing {baseline!r} baseline record for ({machine!r}, {workload!r}); "
                    "records must cover the full (machine, workload, backend) cross product"
                )
            for backend in backends:
                if backend == baseline:
                    continue
                record = by_key.get((machine, workload, backend))
                if record is None:
                    raise ValueError(
                        f"missing {backend!r} record for ({machine!r}, {workload!r}); "
                        "records must cover the full (machine, workload, backend) cross product"
                    )
                blocks = [
                    compare_block(base_result, result)
                    for base_result, result in zip(base.results, record.results)
                ]
                grouped[machine][backend].append(
                    evaluate_benchmark(
                        record.workload.name, record.workload.suite, machine, blocks
                    )
                )
    return grouped


def run_backend_comparison(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    backends: Sequence[str] = ("cars", "vcs", "hybrid"),
    baseline: str = "cars",
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    runner: Optional[BatchScheduler] = None,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> Dict[str, Dict[str, List[BenchmarkComparison]]]:
    """Figure 11 generalised to a backend dimension: per-benchmark
    comparisons of every backend against *baseline*.

    The baseline is scheduled once per (workload, machine) and reused for
    every backend's comparison; the whole cross product runs as a single
    batch, then aggregates through :func:`backend_comparisons`."""
    backends = tuple(backends)
    if baseline not in backends:
        backends = (baseline,) + backends
    records = run_backend_records(
        workloads,
        machines,
        backends,
        work_budget=work_budget,
        vcs_config=vcs_config,
        runner=runner,
        cache=cache,
        cache_stats=cache_stats,
    )
    return backend_comparisons(records, baseline=baseline)


# --------------------------------------------------------------------------- #
# the scenario matrix: (machine family x workload family x backend)
# --------------------------------------------------------------------------- #
@dataclass
class ScenarioCell:
    """Deterministic summary of one (machine, workload family, backend)
    cell of the scenario matrix.

    ``schedule_digest`` and ``dp_work`` are the byte-identity keys the CI
    perf-regression gate records for the gated scenario sample."""

    machine_family: str
    machine: str
    workload_family: str
    backend: str
    n_blocks: int
    dp_work: int
    schedule_digest: str
    total_cycles: float
    fallback_blocks: int

    def as_row(self) -> dict:
        return {
            "machine_family": self.machine_family,
            "machine": self.machine,
            "workload_family": self.workload_family,
            "backend": self.backend,
            "n_blocks": self.n_blocks,
            "dp_work": self.dp_work,
            "schedule_digest": self.schedule_digest,
            "total_cycles": self.total_cycles,
            "fallback_blocks": self.fallback_blocks,
        }


def _scenario_inputs(
    machine_families: Sequence[str],
    workload_families: Sequence[str],
    blocks_per_benchmark: Optional[int],
) -> Tuple[List[Tuple[str, ClusteredMachine]], list, Dict[str, str]]:
    """Resolve the matrix's named families into concrete (family, machine)
    pairs and (family, workload) pairs, deduplicating machine specs shared
    between families (first family wins, matching the cell attribution)."""
    machines: List[Tuple[str, ClusteredMachine]] = []
    seen_machines: Dict[str, str] = {}
    for family_name in machine_families:
        for machine in machine_family(family_name).machines():
            if machine.name in seen_machines:
                continue  # families may share identically-named specs
            seen_machines[machine.name] = family_name
            machines.append((family_name, machine))
    workloads = build_workload_families(workload_families, blocks_per_benchmark)
    return machines, workloads, seen_machines


def scenario_matrix_jobs(
    machine_families: Sequence[str],
    workload_families: Sequence[str],
    backends: Sequence[str] = ("vcs",),
    blocks_per_benchmark: Optional[int] = None,
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
) -> List[ScheduleJob]:
    """The scenario matrix as a flat job list, in the exact canonical
    order :func:`run_scenario_matrix` batches it (machines outer, then
    workload families' workloads, blocks, ``backends`` innermost).

    This is the shared enumeration behind the batch matrix and the HTTP
    service-identity gate (``scripts/check_service_identity.py``): both
    paths schedule *these* jobs, so per-job results can be compared
    position by position and digests must match byte for byte.
    """
    machines, workloads, _ = _scenario_inputs(
        machine_families, workload_families, blocks_per_benchmark
    )
    config = _effective_config(vcs_config, work_budget)
    jobs: List[ScheduleJob] = []
    for _, machine in machines:
        for _, workload in workloads:
            jobs.extend(
                enumerate_workload_jobs(
                    workload.name,
                    workload.blocks,
                    machine,
                    vcs_config=config,
                    check_schedules=check_schedules,
                    schedulers=tuple(backends),
                )
            )
    return jobs


def run_scenario_matrix(
    machine_families: Sequence[str],
    workload_families: Sequence[str],
    backends: Sequence[str] = ("vcs",),
    blocks_per_benchmark: Optional[int] = None,
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    runner: Optional[BatchScheduler] = None,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> Tuple[List[ScenarioCell], List[BackendRecord]]:
    """Schedule the full (machine family x workload family x backend)
    cross product as one flat sharded batch.

    Families are named (see :mod:`repro.machine.families` and
    :mod:`repro.workloads.families`), so a whole sweep is reproducible
    from its name lists alone.  Returns one :class:`ScenarioCell` per
    (machine, workload family, backend) — digesting every schedule of the
    family's workloads on that machine — plus the underlying per-workload
    :class:`BackendRecord` list for finer-grained analysis.  Cells follow
    the canonical enumeration order (machine families outer, workload
    families, then backends), and a parallel run is byte-identical to a
    serial one like every other driver.
    """
    machines, workloads, seen_machines = _scenario_inputs(
        machine_families, workload_families, blocks_per_benchmark
    )

    records = run_backend_records(
        [workload for _, workload in workloads],
        [machine for _, machine in machines],
        tuple(backends),
        work_budget=work_budget,
        vcs_config=vcs_config,
        check_schedules=check_schedules,
        runner=runner,
        cache=cache,
        cache_stats=cache_stats,
    )

    workload_to_family = {workload.name: name for name, workload in workloads}
    grouped: Dict[Tuple[str, str, str], List[BackendRecord]] = {}
    for record in records:
        key = (
            record.machine.name,
            workload_to_family[record.workload.name],
            record.backend,
        )
        grouped.setdefault(key, []).append(record)

    cells: List[ScenarioCell] = []
    for (machine_name, wf_name, backend), group in grouped.items():
        results = [result for record in group for result in record.results]
        cells.append(
            ScenarioCell(
                machine_family=seen_machines[machine_name],
                machine=machine_name,
                workload_family=wf_name,
                backend=backend,
                n_blocks=len(results),
                dp_work=sum(result.work for result in results),
                schedule_digest=fingerprint_digest(result.fingerprint() for result in results),
                total_cycles=sum(result.total_cycles for result in results if result.ok),
                fallback_blocks=sum(1 for result in results if result.fallback_used),
            )
        )
    return cells, records


def run_compile_time_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    thresholds: EffortThresholds,
    runner: Optional[BatchScheduler] = None,
    vcs_config: Optional[VcsConfig] = None,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> List[CompileEffortStats]:
    """Figure 10: compile-effort distribution of the baseline and the
    proposed backend on every machine (the proposed backend runs at the
    large threshold budget so the full effort per block is observed)."""
    baseline_name, proposed_name = tuple(schedulers)
    pairs = [(workload, machine) for machine in machines for workload in workloads]
    records = run_experiment_records(
        pairs,
        work_budget=thresholds.large,
        vcs_config=vcs_config,
        runner=runner,
        schedulers=schedulers,
        cache=cache,
        cache_stats=cache_stats,
    )
    by_machine: Dict[str, List[ExperimentRecord]] = {machine.name: [] for machine in machines}
    for record in records:
        by_machine[record.machine.name].append(record)

    stats: List[CompileEffortStats] = []
    for machine in machines:
        baseline_results: List[ScheduleResult] = []
        proposed_results: List[ScheduleResult] = []
        for record in by_machine[machine.name]:
            baseline_results.extend(record.baseline_results)
            proposed_results.extend(record.proposed_results)
        stats.append(collect_effort(baseline_name.upper(), machine.name, baseline_results))
        stats.append(collect_effort(proposed_name.upper(), machine.name, proposed_results))
    return stats


def run_cross_input_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    noise: float = 0.35,
    runner: Optional[BatchScheduler] = None,
    vcs_config: Optional[VcsConfig] = None,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
    cache: object = None,
    cache_stats: Optional[CacheStats] = None,
) -> Dict[str, List[BenchmarkComparison]]:
    """Figure 12: schedule with the ``train`` profile, evaluate with ``ref``.

    For each workload a train variant is derived; both the baseline and
    the proposed backend schedule the train blocks, and the resulting
    schedules are evaluated with the original (ref) exit probabilities
    and execution counts."""
    # Train variants are seeded by workload name only, so deriving them
    # once up front is identical to deriving them per machine.
    train_blocks = {
        workload.name: train_variant(workload, noise=noise).blocks for workload in workloads
    }
    pairs = [(workload, machine) for machine in machines for workload in workloads]
    records = run_experiment_records(
        pairs,
        work_budget=work_budget,
        vcs_config=vcs_config,
        scheduling_blocks=train_blocks,
        runner=runner,
        schedulers=schedulers,
        cache=cache,
        cache_stats=cache_stats,
    )
    grouped: Dict[str, List[BenchmarkComparison]] = {machine.name: [] for machine in machines}
    for record in records:
        grouped[record.machine.name].append(
            record.comparison(evaluation_blocks=record.workload.blocks)
        )
    return grouped
