"""End-to-end experiment runners used by the benchmark harness and examples.

Each function reproduces the workflow of one of the paper's evaluation
figures: schedule every block of a workload with CARS and with the proposed
technique (at a given compile-effort threshold), aggregate the results and
return both the raw records and the formatted report.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.analysis.compile_time import CompileEffortStats, EffortThresholds, collect_effort
from repro.analysis.metrics import (
    BenchmarkComparison,
    BlockComparison,
    compare_block,
    evaluate_benchmark,
)
from repro.analysis.report import format_compile_time_table, format_speedup_series
from repro.machine.machine import ClusteredMachine
from repro.scheduler.cars import CarsScheduler
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig, VirtualClusterScheduler
from repro.workloads.suite import BenchmarkWorkload, train_variant


@dataclass
class ExperimentRecord:
    """Raw results of scheduling one workload on one machine."""

    workload: BenchmarkWorkload
    machine: ClusteredMachine
    baseline_results: List[ScheduleResult] = field(default_factory=list)
    proposed_results: List[ScheduleResult] = field(default_factory=list)

    def comparison(self, evaluation_blocks: Optional[Sequence] = None) -> BenchmarkComparison:
        blocks = []
        for index, (base, prop) in enumerate(zip(self.baseline_results, self.proposed_results)):
            eval_block = evaluation_blocks[index] if evaluation_blocks is not None else None
            blocks.append(compare_block(base, prop, evaluation_block=eval_block))
        return evaluate_benchmark(
            self.workload.name, self.workload.suite, self.machine.name, blocks
        )

    def effort(self) -> Tuple[CompileEffortStats, CompileEffortStats]:
        return (
            collect_effort("CARS", self.machine.name, self.baseline_results),
            collect_effort("VCS", self.machine.name, self.proposed_results),
        )


def run_workload(
    workload: BenchmarkWorkload,
    machine: ClusteredMachine,
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    scheduling_blocks: Optional[Sequence] = None,
) -> ExperimentRecord:
    """Schedule every block of *workload* with CARS and with the proposed
    technique.

    ``scheduling_blocks`` optionally provides different blocks (same DGs,
    different profiles) to *schedule*, while the workload's own blocks are
    what the caller will later *evaluate* against — the Figure 12 setup.
    """
    cars = CarsScheduler()
    config = vcs_config or VcsConfig()
    if work_budget is not None:
        config = VcsConfig(**{**config.__dict__, "work_budget": work_budget})
    vcs = VirtualClusterScheduler(config)

    record = ExperimentRecord(workload=workload, machine=machine)
    source_blocks = scheduling_blocks if scheduling_blocks is not None else workload.blocks
    for block in source_blocks:
        baseline = cars.schedule(block, machine)
        proposed = vcs.schedule(block, machine)
        if check_schedules:
            validate_schedule(baseline.schedule).raise_if_invalid()
            validate_schedule(proposed.schedule).raise_if_invalid()
        record.baseline_results.append(baseline)
        record.proposed_results.append(proposed)
    return record


def run_speedup_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
) -> Dict[str, List[BenchmarkComparison]]:
    """Figure 11: per-benchmark speed-up of the proposed technique over CARS
    for every machine configuration.  Returns comparisons grouped by machine
    name."""
    grouped: Dict[str, List[BenchmarkComparison]] = {}
    for machine in machines:
        rows: List[BenchmarkComparison] = []
        for workload in workloads:
            record = run_workload(workload, machine, work_budget=work_budget, vcs_config=vcs_config)
            rows.append(record.comparison())
        grouped[machine.name] = rows
    return grouped


def run_compile_time_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    thresholds: EffortThresholds,
) -> List[CompileEffortStats]:
    """Figure 10: compile-effort distribution of CARS and the proposed
    technique on every machine (the proposed technique runs without a budget
    so the full effort per block is observed)."""
    stats: List[CompileEffortStats] = []
    for machine in machines:
        cars_results: List[ScheduleResult] = []
        vcs_results: List[ScheduleResult] = []
        for workload in workloads:
            record = run_workload(
                workload,
                machine,
                work_budget=thresholds.large,
            )
            cars_results.extend(record.baseline_results)
            vcs_results.extend(record.proposed_results)
        stats.append(collect_effort("CARS", machine.name, cars_results))
        stats.append(collect_effort("VCS", machine.name, vcs_results))
    return stats


def run_cross_input_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    noise: float = 0.35,
) -> Dict[str, List[BenchmarkComparison]]:
    """Figure 12: schedule with the ``train`` profile, evaluate with ``ref``.

    For each workload a train variant is derived; both CARS and the proposed
    technique schedule the train blocks, and the resulting schedules are
    evaluated with the original (ref) exit probabilities and execution
    counts."""
    grouped: Dict[str, List[BenchmarkComparison]] = {}
    for machine in machines:
        rows: List[BenchmarkComparison] = []
        for workload in workloads:
            train = train_variant(workload, noise=noise)
            record = run_workload(
                workload,
                machine,
                work_budget=work_budget,
                scheduling_blocks=train.blocks,
            )
            rows.append(record.comparison(evaluation_blocks=workload.blocks))
        grouped[machine.name] = rows
    return grouped
