"""End-to-end experiment runners used by the benchmark harness and examples.

Each function reproduces the workflow of one of the paper's evaluation
figures: schedule every block of a workload with CARS and with the proposed
technique (at a given compile-effort threshold), aggregate the results and
return both the raw records and the formatted report.

Every driver executes through the parallel runner
(:mod:`repro.runner`): the full (workload, machine, block) cross product
of an experiment is enumerated up front as one flat job list, sharded
across worker processes, and merged back in enumeration order — so the
records an experiment returns are byte-identical whether it ran serially
(the ``REPRO_JOBS=1`` default) or on every core of the machine.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.compile_time import CompileEffortStats, EffortThresholds, collect_effort
from repro.analysis.metrics import (
    BenchmarkComparison,
    compare_block,
    evaluate_benchmark,
)
from repro.machine.machine import ClusteredMachine
from repro.runner import BatchScheduler, enumerate_workload_jobs, run_schedule_job
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig
from repro.workloads.suite import BenchmarkWorkload, train_variant


@dataclass
class ExperimentRecord:
    """Raw results of scheduling one workload on one machine."""

    workload: BenchmarkWorkload
    machine: ClusteredMachine
    baseline_results: List[ScheduleResult] = field(default_factory=list)
    proposed_results: List[ScheduleResult] = field(default_factory=list)

    def comparison(self, evaluation_blocks: Optional[Sequence] = None) -> BenchmarkComparison:
        blocks = []
        for index, (base, prop) in enumerate(zip(self.baseline_results, self.proposed_results)):
            eval_block = evaluation_blocks[index] if evaluation_blocks is not None else None
            blocks.append(compare_block(base, prop, evaluation_block=eval_block))
        return evaluate_benchmark(
            self.workload.name, self.workload.suite, self.machine.name, blocks
        )

    def effort(self) -> Tuple[CompileEffortStats, CompileEffortStats]:
        return (
            collect_effort("CARS", self.machine.name, self.baseline_results),
            collect_effort("VCS", self.machine.name, self.proposed_results),
        )

    def fingerprints(self) -> List[list]:
        """Canonical fingerprints of every result, baseline then proposed
        per block — the payload the determinism checks compare."""
        out: List[list] = []
        for base, prop in zip(self.baseline_results, self.proposed_results):
            out.append(base.fingerprint())
            out.append(prop.fingerprint())
        return out


@dataclass(frozen=True)
class _RecordSpec:
    """One (workload, machine) record to produce, with its job slice."""

    workload: BenchmarkWorkload
    machine: ClusteredMachine
    offset: int
    n_jobs: int


def _effective_config(vcs_config: Optional[VcsConfig], work_budget: Optional[int]) -> VcsConfig:
    config = vcs_config or VcsConfig()
    if work_budget is not None:
        config = replace(config, work_budget=work_budget)
    return config


def run_experiment_records(
    pairs: Sequence[Tuple[BenchmarkWorkload, ClusteredMachine]],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    scheduling_blocks: Optional[Dict[str, Sequence]] = None,
    runner: Optional[BatchScheduler] = None,
) -> List[ExperimentRecord]:
    """Schedule every block of every ``(workload, machine)`` pair as one
    flat batch and regroup the results into per-pair records.

    ``scheduling_blocks`` optionally maps a workload name to different
    blocks (same DGs, different profiles) to *schedule*, while the
    workload's own blocks are what the caller will later *evaluate*
    against — the Figure 12 setup.
    """
    config = _effective_config(vcs_config, work_budget)
    jobs = []
    specs: List[_RecordSpec] = []
    for workload, machine in pairs:
        blocks = workload.blocks
        if scheduling_blocks is not None and workload.name in scheduling_blocks:
            blocks = scheduling_blocks[workload.name]
        pair_jobs = enumerate_workload_jobs(
            workload.name,
            blocks,
            machine,
            vcs_config=config,
            check_schedules=check_schedules,
        )
        specs.append(_RecordSpec(workload, machine, len(jobs), len(pair_jobs)))
        jobs.extend(pair_jobs)

    batch = (runner or BatchScheduler()).map(run_schedule_job, jobs)

    records: List[ExperimentRecord] = []
    for spec in specs:
        record = ExperimentRecord(workload=spec.workload, machine=spec.machine)
        # Jobs come in (cars, vcs) pairs per block, in block order.
        for i in range(spec.offset, spec.offset + spec.n_jobs, 2):
            record.baseline_results.append(batch.values[i])
            record.proposed_results.append(batch.values[i + 1])
        records.append(record)
    return records


def run_workload(
    workload: BenchmarkWorkload,
    machine: ClusteredMachine,
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    scheduling_blocks: Optional[Sequence] = None,
    runner: Optional[BatchScheduler] = None,
) -> ExperimentRecord:
    """Schedule every block of *workload* with CARS and with the proposed
    technique.

    ``scheduling_blocks`` optionally provides different blocks (same DGs,
    different profiles) to *schedule*, while the workload's own blocks are
    what the caller will later *evaluate* against — the Figure 12 setup.
    """
    overrides = None
    if scheduling_blocks is not None:
        overrides = {workload.name: scheduling_blocks}
    return run_experiment_records(
        [(workload, machine)],
        work_budget=work_budget,
        vcs_config=vcs_config,
        check_schedules=check_schedules,
        scheduling_blocks=overrides,
        runner=runner,
    )[0]


def run_speedup_records(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    runner: Optional[BatchScheduler] = None,
) -> Dict[str, List[ExperimentRecord]]:
    """The raw records behind Figure 11, grouped by machine name."""
    pairs = [(workload, machine) for machine in machines for workload in workloads]
    records = run_experiment_records(
        pairs, work_budget=work_budget, vcs_config=vcs_config, runner=runner
    )
    grouped: Dict[str, List[ExperimentRecord]] = {machine.name: [] for machine in machines}
    for record in records:
        grouped[record.machine.name].append(record)
    return grouped


def run_speedup_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    vcs_config: Optional[VcsConfig] = None,
    runner: Optional[BatchScheduler] = None,
) -> Dict[str, List[BenchmarkComparison]]:
    """Figure 11: per-benchmark speed-up of the proposed technique over CARS
    for every machine configuration.  Returns comparisons grouped by machine
    name."""
    grouped = run_speedup_records(
        workloads, machines, work_budget=work_budget, vcs_config=vcs_config, runner=runner
    )
    return {
        machine_name: [record.comparison() for record in records]
        for machine_name, records in grouped.items()
    }


def run_compile_time_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    thresholds: EffortThresholds,
    runner: Optional[BatchScheduler] = None,
) -> List[CompileEffortStats]:
    """Figure 10: compile-effort distribution of CARS and the proposed
    technique on every machine (the proposed technique runs without a budget
    so the full effort per block is observed)."""
    pairs = [(workload, machine) for machine in machines for workload in workloads]
    records = run_experiment_records(pairs, work_budget=thresholds.large, runner=runner)
    by_machine: Dict[str, List[ExperimentRecord]] = {machine.name: [] for machine in machines}
    for record in records:
        by_machine[record.machine.name].append(record)

    stats: List[CompileEffortStats] = []
    for machine in machines:
        cars_results: List[ScheduleResult] = []
        vcs_results: List[ScheduleResult] = []
        for record in by_machine[machine.name]:
            cars_results.extend(record.baseline_results)
            vcs_results.extend(record.proposed_results)
        stats.append(collect_effort("CARS", machine.name, cars_results))
        stats.append(collect_effort("VCS", machine.name, vcs_results))
    return stats


def run_cross_input_experiment(
    workloads: Sequence[BenchmarkWorkload],
    machines: Sequence[ClusteredMachine],
    work_budget: Optional[int] = None,
    noise: float = 0.35,
    runner: Optional[BatchScheduler] = None,
) -> Dict[str, List[BenchmarkComparison]]:
    """Figure 12: schedule with the ``train`` profile, evaluate with ``ref``.

    For each workload a train variant is derived; both CARS and the proposed
    technique schedule the train blocks, and the resulting schedules are
    evaluated with the original (ref) exit probabilities and execution
    counts."""
    # Train variants are seeded by workload name only, so deriving them
    # once up front is identical to deriving them per machine.
    train_blocks = {
        workload.name: train_variant(workload, noise=noise).blocks for workload in workloads
    }
    pairs = [(workload, machine) for machine in machines for workload in workloads]
    records = run_experiment_records(
        pairs, work_budget=work_budget, scheduling_blocks=train_blocks, runner=runner
    )
    grouped: Dict[str, List[BenchmarkComparison]] = {machine.name: [] for machine in machines}
    for record in records:
        grouped[record.machine.name].append(
            record.comparison(evaluation_blocks=record.workload.blocks)
        )
    return grouped
