"""Performance metrics: total cycles and speed-ups.

The paper's performance metric is the total number of dynamic cycles,
``sum over blocks of AWCT(S) * T(S)`` (Section 2.2 / Section 6.2), with exit
frequencies taken from profiling.  Speed-up of the proposed technique over
CARS is the ratio of the two totals.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Iterable, List, Optional

from repro.bounds.awct import awct
from repro.ir.superblock import Superblock
from repro.scheduler.schedule import Schedule, ScheduleResult


def evaluated_awct(schedule: Schedule, evaluation_block: Optional[Superblock] = None) -> float:
    """AWCT of *schedule*, optionally re-weighted with another profile.

    The cross-input experiment schedules with the ``train`` profile but
    evaluates with the ``ref`` profile: the exit *cycles* come from the
    schedule, the exit *probabilities* from *evaluation_block*.
    """
    block = evaluation_block if evaluation_block is not None else schedule.block
    exit_cycles = {e.op_id: schedule.cycles[e.op_id] for e in block.exits}
    return awct(block, exit_cycles)


@dataclass
class BlockComparison:
    """Baseline-vs-proposed comparison on one superblock."""

    block_name: str
    execution_count: int
    baseline_awct: float
    proposed_awct: float
    baseline_work: int
    proposed_work: int
    proposed_timed_out: bool = False
    proposed_fallback: bool = False

    @property
    def baseline_cycles(self) -> float:
        return self.baseline_awct * self.execution_count

    @property
    def proposed_cycles(self) -> float:
        return self.proposed_awct * self.execution_count

    @property
    def speedup(self) -> float:
        if self.proposed_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.proposed_cycles


@dataclass
class BenchmarkComparison:
    """Aggregated comparison over one benchmark's blocks."""

    name: str
    suite: str
    machine: str
    blocks: List[BlockComparison] = field(default_factory=list)

    @property
    def baseline_cycles(self) -> float:
        return sum(b.baseline_cycles for b in self.blocks)

    @property
    def proposed_cycles(self) -> float:
        return sum(b.proposed_cycles for b in self.blocks)

    @property
    def speedup(self) -> float:
        if self.proposed_cycles == 0:
            return 1.0
        return self.baseline_cycles / self.proposed_cycles

    @property
    def fallback_fraction(self) -> float:
        if not self.blocks:
            return 0.0
        return sum(1 for b in self.blocks if b.proposed_fallback) / len(self.blocks)

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)


def speedup(baseline_cycles: float, proposed_cycles: float) -> float:
    """Speed-up of the proposed technique (>1 means proposed is faster)."""
    if proposed_cycles <= 0:
        raise ValueError("proposed cycle count must be positive")
    return baseline_cycles / proposed_cycles


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean, the conventional way to average speed-ups."""
    values = list(values)
    if not values:
        raise ValueError("geometric mean of an empty sequence")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def compare_block(
    baseline: ScheduleResult,
    proposed: ScheduleResult,
    evaluation_block: Optional[Superblock] = None,
) -> BlockComparison:
    """Build the per-block comparison record from two scheduler results."""
    if baseline.block.name != proposed.block.name:
        raise ValueError("comparing results of different blocks")
    eval_block = evaluation_block if evaluation_block is not None else baseline.block
    return BlockComparison(
        block_name=baseline.block.name,
        execution_count=eval_block.execution_count,
        baseline_awct=evaluated_awct(baseline.schedule, eval_block),
        proposed_awct=evaluated_awct(proposed.schedule, eval_block),
        baseline_work=baseline.work,
        proposed_work=proposed.work,
        proposed_timed_out=proposed.timed_out,
        proposed_fallback=proposed.fallback_used,
    )


def evaluate_benchmark(
    name: str,
    suite: str,
    machine_name: str,
    comparisons: Iterable[BlockComparison],
) -> BenchmarkComparison:
    """Aggregate per-block comparisons into one benchmark row."""
    result = BenchmarkComparison(name=name, suite=suite, machine=machine_name)
    result.blocks = list(comparisons)
    return result
