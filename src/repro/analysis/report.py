"""Plain-text reports mirroring the paper's figures.

The benchmark harness prints these tables; EXPERIMENTS.md captures the
paper-vs-measured comparison built from them.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.analysis.compile_time import CompileEffortStats, EffortThresholds
from repro.analysis.metrics import BenchmarkComparison, geometric_mean


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Render a fixed-width text table."""
    columns = [list(map(str, col)) for col in zip(headers, *rows)] if rows else [[h] for h in headers]
    widths = [max(len(cell) for cell in col) for col in columns]
    lines = []
    header_line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("  ".join("-" * w for w in widths))
    for row in rows:
        lines.append("  ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def format_speedup_series(
    comparisons: Sequence[BenchmarkComparison],
    label: str = "speed-up",
) -> str:
    """The Figure 11 style series: per-benchmark speed-ups plus suite means.

    Benchmarks are listed in their given order; the SpecInt mean, MediaBench
    mean and overall mean rows mirror the paper's "Spec Mean" / "Media Mean"
    / "Mean" bars.
    """
    rows: List[List[object]] = []
    spec = [c.speedup for c in comparisons if c.suite == "specint"]
    media = [c.speedup for c in comparisons if c.suite == "mediabench"]
    for comparison in comparisons:
        rows.append(
            [
                comparison.name,
                comparison.machine,
                f"{comparison.speedup:.4f}",
                comparison.n_blocks,
                f"{comparison.fallback_fraction:.2f}",
            ]
        )
    if spec:
        rows.append(["Spec Mean", "-", f"{geometric_mean(spec):.4f}", "-", "-"])
    if media:
        rows.append(["Media Mean", "-", f"{geometric_mean(media):.4f}", "-", "-"])
    if spec or media:
        rows.append(["Mean", "-", f"{geometric_mean(spec + media):.4f}", "-", "-"])
    return format_table(
        ["benchmark", "machine", label, "blocks", "fallback frac"], rows
    )


def format_compile_time_table(
    stats: Sequence[CompileEffortStats],
    thresholds: EffortThresholds,
) -> str:
    """The Figure 10 style table: % of blocks compiled within each threshold."""
    rows = []
    for stat in stats:
        fractions = stat.fractions(thresholds)
        rows.append(
            [
                stat.scheduler,
                stat.machine,
                stat.n_blocks,
            ]
            + [f"{100 * fractions[label]:.1f}%" for label in thresholds.labels]
        )
    headers = ["scheduler", "machine", "blocks"] + list(thresholds.labels)
    return format_table(headers, rows)
