"""Compile-effort statistics (the Figure 10 experiment).

The paper reports the fraction of superblocks each scheduler compiles within
1 second, 1 minute and 4 minutes on its reference host.  Wall-clock seconds
are not reproducible across machines, so the primary measure here is the
deterministic *work* counter of each scheduler result (deduction rule
firings for the proposed technique, placement attempts for CARS); three
work thresholds stand in for the paper's three wall-clock thresholds.
Wall-clock times are still recorded for reference.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.scheduler.schedule import ScheduleResult


@dataclass(frozen=True)
class EffortThresholds:
    """Work-unit thresholds standing in for the paper's 1 s / 1 min / 4 min."""

    small: int = 2_000
    medium: int = 30_000
    large: int = 120_000

    @property
    def labels(self) -> Tuple[str, str, str]:
        return ("1s-equiv", "1m-equiv", "4m-equiv")

    def as_tuple(self) -> Tuple[int, int, int]:
        return (self.small, self.medium, self.large)


@dataclass
class CompileEffortStats:
    """Distribution of compile effort over one scheduler's results."""

    scheduler: str
    machine: str
    work_per_block: List[int] = field(default_factory=list)
    wall_time_per_block: List[float] = field(default_factory=list)
    timed_out_blocks: int = 0

    @property
    def n_blocks(self) -> int:
        return len(self.work_per_block)

    def fraction_within(self, work_limit: int) -> float:
        """Fraction of blocks whose compile effort stayed within the limit."""
        if not self.work_per_block:
            return 1.0
        return sum(1 for w in self.work_per_block if w <= work_limit) / self.n_blocks

    def fractions(self, thresholds: EffortThresholds) -> Dict[str, float]:
        return {
            label: self.fraction_within(limit)
            for label, limit in zip(thresholds.labels, thresholds.as_tuple())
        }

    @property
    def total_work(self) -> int:
        return sum(self.work_per_block)

    @property
    def total_wall_time(self) -> float:
        return sum(self.wall_time_per_block)


def collect_effort(
    scheduler: str,
    machine: str,
    results: Iterable[ScheduleResult],
) -> CompileEffortStats:
    """Build effort statistics from per-block scheduler results."""
    stats = CompileEffortStats(scheduler=scheduler, machine=machine)
    for result in results:
        stats.work_per_block.append(result.work)
        stats.wall_time_per_block.append(result.wall_time)
        if result.timed_out:
            stats.timed_out_blocks += 1
    return stats


def fraction_within(results: Sequence[ScheduleResult], work_limit: int) -> float:
    """Convenience wrapper over :meth:`CompileEffortStats.fraction_within`."""
    stats = collect_effort("", "", results)
    return stats.fraction_within(work_limit)
