"""The public scheduling facade: one request/response surface for every
consumer.

Historically each consumer wired itself to a different internal layer —
``scripts/run_suite.py`` and the analysis drivers called
``map_schedule_jobs`` directly, tests built ``ScheduleJob`` lists by
hand, and there was no wire format at all for a remote client.  This
module is the single entry point they now share, and the contract the
HTTP job server (:mod:`repro.service`) speaks:

* :class:`ScheduleRequest` — one scheduling job as pure data (block,
  machine, backend spec, optional :class:`SchedulePolicy` budget), with
  a lossless JSON wire form (:meth:`ScheduleRequest.to_dict` /
  :meth:`ScheduleRequest.from_dict`).  The wire round trip preserves
  the content fingerprints, so a request submitted over HTTP hits the
  same result-cache entry as the identical in-process job.
* :class:`ScheduleResponse` — the deterministic summary of one
  :class:`~repro.scheduler.schedule.ScheduleResult` (digest, dp_work,
  AWCT, fallback/policy provenance, cache outcome, failure taxonomy).
* :class:`JobStatus` — the lifecycle snapshot of a submitted job
  (``queued``/``running``/``done``/``failed``/``cancelled``).
* :func:`schedule_many` — the batch driver (replaces
  ``map_schedule_jobs``): requests (or raw ``ScheduleJob``\\ s) through
  the cached, machine-interned parallel runner.
* :func:`submit` / :func:`wait` — single-job convenience; with a
  ``url`` they delegate to the HTTP client, without one they run the
  job locally through the same batch core.

Determinism contract: every path through this module executes via
``repro.runner``'s batch core, so results are byte-identical across the
CLI, the drivers, and the service — the CI gates
(``scripts/check_cache_identity.py``, ``scripts/check_service_identity.py``)
hold the invariant.
"""

from __future__ import annotations

from dataclasses import dataclass, fields, replace
from typing import Iterable, List, Mapping, Optional, Sequence, Tuple, Union

from repro.ir.depgraph import DependenceGraph, DepKind
from repro.ir.operation import OpClass, Operation
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.machine.spec import MachineSpec
from repro.runner.batch import BatchResult, BatchScheduler, JobFailure
from repro.runner.jobs import ScheduleJob, _execute_job_batch, fingerprint_digest
from repro.scheduler.policy import SchedulePolicy
from repro.scheduler.registry import BackendSpec, backend_info
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig

#: Lifecycle states of a submitted job, in order of progression.  The
#: terminal states mirror the runner's failure taxonomy
#: (:class:`~repro.runner.batch.JobFailure`): an ``error``/``timeout``/
#: ``crash`` failure lands in ``failed``, a ``cancelled`` one in
#: ``cancelled``.
JOB_STATES = ("queued", "running", "cancelling", "done", "failed", "cancelled")


# --------------------------------------------------------------------------- #
# superblock wire form
# --------------------------------------------------------------------------- #


def block_to_dict(block: Superblock) -> dict:
    """The lossless JSON form of a superblock.

    Field-for-field the same structural description as
    :func:`repro.scheduler.fingerprint.block_fingerprint`, so a block
    that round-trips through the wire produces an identical block digest
    and therefore the identical result-cache key.
    """
    return {
        "name": block.name,
        "operations": [
            [
                op.op_id,
                op.opcode,
                op.op_class.value,
                op.latency,
                list(op.dests),
                list(op.srcs),
                op.is_exit,
                op.exit_prob,
                op.speculative,
            ]
            for op in block.operations
        ],
        "edges": [
            # Insertion-compatible order (not edges() order): replaying
            # these through add_edge reproduces the original adjacency
            # iteration orders, which dp_work depends on.
            [edge.src, edge.dst, edge.kind.value, edge.latency, edge.value]
            for edge in block.graph.ordered_edges()
        ],
        "execution_count": block.execution_count,
        "live_ins": list(block.live_ins),
        "live_outs": list(block.live_outs),
    }


def block_from_dict(data: Mapping) -> Superblock:
    """Rebuild a superblock from :func:`block_to_dict` output."""
    graph = DependenceGraph()
    for op_id, opcode, op_class, latency, dests, srcs, is_exit, exit_prob, spec in data[
        "operations"
    ]:
        graph.add_operation(
            Operation(
                op_id=op_id,
                opcode=opcode,
                op_class=OpClass(op_class),
                latency=latency,
                dests=tuple(dests),
                srcs=tuple(srcs),
                is_exit=is_exit,
                exit_prob=exit_prob,
                speculative=spec,
            )
        )
    for src, dst, kind, latency, value in data["edges"]:
        graph.add_edge(src, dst, DepKind(kind), latency, value)
    return Superblock(
        name=data["name"],
        graph=graph,
        execution_count=data["execution_count"],
        live_ins=tuple(data["live_ins"]),
        live_outs=tuple(data["live_outs"]),
    )


# --------------------------------------------------------------------------- #
# request
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class ScheduleRequest:
    """One scheduling job as pure, wire-serialisable data.

    ``policy`` is merged into the backend's :class:`VcsConfig` (a
    request-level policy wins over ``vcs.policy``), so budget limits
    flow into the content-addressed cache key exactly as they do on the
    batch path.  ``client`` names the submitting tenant — the job
    server's fair queue and per-client budget accounting key on it; the
    local paths ignore it.
    """

    block: Superblock
    machine: ClusteredMachine
    backend: str = "vcs"
    vcs: Optional[VcsConfig] = None
    options: Tuple[Tuple[str, object], ...] = ()
    policy: Optional[SchedulePolicy] = None
    check_schedule: bool = True
    client: str = "default"
    job_name: str = ""

    def __post_init__(self) -> None:
        # Fail on unknown backends at construction time, mirroring
        # ScheduleJob — a service validates at submit, not dispatch.
        backend_info(self.backend)
        object.__setattr__(self, "options", tuple((str(k), v) for k, v in self.options))

    @property
    def job_id(self) -> str:
        return self.job_name or f"{self.backend}:{self.machine.name}:{self.block.name}"

    @property
    def effective_vcs(self) -> Optional[VcsConfig]:
        """The VcsConfig the job will run under, with ``policy`` merged in
        (``None`` for backends that do not consume one)."""
        if not backend_info(self.backend).uses_vcs_config:
            return None
        if self.policy is None:
            return self.vcs
        return replace(self.vcs or VcsConfig(), policy=self.policy)

    @property
    def spec(self) -> BackendSpec:
        return BackendSpec(name=self.backend, vcs=self.effective_vcs, options=self.options)

    def job(self) -> ScheduleJob:
        """The runner job this request describes."""
        return ScheduleJob(
            job_id=self.job_id,
            scheduler=self.backend,
            block=self.block,
            machine=self.machine,
            vcs_config=self.effective_vcs,
            check_schedule=self.check_schedule,
            backend_options=self.options,
        )

    @classmethod
    def from_job(cls, job: ScheduleJob, client: str = "default") -> "ScheduleRequest":
        return cls(
            block=job.block,
            machine=job.machine,
            backend=job.scheduler,
            vcs=job.vcs_config,
            options=job.backend_options,
            check_schedule=job.check_schedule,
            client=client,
            job_name=job.job_id,
        )

    def to_dict(self) -> dict:
        out = {
            "block": block_to_dict(self.block),
            "machine": MachineSpec.from_machine(self.machine).to_dict(),
            "backend": self.spec.to_dict(),
            "check_schedule": self.check_schedule,
            "client": self.client,
            "job_name": self.job_name,
        }
        if self.policy is not None and self.effective_vcs is None:
            # Backends that consume a VcsConfig carry the merged policy
            # inside ``backend.vcs`` (one canonical wire form, so a
            # round trip is stable); only a policy with no carrier is
            # emitted separately — for from_dict to reject loudly
            # rather than drop a budget silently.
            out["policy"] = self.policy.to_dict()
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScheduleRequest":
        known = {"block", "machine", "backend", "policy", "check_schedule", "client", "job_name"}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScheduleRequest keys {sorted(unknown)}; known: {sorted(known)}"
            )
        spec = BackendSpec.from_dict(data.get("backend") or {"name": "vcs"})
        policy = data.get("policy")
        if isinstance(policy, Mapping):
            policy = SchedulePolicy.from_dict(policy)
        # The wire spec already carries the merged policy inside ``vcs``;
        # keep ``policy=None`` here so the merge is not applied twice.
        request = cls(
            block=block_from_dict(data["block"]),
            machine=MachineSpec.from_dict(data["machine"]).to_machine(),
            backend=spec.name,
            vcs=spec.vcs,
            options=spec.options,
            policy=None,
            check_schedule=bool(data.get("check_schedule", True)),
            client=str(data.get("client", "default")),
            job_name=str(data.get("job_name", "")),
        )
        if policy is not None and request.effective_vcs is None:
            raise ValueError(
                f"backend {spec.name!r} does not consume a SchedulePolicy"
            )
        if policy is not None and (spec.vcs is None or spec.vcs.policy != policy):
            request = replace(request, policy=policy)
        return request


# --------------------------------------------------------------------------- #
# status and response
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class JobStatus:
    """Lifecycle snapshot of one submitted job."""

    job_id: str
    state: str
    client: str = "default"
    detail: str = ""
    #: Position in the client's FIFO lane while ``queued`` (0 = next);
    #: ``-1`` once dispatched.
    queue_position: int = -1
    #: Monotonic seconds relative to server start (0.0 = not yet).
    submitted_s: float = 0.0
    started_s: float = 0.0
    finished_s: float = 0.0

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValueError(f"unknown job state {self.state!r}; known: {JOB_STATES}")

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "JobStatus":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(f"unknown JobStatus keys {sorted(unknown)}; known: {sorted(known)}")
        return cls(**dict(data))


@dataclass(frozen=True)
class ScheduleResponse:
    """The deterministic summary of one finished (or failed) job.

    ``digest`` is ``fingerprint_digest([result.fingerprint()])`` — the
    same digest algebra the bench report and the CI gates use, so two
    responses are byte-identical exactly when the underlying results
    are.  ``cache`` records the runner's outcome tag (``hit``/``miss``/
    ``off``; empty when unknown).  ``failure`` carries the runner
    taxonomy (``kind`` ∈ error/timeout/crash/cancelled) for
    ``failed``/``cancelled`` jobs.
    """

    job_id: str
    state: str
    scheduler: str = ""
    block: str = ""
    machine: str = ""
    ok: bool = False
    work: int = 0
    digest: str = ""
    fingerprint: Optional[list] = None
    awct: float = 0.0
    total_cycles: float = 0.0
    fallback_used: bool = False
    timed_out: bool = False
    policy: Optional[dict] = None
    cache: str = ""
    failure: Optional[dict] = None
    wall_s: float = 0.0

    @classmethod
    def from_result(
        cls, job_id: str, result: ScheduleResult, cache: str = "", wall_s: float = 0.0
    ) -> "ScheduleResponse":
        fingerprint = result.fingerprint()
        return cls(
            job_id=job_id,
            state="done",
            scheduler=result.scheduler,
            block=result.block.name,
            machine=result.machine.name,
            ok=result.ok,
            work=result.work,
            digest=fingerprint_digest([fingerprint]),
            fingerprint=fingerprint,
            awct=result.awct if result.ok else 0.0,
            total_cycles=result.total_cycles if result.ok else 0.0,
            fallback_used=result.fallback_used,
            timed_out=result.timed_out,
            policy=result.policy,
            cache=cache,
            wall_s=wall_s,
        )

    @classmethod
    def from_failure(
        cls, failure: JobFailure, wall_s: float = 0.0
    ) -> "ScheduleResponse":
        return cls(
            job_id=failure.job_id,
            state="cancelled" if failure.kind == "cancelled" else "failed",
            failure={
                "kind": failure.kind,
                "error_type": failure.error_type,
                "message": failure.message,
            },
            wall_s=wall_s,
        )

    def to_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "ScheduleResponse":
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown ScheduleResponse keys {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**dict(data))


# --------------------------------------------------------------------------- #
# the batch driver
# --------------------------------------------------------------------------- #

RequestLike = Union[ScheduleRequest, ScheduleJob]


def as_jobs(requests: Iterable[RequestLike]) -> List[ScheduleJob]:
    """Normalise a mixed request/job sequence into runner jobs."""
    jobs: List[ScheduleJob] = []
    for request in requests:
        if isinstance(request, ScheduleRequest):
            jobs.append(request.job())
        elif isinstance(request, ScheduleJob):
            jobs.append(request)
        else:
            raise TypeError(
                "schedule_many expects ScheduleRequest or ScheduleJob items, "
                f"got {type(request).__name__}"
            )
    return jobs


def schedule_many(
    requests: Sequence[RequestLike],
    runner: Optional[BatchScheduler] = None,
    cache: object = None,
    on_error: str = "raise",
) -> BatchResult:
    """Run a batch of scheduling requests through the parallel runner.

    The one batch entry point shared by the CLI, the analysis drivers
    and the job server (the deprecated ``map_schedule_jobs`` forwards
    here).  Jobs are content-keyed against the on-disk result cache
    (``cache=None`` follows the environment; pass
    :meth:`CacheSpec.disabled() <repro.runner.cache.CacheSpec.disabled>`
    for forced cold runs) and machines are interned on the parallel
    path.  Values come back in submission order; ``on_error='capture'``
    reports failures in ``BatchResult.failures`` instead of raising
    :class:`~repro.runner.batch.BatchError`.
    """
    return _execute_job_batch(as_jobs(requests), runner=runner, cache=cache, on_error=on_error)


def batch_responses(
    requests: Sequence[RequestLike], batch: BatchResult
) -> List[ScheduleResponse]:
    """Fold one batch into per-job :class:`ScheduleResponse`\\ s, in
    submission order."""
    jobs = as_jobs(requests)
    failures = {failure.index: failure for failure in batch.failures}
    responses: List[ScheduleResponse] = []
    for index, (job, result) in enumerate(zip(jobs, batch.values)):
        if result is not None:
            responses.append(ScheduleResponse.from_result(job.job_id, result))
        else:
            failure = failures.get(
                index, JobFailure(index=index, job_id=job.job_id, kind="error")
            )
            responses.append(ScheduleResponse.from_failure(failure))
    return responses


# --------------------------------------------------------------------------- #
# single-job convenience: submit / wait
# --------------------------------------------------------------------------- #


@dataclass
class JobHandle:
    """Ticket for one submitted job (local or remote)."""

    job_id: str
    url: str = ""
    _response: Optional[ScheduleResponse] = None
    _client: Optional[object] = None


def submit(
    request: ScheduleRequest,
    url: Optional[str] = None,
    runner: Optional[BatchScheduler] = None,
    cache: object = None,
) -> JobHandle:
    """Submit one request; returns a :class:`JobHandle` for :func:`wait`.

    With a ``url`` the request is POSTed to a running job server
    (:mod:`repro.service`) and the handle polls it; without one the job
    runs locally through :func:`schedule_many` (same execution core,
    same cache, byte-identical results) and the handle is already
    complete.
    """
    if url is not None:
        from repro.service.client import ServiceClient

        client = ServiceClient(url)
        status = client.submit(request)
        return JobHandle(job_id=status.job_id, url=url, _client=client)
    batch = schedule_many([request], runner=runner, cache=cache, on_error="capture")
    response = batch_responses([request], batch)[0]
    if batch.cache_outcomes and response.state == "done":
        response = replace(response, cache=batch.cache_outcomes[0])
    return JobHandle(job_id=request.job_id, _response=response)


def wait(handle: JobHandle, timeout: Optional[float] = None) -> ScheduleResponse:
    """Block until the handle's job finishes; returns its response.

    Local handles return immediately.  Remote handles long-poll the
    server; ``timeout`` bounds the wait (``TimeoutError`` on expiry).
    """
    if handle._response is not None:
        return handle._response
    if handle._client is None:
        raise ValueError(f"job {handle.job_id}: handle has neither a result nor a client")
    response = handle._client.result(handle.job_id, timeout=timeout)
    handle._response = response
    return response
