"""Parallel batch execution of independent scheduling jobs.

Block-level scheduling is embarrassingly parallel: every (superblock,
machine, scheduler) job is independent and deterministic, so the whole
paper evaluation (Figures 10-12, the perf smoke, ``scripts/run_suite.py``)
can be sharded across a process pool.  The package provides:

* :class:`BatchScheduler` — dispatches a job list across a
  ``ProcessPoolExecutor`` in work-stealing strides (per-job error and
  timeout capture) and merges the results back into submission order, so
  the output is byte-identical to a serial run regardless of completion
  order.  ``REPRO_JOBS=1`` (the default) selects an in-process serial
  backend with the same interface.
* :mod:`repro.runner.pool` — the process-wide persistent worker pool
  batches run on by default: warm workers that pre-import the package
  and intern reconstructed machines by digest, one executor reused
  across every batch of a suite run (``REPRO_POOL=fresh`` opts out).
* :mod:`repro.runner.cache` — the content-addressed on-disk result
  cache (``REPRO_CACHE``/``REPRO_CACHE_DIR``): schedule results keyed
  by (block digest, machine digest, backend spec, code salt), so warm
  suite re-runs recompute only changed cells.
* :class:`ScheduleJob` / :func:`run_schedule_job` — the picklable job
  description and the module-level worker that executes one scheduler on
  one block; :func:`repro.api.schedule_many` is the cache-aware,
  machine-interning driver the suite entry points use
  (:func:`map_schedule_jobs` remains as a deprecated alias).
* :func:`enumerate_workload_jobs` — deterministic job enumeration with
  stable job ids for one workload on one machine.

The determinism guarantee is documented in DESIGN.md ("The parallel
runner"); ``tests/test_runner.py`` enforces it.
"""

from repro.runner.batch import (
    BatchError,
    BatchResult,
    BatchScheduler,
    JobFailure,
    resolve_jobs,
)
from repro.runner.cache import (
    CacheSpec,
    CacheStats,
    ResultCache,
    cache_enabled,
    default_cache_dir,
)
from repro.runner.jobs import (
    SCHEDULER_KINDS,
    JobPayload,
    ScheduleJob,
    enumerate_workload_jobs,
    fingerprint_digest,
    map_schedule_jobs,
    run_schedule_job,
    schedule_job_id,
)
from repro.runner.pool import (
    MachineRef,
    PersistentPool,
    shared_pool,
    shared_pool_stats,
    shutdown_shared_pools,
)

__all__ = [
    "BatchError",
    "BatchResult",
    "BatchScheduler",
    "JobFailure",
    "resolve_jobs",
    "CacheSpec",
    "CacheStats",
    "ResultCache",
    "cache_enabled",
    "default_cache_dir",
    "SCHEDULER_KINDS",
    "JobPayload",
    "ScheduleJob",
    "enumerate_workload_jobs",
    "fingerprint_digest",
    "map_schedule_jobs",
    "run_schedule_job",
    "schedule_job_id",
    "MachineRef",
    "PersistentPool",
    "shared_pool",
    "shared_pool_stats",
    "shutdown_shared_pools",
]
