"""Parallel batch execution of independent scheduling jobs.

Block-level scheduling is embarrassingly parallel: every (superblock,
machine, scheduler) job is independent and deterministic, so the whole
paper evaluation (Figures 10-12, the perf smoke, ``scripts/run_suite.py``)
can be sharded across a process pool.  The package provides:

* :class:`BatchScheduler` — shards a job list across a
  ``ProcessPoolExecutor`` (chunked dispatch, per-job error and timeout
  capture) and merges the results back into submission order, so the
  output is byte-identical to a serial run regardless of completion
  order.  ``REPRO_JOBS=1`` (the default) selects an in-process serial
  backend with the same interface.
* :class:`ScheduleJob` / :func:`run_schedule_job` — the picklable job
  description and the module-level worker that executes one scheduler on
  one block.
* :func:`enumerate_workload_jobs` — deterministic job enumeration with
  stable job ids for one workload on one machine.

The determinism guarantee is documented in DESIGN.md ("The parallel
runner"); ``tests/test_runner.py`` enforces it.
"""

from repro.runner.batch import (
    BatchError,
    BatchResult,
    BatchScheduler,
    JobFailure,
    resolve_jobs,
)
from repro.runner.jobs import (
    SCHEDULER_KINDS,
    ScheduleJob,
    enumerate_workload_jobs,
    fingerprint_digest,
    run_schedule_job,
    schedule_job_id,
)

__all__ = [
    "BatchError",
    "BatchResult",
    "BatchScheduler",
    "JobFailure",
    "resolve_jobs",
    "SCHEDULER_KINDS",
    "ScheduleJob",
    "enumerate_workload_jobs",
    "fingerprint_digest",
    "run_schedule_job",
    "schedule_job_id",
]
