"""Scheduling jobs: the picklable unit of work of the parallel runner.

A :class:`ScheduleJob` fully describes one scheduler run — which
scheduler backend (any name registered in
:mod:`repro.scheduler.registry`), on which superblock, on which machine,
under which configuration — and carries a stable, human-readable job id
so batches can be enumerated, sharded, retried and merged
deterministically.  Because the backend is named rather than
instantiated, a single batch can mix heterogeneous backends
(``cars``/``vcs``/``hybrid``/``list``) and still shard across worker
processes: the job pickles its :class:`~repro.scheduler.BackendSpec`
coordinates, and the worker instantiates the backend on its side.
:func:`run_schedule_job` is the module-level worker entry point (module
level so it pickles by reference under every multiprocessing start
method).
"""

from __future__ import annotations

import hashlib
import json
import warnings
from dataclasses import dataclass, replace
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.runner.cache import CacheSpec, CacheStats, worker_cache
from repro.runner.pool import MachineRef, resolve_machine
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.fingerprint import schedule_cache_key
from repro.scheduler.registry import BackendSpec, backend_info
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig
from repro.workloads.suite import stable_block_id

#: The default baseline/proposed pair of the paper's experiments.  Any
#: backend registered in :mod:`repro.scheduler.registry` is a valid
#: ``ScheduleJob.scheduler``; this tuple is only the default comparison.
SCHEDULER_KINDS = ("cars", "vcs")


def schedule_job_id(
    scheduler: str,
    workload_name: str,
    machine_name: str,
    block_index: int,
    block_name: str,
) -> str:
    """The stable id of one (scheduler, workload, machine, block) job.

    Built on :func:`repro.workloads.suite.stable_block_id` — one id scheme
    for blocks across the whole system.  Ids are pure functions of the
    job's coordinates — independent of enumeration order, worker
    assignment and completion order — so a parallel batch and a serial
    batch name identical jobs identically.
    """
    return f"{scheduler}:{machine_name}:{stable_block_id(workload_name, block_index, block_name)}"


@dataclass(frozen=True)
class ScheduleJob:
    """One scheduler-backend run on one block of one machine."""

    job_id: str
    #: A backend name registered in :mod:`repro.scheduler.registry`.
    scheduler: str
    block: Superblock
    machine: ClusteredMachine
    vcs_config: Optional[VcsConfig] = None
    #: Validate the produced schedule inside the worker (parallelises the
    #: correctness check along with the scheduling).
    check_schedule: bool = True
    #: Backend-specific constructor options, as sorted ``(key, value)``
    #: pairs so the job stays hashable and picklable.
    backend_options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Raises UnknownBackendError for unregistered names — validation
        # happens at enumeration time, not inside a worker process.
        backend_info(self.scheduler)

    @property
    def spec(self) -> BackendSpec:
        """The job's backend coordinates as a :class:`BackendSpec`."""
        return BackendSpec(
            name=self.scheduler, vcs=self.vcs_config, options=self.backend_options
        )


def run_schedule_job(job: ScheduleJob) -> ScheduleResult:
    """Execute one job; the worker entry point of schedule batches."""
    result = job.spec.create().schedule(job.block, job.machine)
    if job.check_schedule and result.schedule is not None:
        validate_schedule(result.schedule).raise_if_invalid()
    return result


@dataclass(frozen=True)
class JobPayload:
    """The wire form of one :class:`ScheduleJob` on the runner.

    On the parallel path the job's machine is stripped and replaced by a
    :class:`~repro.runner.pool.MachineRef` (digest + declarative spec),
    so repeated jobs on the same machine ship a small reference payload
    that warm workers resolve against their per-process intern table
    instead of unpickling a full ``ClusteredMachine`` per job.  The
    payload also carries the :class:`~repro.runner.cache.CacheSpec` and
    the job's precomputed content-addressed cache key, so workers never
    consult the environment.
    """

    job: ScheduleJob
    #: ``None`` on the serial path (the job keeps its machine object).
    machine_ref: Optional[MachineRef] = None
    cache: CacheSpec = CacheSpec.disabled()
    #: Empty when caching is off for this payload.
    cache_key: str = ""

    @property
    def job_id(self) -> str:
        return self.job.job_id


def _run_payload_job(payload: JobPayload) -> Tuple[str, ScheduleResult]:
    """Worker entry point of cache-aware batches.

    Returns ``(outcome, result)`` where outcome is ``"hit"`` (served from
    the result cache), ``"miss"`` (computed and stored) or ``"off"``
    (computed, caching disabled) — the parent folds the tags into
    ``BatchResult.cache``, since worker-process counters are invisible
    across the process boundary.
    """
    job = payload.job
    if payload.machine_ref is not None:
        job = replace(job, machine=resolve_machine(payload.machine_ref))
    cache = worker_cache(payload.cache)
    if cache is not None and payload.cache_key:
        hit = cache.get(payload.cache_key)
        if hit is not None:
            return ("hit", hit)
    result = run_schedule_job(job)
    if cache is not None and payload.cache_key:
        cache.put(payload.cache_key, result)
        return ("miss", result)
    return ("off", result)


def _resolve_cache_spec(cache: object) -> CacheSpec:
    if cache is None:
        return CacheSpec.from_env()
    if isinstance(cache, CacheSpec):
        return cache
    spec = getattr(cache, "spec", None)
    if callable(spec):
        # A ResultCache instance.
        return spec()
    raise TypeError(f"cache must be None, a CacheSpec or a ResultCache, got {type(cache).__name__}")


def _execute_job_batch(
    jobs: Sequence[ScheduleJob],
    runner: Optional["BatchScheduler"] = None,
    cache: object = None,
    on_error: str = "raise",
) -> "BatchResult":
    """Run a job list through the (cached, machine-interned) batch runner.

    The execution core behind :func:`repro.api.schedule_many` (the public
    entry point) and the HTTP job server: jobs are keyed by content
    (:func:`repro.scheduler.fingerprint.schedule_cache_key`)
    and served from the on-disk result cache when possible; cache misses
    compute and store.  ``cache=None`` follows the environment
    (``REPRO_CACHE``/``REPRO_CACHE_DIR``); pass
    :meth:`CacheSpec.disabled() <repro.runner.cache.CacheSpec.disabled>`
    to force cold computes.  On the parallel path machines travel as
    interned references (see :class:`JobPayload`); the serial path keeps
    the original machine objects.  Values come back in submission order
    with ``BatchResult.cache`` aggregating worker-side hit/miss/store
    outcomes.
    """
    from repro.runner.batch import BatchError, BatchScheduler

    if on_error not in ("raise", "capture"):
        raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
    runner = runner if runner is not None else BatchScheduler()
    spec = _resolve_cache_spec(cache)
    jobs = list(jobs)
    intern_machines = runner.n_workers > 1 and len(jobs) > 1

    payloads: List[JobPayload] = []
    for job in jobs:
        key = ""
        if spec.enabled and spec.root:
            key = schedule_cache_key(
                job.block, job.machine, job.spec.to_dict(), salt=spec.salt
            )
        if intern_machines:
            payloads.append(
                JobPayload(
                    job=replace(job, machine=None),
                    machine_ref=MachineRef.of(job.machine),
                    cache=spec,
                    cache_key=key,
                )
            )
        else:
            payloads.append(JobPayload(job=job, cache=spec, cache_key=key))

    result = runner.map(
        _run_payload_job,
        payloads,
        job_ids=[job.job_id for job in jobs],
        on_error="capture",
    )
    stats = CacheStats()
    outcomes: List[str] = [""] * len(result.values)
    for index, value in enumerate(result.values):
        if value is None:
            continue
        outcome, schedule_result = value
        stats.record(outcome)
        outcomes[index] = outcome
        result.values[index] = schedule_result
    result.cache = stats
    result.cache_outcomes = outcomes
    if result.failures and on_error == "raise":
        raise BatchError(result.failures)
    return result


def map_schedule_jobs(
    jobs: Sequence[ScheduleJob],
    runner: Optional["BatchScheduler"] = None,
    cache: object = None,
    on_error: str = "raise",
) -> "BatchResult":
    """Deprecated alias of :func:`repro.api.schedule_many`.

    The batch driver moved behind the :mod:`repro.api` facade so the
    CLI, the analysis drivers and the HTTP job server share one entry
    point.  This shim keeps old imports working (identical semantics —
    it calls the same execution core) but warns; migrate to::

        from repro.api import schedule_many
    """
    warnings.warn(
        "map_schedule_jobs is deprecated; use repro.api.schedule_many "
        "(same semantics, one facade for CLI, drivers and the job server)",
        DeprecationWarning,
        stacklevel=2,
    )
    return _execute_job_batch(jobs, runner=runner, cache=cache, on_error=on_error)


def enumerate_workload_jobs(
    workload_name: str,
    blocks: Sequence[Superblock],
    machine: ClusteredMachine,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
) -> List[ScheduleJob]:
    """Enumerate the jobs of one workload on one machine, in the canonical
    order: blocks in position order, ``schedulers`` order within a block.

    The canonical order is the contract the deterministic merge relies
    on: results are reassembled by job list position, so any two calls
    with the same inputs enumerate identical job lists.  ``vcs_config``
    is attached to the backends that consume it (``vcs``, ``hybrid``, …)
    and omitted from the rest, so one call can enumerate a heterogeneous
    backend comparison.
    """
    jobs: List[ScheduleJob] = []
    for index, block in enumerate(blocks):
        for scheduler in schedulers:
            jobs.append(
                ScheduleJob(
                    job_id=schedule_job_id(
                        scheduler, workload_name, machine.name, index, block.name
                    ),
                    scheduler=scheduler,
                    block=block,
                    machine=machine,
                    vcs_config=(
                        vcs_config if backend_info(scheduler).uses_vcs_config else None
                    ),
                    check_schedule=check_schedules,
                )
            )
    return jobs


def fingerprint_digest(fingerprints: Iterable[object]) -> str:
    """A stable hex digest of a sequence of schedule fingerprints.

    Used by ``scripts/bench_report.py`` and the CI perf-regression gate to
    compare schedule populations byte-for-byte without storing them.
    """
    canonical = json.dumps(list(fingerprints), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
