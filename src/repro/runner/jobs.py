"""Scheduling jobs: the picklable unit of work of the parallel runner.

A :class:`ScheduleJob` fully describes one scheduler run — which
scheduler backend (any name registered in
:mod:`repro.scheduler.registry`), on which superblock, on which machine,
under which configuration — and carries a stable, human-readable job id
so batches can be enumerated, sharded, retried and merged
deterministically.  Because the backend is named rather than
instantiated, a single batch can mix heterogeneous backends
(``cars``/``vcs``/``hybrid``/``list``) and still shard across worker
processes: the job pickles its :class:`~repro.scheduler.BackendSpec`
coordinates, and the worker instantiates the backend on its side.
:func:`run_schedule_job` is the module-level worker entry point (module
level so it pickles by reference under every multiprocessing start
method).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Tuple

from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.registry import BackendSpec, backend_info
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig
from repro.workloads.suite import stable_block_id

#: The default baseline/proposed pair of the paper's experiments.  Any
#: backend registered in :mod:`repro.scheduler.registry` is a valid
#: ``ScheduleJob.scheduler``; this tuple is only the default comparison.
SCHEDULER_KINDS = ("cars", "vcs")


def schedule_job_id(
    scheduler: str,
    workload_name: str,
    machine_name: str,
    block_index: int,
    block_name: str,
) -> str:
    """The stable id of one (scheduler, workload, machine, block) job.

    Built on :func:`repro.workloads.suite.stable_block_id` — one id scheme
    for blocks across the whole system.  Ids are pure functions of the
    job's coordinates — independent of enumeration order, worker
    assignment and completion order — so a parallel batch and a serial
    batch name identical jobs identically.
    """
    return f"{scheduler}:{machine_name}:{stable_block_id(workload_name, block_index, block_name)}"


@dataclass(frozen=True)
class ScheduleJob:
    """One scheduler-backend run on one block of one machine."""

    job_id: str
    #: A backend name registered in :mod:`repro.scheduler.registry`.
    scheduler: str
    block: Superblock
    machine: ClusteredMachine
    vcs_config: Optional[VcsConfig] = None
    #: Validate the produced schedule inside the worker (parallelises the
    #: correctness check along with the scheduling).
    check_schedule: bool = True
    #: Backend-specific constructor options, as sorted ``(key, value)``
    #: pairs so the job stays hashable and picklable.
    backend_options: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        # Raises UnknownBackendError for unregistered names — validation
        # happens at enumeration time, not inside a worker process.
        backend_info(self.scheduler)

    @property
    def spec(self) -> BackendSpec:
        """The job's backend coordinates as a :class:`BackendSpec`."""
        return BackendSpec(
            name=self.scheduler, vcs=self.vcs_config, options=self.backend_options
        )


def run_schedule_job(job: ScheduleJob) -> ScheduleResult:
    """Execute one job; the worker entry point of schedule batches."""
    result = job.spec.create().schedule(job.block, job.machine)
    if job.check_schedule and result.schedule is not None:
        validate_schedule(result.schedule).raise_if_invalid()
    return result


def enumerate_workload_jobs(
    workload_name: str,
    blocks: Sequence[Superblock],
    machine: ClusteredMachine,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
) -> List[ScheduleJob]:
    """Enumerate the jobs of one workload on one machine, in the canonical
    order: blocks in position order, ``schedulers`` order within a block.

    The canonical order is the contract the deterministic merge relies
    on: results are reassembled by job list position, so any two calls
    with the same inputs enumerate identical job lists.  ``vcs_config``
    is attached to the backends that consume it (``vcs``, ``hybrid``, …)
    and omitted from the rest, so one call can enumerate a heterogeneous
    backend comparison.
    """
    jobs: List[ScheduleJob] = []
    for index, block in enumerate(blocks):
        for scheduler in schedulers:
            jobs.append(
                ScheduleJob(
                    job_id=schedule_job_id(
                        scheduler, workload_name, machine.name, index, block.name
                    ),
                    scheduler=scheduler,
                    block=block,
                    machine=machine,
                    vcs_config=(
                        vcs_config if backend_info(scheduler).uses_vcs_config else None
                    ),
                    check_schedule=check_schedules,
                )
            )
    return jobs


def fingerprint_digest(fingerprints: Iterable[object]) -> str:
    """A stable hex digest of a sequence of schedule fingerprints.

    Used by ``scripts/bench_report.py`` and the CI perf-regression gate to
    compare schedule populations byte-for-byte without storing them.
    """
    canonical = json.dumps(list(fingerprints), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
