"""Scheduling jobs: the picklable unit of work of the parallel runner.

A :class:`ScheduleJob` fully describes one scheduler run — which
scheduler, on which superblock, on which machine, under which
configuration — and carries a stable, human-readable job id so batches
can be enumerated, sharded, retried and merged deterministically.
:func:`run_schedule_job` is the module-level worker entry point (module
level so it pickles by reference under every multiprocessing start
method).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence

from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.scheduler.cars import CarsScheduler
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig, VirtualClusterScheduler
from repro.workloads.suite import stable_block_id

#: Scheduler kinds a job can request.
SCHEDULER_KINDS = ("cars", "vcs")


def schedule_job_id(
    scheduler: str,
    workload_name: str,
    machine_name: str,
    block_index: int,
    block_name: str,
) -> str:
    """The stable id of one (scheduler, workload, machine, block) job.

    Built on :func:`repro.workloads.suite.stable_block_id` — one id scheme
    for blocks across the whole system.  Ids are pure functions of the
    job's coordinates — independent of enumeration order, worker
    assignment and completion order — so a parallel batch and a serial
    batch name identical jobs identically.
    """
    return f"{scheduler}:{machine_name}:{stable_block_id(workload_name, block_index, block_name)}"


@dataclass(frozen=True)
class ScheduleJob:
    """One scheduler run on one block of one machine."""

    job_id: str
    scheduler: str
    block: Superblock
    machine: ClusteredMachine
    vcs_config: Optional[VcsConfig] = None
    #: Validate the produced schedule inside the worker (parallelises the
    #: correctness check along with the scheduling).
    check_schedule: bool = True

    def __post_init__(self) -> None:
        if self.scheduler not in SCHEDULER_KINDS:
            raise ValueError(
                f"unknown scheduler {self.scheduler!r}; expected one of {SCHEDULER_KINDS}"
            )


def run_schedule_job(job: ScheduleJob) -> ScheduleResult:
    """Execute one job; the worker entry point of schedule batches."""
    if job.scheduler == "cars":
        result = CarsScheduler().schedule(job.block, job.machine)
    else:
        scheduler = VirtualClusterScheduler(job.vcs_config or VcsConfig())
        result = scheduler.schedule(job.block, job.machine)
    if job.check_schedule and result.schedule is not None:
        validate_schedule(result.schedule).raise_if_invalid()
    return result


def enumerate_workload_jobs(
    workload_name: str,
    blocks: Sequence[Superblock],
    machine: ClusteredMachine,
    vcs_config: Optional[VcsConfig] = None,
    check_schedules: bool = True,
    schedulers: Sequence[str] = SCHEDULER_KINDS,
) -> List[ScheduleJob]:
    """Enumerate the jobs of one workload on one machine, in the canonical
    order: blocks in position order, ``schedulers`` order within a block.

    The canonical order is the contract the deterministic merge relies
    on: results are reassembled by job list position, so any two calls
    with the same inputs enumerate identical job lists.
    """
    jobs: List[ScheduleJob] = []
    for index, block in enumerate(blocks):
        for scheduler in schedulers:
            jobs.append(
                ScheduleJob(
                    job_id=schedule_job_id(
                        scheduler, workload_name, machine.name, index, block.name
                    ),
                    scheduler=scheduler,
                    block=block,
                    machine=machine,
                    vcs_config=vcs_config if scheduler == "vcs" else None,
                    check_schedule=check_schedules,
                )
            )
    return jobs


def fingerprint_digest(fingerprints: Iterable[object]) -> str:
    """A stable hex digest of a sequence of schedule fingerprints.

    Used by ``scripts/bench_report.py`` and the CI perf-regression gate to
    compare schedule populations byte-for-byte without storing them.
    """
    canonical = json.dumps(list(fingerprints), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode("utf-8")).hexdigest()
