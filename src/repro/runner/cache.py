"""Content-addressed on-disk cache of :class:`ScheduleResult`\\ s.

A scheduling job is a pure function of (block, machine, backend spec)
plus the code revision — :mod:`repro.scheduler.fingerprint` folds those
into one SHA-256 key, and this module maps that key to a pickled
:class:`~repro.scheduler.schedule.ScheduleResult` on disk.  A warm suite
re-run therefore recomputes only cells whose inputs (or the code salt)
changed; the gated 12-cell matrix re-runs with zero recomputed cells.

Layout and guarantees:

* Root directory defaults to ``~/.cache/repro``; ``REPRO_CACHE_DIR``
  overrides it and ``REPRO_CACHE=off`` disables the cache entirely.
* Entries live at ``<root>/<salt>/<key[:2]>/<key>.pkl`` — the salt is a
  path component, so bumping :data:`~repro.scheduler.fingerprint.CODE_SALT`
  invalidates every old entry at once without touching the disk.
* Writes are atomic: pickle to a unique temp file in the entry's
  directory, then ``os.replace`` — concurrent workers storing the same
  key cannot interleave partial writes, and a reader sees either the
  complete old entry or the complete new one.
* A corrupt/truncated/unreadable entry is treated as a miss (and
  removed best-effort); the job simply recomputes.
* :class:`CacheStats` counts hits/misses/stores; the batch layer
  aggregates worker-side outcomes into these parent-side counters, so
  ``BatchResult.cache`` reflects what actually happened in the pool.

Cache hits are byte-identical to cold runs by construction: the stored
object is the full ``ScheduleResult`` (schedule, stats, dp_work,
fingerprints), serialized after the cold compute.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional

from repro.config import env_knob, parse_cache, parse_cache_dir
from repro.scheduler.fingerprint import CODE_SALT

#: Environment switch: ``REPRO_CACHE=off`` (or ``0``/``false``) disables
#: the result cache entirely.
CACHE_ENV_VAR = env_knob("cache").env
#: Environment override for the cache root directory.
CACHE_DIR_ENV_VAR = env_knob("cache_dir").env


def cache_enabled() -> bool:
    """Whether the result cache is enabled (``REPRO_CACHE``).

    Parse rule shared with :class:`repro.config.RuntimeConfig`.
    """
    return parse_cache(os.environ.get(CACHE_ENV_VAR, "on"))


def default_cache_dir() -> Path:
    """The cache root: ``REPRO_CACHE_DIR`` or ``~/.cache/repro``."""
    return Path(parse_cache_dir(os.environ.get(CACHE_DIR_ENV_VAR, "")))


@dataclass
class CacheStats:
    """Hit/miss/store counters for one batch or suite run."""

    hits: int = 0
    misses: int = 0
    stores: int = 0

    @property
    def lookups(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        return self.hits / self.lookups if self.lookups else 0.0

    def record(self, outcome: str) -> None:
        """Fold one worker-reported outcome tag into the counters."""
        if outcome == "hit":
            self.hits += 1
        elif outcome == "miss":
            self.misses += 1
            self.stores += 1

    def merge(self, other: "CacheStats") -> None:
        self.hits += other.hits
        self.misses += other.misses
        self.stores += other.stores

    def to_dict(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "stores": self.stores,
            "lookups": self.lookups,
            "hit_rate": round(self.hit_rate, 4),
        }


@dataclass(frozen=True)
class CacheSpec:
    """A picklable description of the cache a worker should use.

    Shipped inside job payloads so worker processes never consult the
    environment (a persistent pool's workers may have been spawned
    before the environment was mutated).  ``enabled=False`` is the
    explicit "no caching" spec.
    """

    root: str = ""
    salt: str = CODE_SALT
    enabled: bool = True

    @staticmethod
    def from_env(
        cache_dir: Optional[str] = None, enabled: Optional[bool] = None
    ) -> "CacheSpec":
        """The cache spec the current environment asks for, with optional
        explicit overrides (CLI flags win over env)."""
        if enabled is None:
            enabled = cache_enabled()
        root = str(Path(cache_dir) if cache_dir else default_cache_dir())
        return CacheSpec(root=root, salt=CODE_SALT, enabled=enabled)

    @staticmethod
    def disabled() -> "CacheSpec":
        return CacheSpec(root="", salt=CODE_SALT, enabled=False)

    def open(self) -> Optional["ResultCache"]:
        """The :class:`ResultCache` this spec describes, or ``None``."""
        if not self.enabled or not self.root:
            return None
        return ResultCache(Path(self.root), salt=self.salt)


class ResultCache:
    """The on-disk store: key -> pickled ``ScheduleResult``."""

    def __init__(self, root: Path, salt: str = CODE_SALT):
        self.root = Path(root)
        self.salt = salt
        self.stats = CacheStats()

    def spec(self) -> CacheSpec:
        return CacheSpec(root=str(self.root), salt=self.salt, enabled=True)

    def _path(self, key: str) -> Path:
        return self.root / self.salt / key[:2] / f"{key}.pkl"

    def get(self, key: str):
        """The cached result for *key*, or ``None`` on a miss.

        Unpickling failures (corrupt or truncated entries) count as
        misses; the bad entry is removed best-effort so the next store
        rewrites it cleanly.
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except Exception:
            self.stats.misses += 1
            try:
                path.unlink()
            except OSError:
                pass
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result) -> None:
        """Store *result* under *key* atomically (tmp file + rename)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(
            dir=path.parent, prefix=f".{key[:8]}-", suffix=".tmp"
        )
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def __contains__(self, key: str) -> bool:
        return self._path(key).exists()


# Worker-local open cache handles, keyed by (root, salt) so one worker
# serving jobs with different cache specs keeps them separate.
_WORKER_CACHES: dict = {}


def worker_cache(spec: CacheSpec) -> Optional[ResultCache]:
    """The worker-process cache for *spec* (interned per worker)."""
    if not spec.enabled or not spec.root:
        return None
    key = (spec.root, spec.salt)
    cache = _WORKER_CACHES.get(key)
    if cache is None:
        cache = ResultCache(Path(spec.root), salt=spec.salt)
        _WORKER_CACHES[key] = cache
    return cache
