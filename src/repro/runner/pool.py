"""A persistent, process-wide worker pool shared across batches.

Spinning up a ``ProcessPoolExecutor`` costs forked/spawned interpreters,
package re-imports and warm-up of every per-process cache — a price the
old per-batch executors paid on *every* ``run_batch``/matrix/suite call,
which is why ``REPRO_JOBS=2`` used to run the suite *slower* than serial
on small batches.  This module keeps one executor per (worker count,
start method) alive for the life of the process:

* :func:`shared_pool` returns the process-wide :class:`PersistentPool`
  for a worker count, creating its executor lazily on first use and
  reusing it across every subsequent batch (``atexit`` tears the pools
  down; :class:`PersistentPool` is also a context manager for scoped
  use).
* Workers are **warm**: the pool initializer pre-imports the scheduler,
  machine and workload layers so the first real job does not pay the
  import cost, and :func:`resolve_machine` interns reconstructed
  machines per worker keyed by machine digest — repeated jobs on the
  same machine spec ship only the small spec dict (and after the first
  resolution hit only the digest lookup), not a re-pickled
  ``ClusteredMachine`` dragging its cached capacity tables along.
* After a worker crash (``BrokenProcessPool``) or a timeout teardown the
  batch layer calls :meth:`PersistentPool.replace`, which discards the
  broken executor; the next batch transparently spins up a fresh one —
  per-job failure taxonomy is unchanged.

``REPRO_POOL=fresh`` (or ``off``) disables reuse globally and restores
the historical executor-per-batch behaviour.
"""

from __future__ import annotations

import atexit
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass
from typing import Dict, Mapping, Optional, Tuple

from repro.config import env_knob, parse_pool

#: Environment variable selecting the pool policy: ``persistent`` (the
#: default; one shared executor per worker count, reused across batches)
#: or ``fresh``/``off`` (one executor per batch, the historical mode).
POOL_ENV_VAR = env_knob("pool").env


def pool_reuse_enabled() -> bool:
    """Whether the shared persistent pool is enabled (``REPRO_POOL``).

    Parse rule shared with :class:`repro.config.RuntimeConfig`.
    """
    return parse_pool(os.environ.get(POOL_ENV_VAR, "persistent"))


def _warm_worker() -> None:
    """Worker initializer: pre-import the packages every job needs."""
    import repro.machine  # noqa: F401
    import repro.runner  # noqa: F401
    import repro.scheduler  # noqa: F401
    import repro.workloads  # noqa: F401


class PersistentPool:
    """One lazily-created ``ProcessPoolExecutor`` that outlives batches.

    The executor is created on first :meth:`executor` call and reused
    until :meth:`replace` (after a crash/timeout) or :meth:`shutdown`.
    ``spin_ups`` counts executor creations and ``batches_served`` the
    batches dispatched through the pool — the reuse evidence the bench
    report records.
    """

    def __init__(self, n_workers: int, mp_context: Optional[object] = None):
        self.n_workers = n_workers
        self.mp_context = mp_context
        self._executor: Optional[ProcessPoolExecutor] = None
        self._lock = threading.Lock()
        self.spin_ups = 0
        self.batches_served = 0

    def executor(self) -> ProcessPoolExecutor:
        """The live executor, created (and counted) on first use."""
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.n_workers,
                    mp_context=self.mp_context,
                    initializer=_warm_worker,
                )
                self.spin_ups += 1
            return self._executor

    def replace(self) -> None:
        """Discard the current executor (crashed or torn down after a
        timeout); the next :meth:`executor` call creates a fresh one."""
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=wait, cancel_futures=True)

    @property
    def alive(self) -> bool:
        return self._executor is not None

    def stats(self) -> Dict[str, int]:
        return {
            "n_workers": self.n_workers,
            "spin_ups": self.spin_ups,
            "batches_served": self.batches_served,
        }

    def __enter__(self) -> "PersistentPool":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()


_POOLS: Dict[Tuple[int, int], PersistentPool] = {}
_POOLS_LOCK = threading.Lock()


def shared_pool(n_workers: int, mp_context: Optional[object] = None) -> PersistentPool:
    """The process-wide pool for *n_workers* (one per worker count and
    multiprocessing context), created on first request."""
    key = (n_workers, id(mp_context))
    with _POOLS_LOCK:
        pool = _POOLS.get(key)
        if pool is None:
            pool = PersistentPool(n_workers, mp_context)
            _POOLS[key] = pool
        return pool


def shutdown_shared_pools(wait: bool = False) -> None:
    """Tear every shared pool down (atexit hook; also used by tests)."""
    with _POOLS_LOCK:
        pools = list(_POOLS.values())
        _POOLS.clear()
    for pool in pools:
        pool.shutdown(wait=wait)


def shared_pool_stats() -> Dict[str, Dict[str, int]]:
    """Spin-up/reuse counters of every live shared pool, keyed by worker
    count (the bench report's pool-reuse evidence)."""
    with _POOLS_LOCK:
        return {str(pool.n_workers): pool.stats() for pool in _POOLS.values()}


atexit.register(shutdown_shared_pools)


# --------------------------------------------------------------------------- #
# warm-worker machine interning
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class MachineRef:
    """A machine shipped as (digest, declarative spec dict) instead of a
    pickled ``ClusteredMachine``.

    The digest keys the worker-side intern table; the spec dict is only
    consulted on the first job a worker sees for that machine, so the
    per-job payload stays small and the reconstructed machine's cached
    capacity tables warm up once per worker instead of once per job.
    """

    digest: str
    spec: Tuple[Tuple[str, object], ...]

    @staticmethod
    def of(machine) -> "MachineRef":
        from repro.scheduler.fingerprint import machine_digest, machine_fingerprint

        return MachineRef(
            digest=machine_digest(machine),
            spec=_freeze(machine_fingerprint(machine)),
        )


def _freeze(mapping: Mapping) -> Tuple[Tuple[str, object], ...]:
    """A hashable, picklable deep-frozen view of a JSON-style dict."""
    out = []
    for key, value in sorted(mapping.items()):
        if isinstance(value, Mapping):
            value = _freeze(value)
        elif isinstance(value, (list, tuple)):
            value = tuple(
                _freeze(item) if isinstance(item, Mapping) else item for item in value
            )
        out.append((key, value))
    return tuple(out)


def _thaw(frozen: Tuple[Tuple[str, object], ...]) -> dict:
    out: dict = {}
    for key, value in frozen:
        if isinstance(value, tuple) and value and all(
            isinstance(item, tuple) and len(item) == 2 and isinstance(item[0], str)
            for item in value
        ):
            value = _thaw(value)  # type: ignore[arg-type]
        elif isinstance(value, tuple):
            value = [
                _thaw(item) if isinstance(item, tuple) else item for item in value
            ]
        out[key] = value
    return out


#: Worker-local intern table: machine digest -> reconstructed machine.
_MACHINES: Dict[str, object] = {}


def resolve_machine(ref: MachineRef):
    """The interned machine for *ref*, reconstructing it on first sight."""
    machine = _MACHINES.get(ref.digest)
    if machine is None:
        from repro.machine.spec import MachineSpec

        machine = MachineSpec.from_dict(_thaw(ref.spec)).to_machine()
        _MACHINES[ref.digest] = machine
    return machine
