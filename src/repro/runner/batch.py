"""The batch scheduler: deterministic sharded execution of a job list.

Jobs are assumed independent and deterministic.  The scheduler dispatches
jobs to a process pool in small strides and writes every result back into
the slot of its originating job, so the returned value list is in
submission order no matter which worker finished first — a parallel run
is byte-identical to a serial one.  Dispatch is *work-stealing* in
effect: with the default stride of one job per pool task, idle workers
pull the next pending job off the executor's queue, so a straggler job
no longer serializes the whole tail of a contiguous chunk.

By default batches run on the process-wide persistent pool
(:mod:`repro.runner.pool`): the executor survives across
``map`` calls, so a suite of many small batches pays worker spin-up and
package import once instead of per batch.  ``persistent=False`` (or
``REPRO_POOL=fresh``) restores the executor-per-batch behaviour.

Failure handling is per job: an exception inside a job is captured in
the worker (type, message, traceback) and reported as a
:class:`JobFailure` without poisoning the rest of its stride.  Two whole-
pool failure modes are also mapped back onto jobs: a worker process that
dies (``BrokenProcessPool``) fails every job still in flight, and an
expired stride deadline (``timeout`` × jobs in the stride) tears the pool
down and fails the unfinished jobs as ``timeout`` / ``cancelled``.  In
both cases a shared pool is *replaced*, not merely shut down — the next
batch transparently gets a fresh pool.
"""

from __future__ import annotations

import os
import time
import traceback
from concurrent.futures import ProcessPoolExecutor, TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.config import env_knob, parse_jobs
from repro.runner.cache import CacheStats
from repro.runner.pool import PersistentPool, pool_reuse_enabled, shared_pool

#: Environment variable selecting the default worker count.
JOBS_ENV_VAR = env_knob("jobs").env


def resolve_jobs(jobs: Optional[object] = None) -> int:
    """Resolve a worker count from an explicit value or ``REPRO_JOBS``.

    ``None`` falls back to the environment variable, and an unset
    environment means serial execution.  ``"auto"`` selects the machine's
    CPU count.  Anything else must be a positive integer — zero and
    negative counts are rejected with :class:`ValueError` (use ``"auto"``
    to ask for the CPU count explicitly).  The parse rule lives in
    :func:`repro.config.parse_jobs` (precedence: explicit arg > env >
    default).
    """
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV_VAR, "1")
    return parse_jobs(jobs)


@dataclass(frozen=True)
class JobFailure:
    """One job that did not produce a result."""

    index: int
    job_id: str
    #: ``"error"`` (exception in the job), ``"timeout"`` (chunk deadline
    #: expired), ``"crash"`` (worker process died) or ``"cancelled"``
    #: (chunk abandoned while tearing the pool down).
    kind: str
    error_type: str = ""
    message: str = ""
    traceback_text: str = ""

    def describe(self) -> str:
        detail = f": {self.error_type}: {self.message}" if self.error_type else ""
        return f"job {self.job_id} [{self.kind}]{detail}"


class BatchError(RuntimeError):
    """Raised when a batch had failures and ``on_error='raise'``."""

    def __init__(self, failures: Sequence[JobFailure]):
        self.failures = list(failures)
        lines = [failure.describe() for failure in self.failures[:5]]
        if len(self.failures) > 5:
            lines.append(f"... and {len(self.failures) - 5} more")
        super().__init__(f"{len(self.failures)} of the batch's jobs failed:\n" + "\n".join(lines))


@dataclass
class BatchResult:
    """Outcome of one batch, in submission order."""

    #: One entry per job, in submission order; ``None`` for failed jobs.
    values: List[Any]
    failures: List[JobFailure] = field(default_factory=list)
    wall_time: float = 0.0
    n_workers: int = 1
    chunk_size: int = 1
    backend: str = "serial"
    #: Result-cache hit/miss/store counters aggregated from the workers;
    #: ``None`` when the batch ran without a cache-aware job function.
    cache: Optional[CacheStats] = None
    #: Per-job outcome tags (``"hit"``/``"miss"``/``"off"``; ``""`` for
    #: failed jobs), in submission order — the per-job split behind the
    #: aggregate ``cache`` counters.  ``None`` outside cache-aware runs.
    cache_outcomes: Optional[List[str]] = None

    @property
    def n_jobs(self) -> int:
        return len(self.values)

    @property
    def ok(self) -> bool:
        return not self.failures


def _run_chunk(
    fn: Callable[[Any], Any], chunk: List[Tuple[int, Any]]
) -> List[Tuple[int, str, Any]]:
    """Worker entry point: run every job of a chunk, capturing per-job errors.

    Module-level so it pickles by reference under every start method.
    """
    out: List[Tuple[int, str, Any]] = []
    for index, payload in chunk:
        # Exception (not BaseException) to match the serial backend:
        # SystemExit/KeyboardInterrupt abort the worker in both modes.
        try:
            out.append((index, "ok", fn(payload)))
        except Exception as exc:
            out.append((index, "err", (type(exc).__name__, str(exc), traceback.format_exc())))
    return out


class BatchScheduler:
    """Shard a list of independent jobs across worker processes.

    Parameters
    ----------
    jobs:
        Worker count; ``None`` reads ``REPRO_JOBS`` (default 1 = serial),
        ``"auto"`` or values <= 0 use the CPU count.
    chunk_size:
        Jobs dispatched per pool task (the work-stealing stride).
        ``None`` picks 1 — each job is its own pool task, so idle
        workers steal pending jobs and a straggler never serializes a
        contiguous chunk behind it.  Raise it only when per-task
        dispatch overhead dominates very cheap jobs.
    timeout:
        Per-job time allowance in seconds, enforced at stride granularity
        (a stride's deadline is ``timeout`` times its job count).  ``None``
        disables the deadline.  Only the process backend can preempt; the
        serial backend runs every job to completion.
    mp_context:
        Optional ``multiprocessing`` context (e.g. to force ``"spawn"``).
    persistent:
        Reuse the process-wide shared pool (:func:`repro.runner.pool.shared_pool`)
        across batches instead of spinning up an executor per ``map``
        call.  ``None`` reads ``REPRO_POOL`` (default: persistent).
    """

    def __init__(
        self,
        jobs: Optional[object] = None,
        chunk_size: Optional[int] = None,
        timeout: Optional[float] = None,
        mp_context: Optional[object] = None,
        persistent: Optional[bool] = None,
    ):
        self.n_workers = resolve_jobs(jobs)
        if chunk_size is not None and chunk_size <= 0:
            raise ValueError("chunk_size must be positive")
        self.chunk_size = chunk_size
        self.timeout = timeout
        self.mp_context = mp_context
        self.persistent = pool_reuse_enabled() if persistent is None else persistent

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def map(
        self,
        fn: Callable[[Any], Any],
        payloads: Sequence[Any],
        job_ids: Optional[Sequence[str]] = None,
        on_error: str = "raise",
    ) -> BatchResult:
        """Run ``fn`` over ``payloads``; results come back in input order.

        ``on_error='raise'`` raises :class:`BatchError` if any job failed;
        ``on_error='capture'`` returns the failures in the result instead,
        with ``None`` in the failed jobs' value slots.
        """
        if on_error not in ("raise", "capture"):
            raise ValueError(f"on_error must be 'raise' or 'capture', got {on_error!r}")
        payloads = list(payloads)
        ids = self._job_ids(payloads, job_ids)

        start = time.perf_counter()
        if self.n_workers == 1 or len(payloads) <= 1:
            result = self._map_serial(fn, payloads, ids)
        else:
            result = self._map_process_pool(fn, payloads, ids)
        result.wall_time = time.perf_counter() - start

        if result.failures and on_error == "raise":
            raise BatchError(result.failures)
        return result

    # ------------------------------------------------------------------ #
    # backends
    # ------------------------------------------------------------------ #
    def _map_serial(self, fn, payloads, ids) -> BatchResult:
        values: List[Any] = []
        failures: List[JobFailure] = []
        for index, payload in enumerate(payloads):
            try:
                values.append(fn(payload))
            except Exception as exc:
                values.append(None)
                failures.append(
                    JobFailure(
                        index=index,
                        job_id=ids[index],
                        kind="error",
                        error_type=type(exc).__name__,
                        message=str(exc),
                        traceback_text=traceback.format_exc(),
                    )
                )
        return BatchResult(values=values, failures=failures, n_workers=1, backend="serial")

    def _acquire_executor(self) -> Tuple[ProcessPoolExecutor, Optional[PersistentPool]]:
        """The executor to run on, plus the shared pool owning it (if any)."""
        if self.persistent:
            pool = shared_pool(self.n_workers, self.mp_context)
            try:
                return pool.executor(), pool
            except Exception:
                # A broken registry entry (e.g. executor shut down behind
                # our back): replace and retry once before giving up.
                pool.replace()
                return pool.executor(), pool
        executor = ProcessPoolExecutor(max_workers=self.n_workers, mp_context=self.mp_context)
        return executor, None

    def _map_process_pool(self, fn, payloads, ids) -> BatchResult:
        # Work-stealing stride: one job per pool task by default, so idle
        # workers pull pending jobs instead of waiting behind a straggler's
        # contiguous chunk.  Determinism is untouched — results land in
        # values[index] regardless of completion order.
        chunk_size = self.chunk_size or 1
        indexed = list(enumerate(payloads))
        chunks = [indexed[i : i + chunk_size] for i in range(0, len(indexed), chunk_size)]

        values: List[Any] = [None] * len(payloads)
        failures: List[JobFailure] = []
        aborted = False

        def harvest(chunk_results) -> None:
            for index, tag, payload in chunk_results:
                if tag == "ok":
                    values[index] = payload
                else:
                    error_type, message, tb = payload
                    failures.append(
                        JobFailure(
                            index=index,
                            job_id=ids[index],
                            kind="error",
                            error_type=error_type,
                            message=message,
                            traceback_text=tb,
                        )
                    )

        executor, pool = self._acquire_executor()
        try:
            try:
                futures = [(chunk, executor.submit(_run_chunk, fn, chunk)) for chunk in chunks]
            except (BrokenProcessPool, RuntimeError):
                # The shared executor died between batches; replace it and
                # resubmit the whole batch on a fresh pool.
                if pool is None:
                    raise
                pool.replace()
                executor = pool.executor()
                futures = [(chunk, executor.submit(_run_chunk, fn, chunk)) for chunk in chunks]
            for chunk, future in futures:
                if aborted:
                    # The pool is gone; keep whatever already finished and
                    # fail the rest without waiting.
                    if future.cancelled():
                        failures.extend(self._fail_chunk(chunk, ids, "cancelled"))
                    elif future.done():
                        exc = future.exception()
                        if exc is None:
                            harvest(future.result())
                        else:
                            failures.extend(self._fail_chunk(chunk, ids, "crash", exc))
                    else:
                        future.cancel()
                        failures.extend(self._fail_chunk(chunk, ids, "cancelled"))
                    continue
                deadline = None if self.timeout is None else self.timeout * len(chunk)
                try:
                    harvest(future.result(timeout=deadline))
                except FutureTimeoutError:
                    failures.extend(self._fail_chunk(chunk, ids, "timeout"))
                    self._kill_workers(executor)
                    aborted = True
                except BrokenProcessPool as exc:
                    failures.extend(self._fail_chunk(chunk, ids, "crash", exc))
                    aborted = True
        finally:
            if pool is not None:
                pool.batches_served += 1
                if aborted:
                    # Crashed or timed out: discard the executor so the
                    # next batch transparently gets a fresh pool.
                    pool.replace()
            else:
                executor.shutdown(wait=not aborted, cancel_futures=True)

        failures.sort(key=lambda f: f.index)
        return BatchResult(
            values=values,
            failures=failures,
            n_workers=self.n_workers,
            chunk_size=chunk_size,
            backend="process",
        )

    # ------------------------------------------------------------------ #
    # failure bookkeeping
    # ------------------------------------------------------------------ #
    @staticmethod
    def _job_ids(payloads, job_ids) -> List[str]:
        if job_ids is None:
            return [getattr(p, "job_id", f"job-{i:04d}") for i, p in enumerate(payloads)]
        ids = list(job_ids)
        if len(ids) != len(payloads):
            raise ValueError(f"{len(ids)} job ids for {len(payloads)} payloads")
        return ids

    @staticmethod
    def _fail_chunk(chunk, ids, kind, exc: Optional[BaseException] = None) -> List[JobFailure]:
        error_type = type(exc).__name__ if exc is not None else ""
        message = str(exc) if exc is not None else ""
        return [
            JobFailure(
                index=index, job_id=ids[index], kind=kind, error_type=error_type, message=message
            )
            for index, _ in chunk
        ]

    @staticmethod
    def _kill_workers(executor: ProcessPoolExecutor) -> None:
        """Terminate worker processes after a timeout (best effort)."""
        processes = getattr(executor, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.terminate()
            except Exception:
                pass
