"""The Virtual Cluster Graph: fusion and incompatibility bookkeeping."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple


class VCContradiction(Exception):
    """A fusion/incompatibility request conflicts with the current VCG."""


class VirtualClusterGraph:
    """Tracks virtual clusters over a set of operations.

    Every operation starts in its own virtual cluster.  Two kinds of updates
    are possible, mirroring the paper's Section 3.2:

    * ``fuse(u, v)``  — the operations' VCs must map to the *same* physical
      cluster; the VCs are merged and incompatibility edges are re-pointed
      at the merged VC.
    * ``mark_incompatible(u, v)`` — the operations' VCs must map to
      *different* physical clusters; an undirected edge is added between
      them.

    Requesting a fusion of incompatible VCs, or an incompatibility inside a
    single VC, raises :class:`VCContradiction` — exactly the contradiction
    case (c) of the deduction process.

    VCs may also be *pinned* to a physical cluster (used by the final
    mapping stage); fusing VCs pinned to different physical clusters is a
    contradiction, as is marking two VCs pinned to the same physical cluster
    incompatible.
    """

    def __init__(self, op_ids: Iterable[int] = ()) -> None:
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        self._edges: Dict[int, Set[int]] = {}
        self._pins: Dict[int, int] = {}
        for op_id in op_ids:
            self.add(op_id)

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add(self, op_id: int) -> None:
        if op_id not in self._parent:
            self._parent[op_id] = op_id
            self._size[op_id] = 1
            self._edges[op_id] = set()

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._parent

    def vc_of(self, op_id: int) -> int:
        """Representative (root) of the VC containing *op_id*."""
        if op_id not in self._parent:
            raise KeyError(f"unknown operation {op_id}")
        root = op_id
        while self._parent[root] != root:
            root = self._parent[root]
        # Path compression.
        node = op_id
        while self._parent[node] != root:
            self._parent[node], node = root, self._parent[node]
        return root

    def same_vc(self, u: int, v: int) -> bool:
        return self.vc_of(u) == self.vc_of(v)

    def members(self, op_id: int) -> List[int]:
        """All operations in the VC containing *op_id*."""
        root = self.vc_of(op_id)
        return sorted(o for o in self._parent if self.vc_of(o) == root)

    def vcs(self) -> List[FrozenSet[int]]:
        """All virtual clusters as frozensets of member operations."""
        groups: Dict[int, Set[int]] = {}
        for op_id in self._parent:
            groups.setdefault(self.vc_of(op_id), set()).add(op_id)
        return sorted((frozenset(g) for g in groups.values()), key=lambda s: min(s))

    def roots(self) -> List[int]:
        return sorted({self.vc_of(o) for o in self._parent})

    @property
    def n_vcs(self) -> int:
        return len({self.vc_of(o) for o in self._parent})

    # ------------------------------------------------------------------ #
    # incompatibility edges
    # ------------------------------------------------------------------ #
    def are_incompatible(self, u: int, v: int) -> bool:
        root_u, root_v = self.vc_of(u), self.vc_of(v)
        return root_v in self._edges.get(root_u, ())

    def incompatible_with(self, op_id: int) -> List[int]:
        """Roots of VCs incompatible with the VC of *op_id*."""
        return sorted(self._edges.get(self.vc_of(op_id), ()))

    def incompatibility_degree(self, op_id: int) -> int:
        return len(self._edges.get(self.vc_of(op_id), ()))

    def n_incompatibilities(self) -> int:
        return sum(len(edges) for edges in self._edges.values()) // 2

    def incompatibility_pairs(self) -> List[Tuple[int, int]]:
        """All incompatible root pairs, each reported once, sorted."""
        pairs = set()
        for root, edges in self._edges.items():
            for other in edges:
                pairs.add((root, other) if root < other else (other, root))
        return sorted(pairs)

    # ------------------------------------------------------------------ #
    # pins
    # ------------------------------------------------------------------ #
    def pin(self, op_id: int, physical_cluster: int) -> bool:
        """Pin the VC of *op_id* to *physical_cluster*.

        Returns True when the pin is new, False when already pinned there;
        raises :class:`VCContradiction` when pinned elsewhere or when an
        incompatible VC is already pinned to the same physical cluster.
        """
        root = self.vc_of(op_id)
        current = self._pins.get(root)
        if current is not None:
            if current != physical_cluster:
                raise VCContradiction(
                    f"VC of {op_id} already pinned to cluster {current}, "
                    f"cannot pin to {physical_cluster}"
                )
            return False
        for other in self._edges[root]:
            if self._pins.get(other) == physical_cluster:
                raise VCContradiction(
                    f"VC of {op_id} is incompatible with a VC already pinned "
                    f"to cluster {physical_cluster}"
                )
        self._pins[root] = physical_cluster
        return True

    def pin_of(self, op_id: int) -> Optional[int]:
        return self._pins.get(self.vc_of(op_id))

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def fuse(self, u: int, v: int) -> bool:
        """Merge the VCs of *u* and *v*.

        Returns True when a merge happened, False when they already share a
        VC.  Raises :class:`VCContradiction` when the VCs are incompatible
        or pinned to different physical clusters.
        """
        root_u, root_v = self.vc_of(u), self.vc_of(v)
        if root_u == root_v:
            return False
        if root_v in self._edges[root_u]:
            raise VCContradiction(
                f"cannot fuse VCs of {u} and {v}: they are incompatible"
            )
        pin_u, pin_v = self._pins.get(root_u), self._pins.get(root_v)
        if pin_u is not None and pin_v is not None and pin_u != pin_v:
            raise VCContradiction(
                f"cannot fuse VCs of {u} and {v}: pinned to clusters {pin_u} and {pin_v}"
            )
        # Merge the smaller VC into the larger one.
        if self._size[root_u] < self._size[root_v]:
            root_u, root_v = root_v, root_u
        self._parent[root_v] = root_u
        self._size[root_u] += self._size[root_v]
        # Re-point incompatibility edges of the absorbed VC.
        for other in self._edges.pop(root_v):
            self._edges[other].discard(root_v)
            self._edges[other].add(root_u)
            self._edges[root_u].add(other)
        # Merge pins.
        pin = pin_u if pin_u is not None else pin_v
        self._pins.pop(root_v, None)
        if pin is not None:
            self._pins[root_u] = pin
            for other in self._edges[root_u]:
                if self._pins.get(other) == pin:
                    raise VCContradiction(
                        f"fusing VCs of {u} and {v} collides with a VC pinned to cluster {pin}"
                    )
        return True

    def mark_incompatible(self, u: int, v: int) -> bool:
        """Record that the VCs of *u* and *v* must map to different PCs.

        Returns True when the edge is new.  Raises :class:`VCContradiction`
        when *u* and *v* are in the same VC or both pinned to one cluster.
        """
        root_u, root_v = self.vc_of(u), self.vc_of(v)
        if root_u == root_v:
            raise VCContradiction(
                f"cannot mark {u} and {v} incompatible: they share a VC"
            )
        pin_u, pin_v = self._pins.get(root_u), self._pins.get(root_v)
        if pin_u is not None and pin_u == pin_v:
            raise VCContradiction(
                f"cannot mark {u} and {v} incompatible: both pinned to cluster {pin_u}"
            )
        if root_v in self._edges[root_u]:
            return False
        self._edges[root_u].add(root_v)
        self._edges[root_v].add(root_u)
        return True

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "VirtualClusterGraph":
        clone = VirtualClusterGraph()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        clone._edges = {k: set(v) for k, v in self._edges.items()}
        clone._pins = dict(self._pins)
        return clone

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for vc in self.vcs():
            members = ",".join(str(m) for m in sorted(vc))
            parts.append("{" + members + "}")
        return (
            f"VCG({self.n_vcs} VCs, {self.n_incompatibilities()} incompatibilities): "
            + " ".join(parts)
        )
