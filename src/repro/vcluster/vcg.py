"""The Virtual Cluster Graph: fusion and incompatibility bookkeeping."""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from repro.trail import Trail, tadd, tdel, tdiscard, tset


class VCContradiction(Exception):
    """A fusion/incompatibility request conflicts with the current VCG."""


class VirtualClusterGraph:
    """Tracks virtual clusters over a set of operations.

    Every operation starts in its own virtual cluster.  Two kinds of updates
    are possible, mirroring the paper's Section 3.2:

    * ``fuse(u, v)``  — the operations' VCs must map to the *same* physical
      cluster; the VCs are merged and incompatibility edges are re-pointed
      at the merged VC.
    * ``mark_incompatible(u, v)`` — the operations' VCs must map to
      *different* physical clusters; an undirected edge is added between
      them.

    Requesting a fusion of incompatible VCs, or an incompatibility inside a
    single VC, raises :class:`VCContradiction` — exactly the contradiction
    case (c) of the deduction process.

    VCs may also be *pinned* to a physical cluster (used by the final
    mapping stage); fusing VCs pinned to different physical clusters is a
    contradiction, as is marking two VCs pinned to the same physical cluster
    incompatible.

    A mutation trail (see :mod:`repro.trail`) may be attached so fusions,
    incompatibilities and pins can be rolled back; while attached,
    :meth:`vc_of` does not path-compress (compression is a mutation, and
    union-by-size alone keeps lookups cheap).
    """

    def __init__(self, op_ids: Iterable[int] = ()) -> None:
        self._parent: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        self._edges: Dict[int, Set[int]] = {}
        self._pins: Dict[int, int] = {}
        #: Members of each VC, keyed by root.
        self._members: Dict[int, List[int]] = {}
        self._trail: Optional[Trail] = None
        for op_id in op_ids:
            self.add(op_id)

    def attach_trail(self, trail: Optional[Trail]) -> None:
        """Route subsequent mutations through *trail* (None detaches)."""
        self._trail = trail

    # ------------------------------------------------------------------ #
    # membership
    # ------------------------------------------------------------------ #
    def add(self, op_id: int) -> None:
        if op_id not in self._parent:
            t = self._trail
            tset(t, self._parent, op_id, op_id)
            tset(t, self._size, op_id, 1)
            tset(t, self._edges, op_id, set())
            tset(t, self._members, op_id, [op_id])

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._parent

    def vc_of(self, op_id: int) -> int:
        """Representative (root) of the VC containing *op_id*."""
        parent = self._parent
        if op_id not in parent:
            raise KeyError(f"unknown operation {op_id}")
        root = op_id
        while parent[root] != root:
            root = parent[root]
        if self._trail is None:
            # Path compression.
            node = op_id
            while parent[node] != root:
                parent[node], node = root, parent[node]
        return root

    def same_vc(self, u: int, v: int) -> bool:
        # Inlined double root walk (hottest read of the deduction rules);
        # equivalent to ``vc_of(u) == vc_of(v)`` minus two call frames.
        # Skips the no-trail path compression of vc_of, which is a pure
        # performance detail, never semantics.
        parent = self._parent
        while parent[u] != u:
            u = parent[u]
        while parent[v] != v:
            v = parent[v]
        return u == v

    def members(self, op_id: int) -> List[int]:
        """All operations in the VC containing *op_id*."""
        return sorted(self._members[self.vc_of(op_id)])

    def vcs(self) -> List[FrozenSet[int]]:
        """All virtual clusters as frozensets of member operations."""
        return sorted(
            (frozenset(group) for group in self._members.values()),
            key=lambda s: min(s),
        )

    def roots(self) -> List[int]:
        return sorted(self._members)

    @property
    def n_vcs(self) -> int:
        return len(self._members)

    # ------------------------------------------------------------------ #
    # incompatibility edges
    # ------------------------------------------------------------------ #
    def are_incompatible(self, u: int, v: int) -> bool:
        # Same inlined root walks as :meth:`same_vc` (hot read).
        parent = self._parent
        while parent[u] != u:
            u = parent[u]
        while parent[v] != v:
            v = parent[v]
        return v in self._edges.get(u, ())

    def incompatible_with(self, op_id: int) -> List[int]:
        """Roots of VCs incompatible with the VC of *op_id*."""
        return sorted(self._edges.get(self.vc_of(op_id), ()))

    def incompatibility_degree(self, op_id: int) -> int:
        return len(self._edges.get(self.vc_of(op_id), ()))

    def n_incompatibilities(self) -> int:
        return sum(len(edges) for edges in self._edges.values()) // 2

    def incompatibility_pairs(self) -> List[Tuple[int, int]]:
        """All incompatible root pairs, each reported once, sorted."""
        pairs = set()
        for root, edges in self._edges.items():
            for other in edges:
                pairs.add((root, other) if root < other else (other, root))
        return sorted(pairs)

    # ------------------------------------------------------------------ #
    # pins
    # ------------------------------------------------------------------ #
    def pin(self, op_id: int, physical_cluster: int) -> bool:
        """Pin the VC of *op_id* to *physical_cluster*.

        Returns True when the pin is new, False when already pinned there;
        raises :class:`VCContradiction` when pinned elsewhere or when an
        incompatible VC is already pinned to the same physical cluster.
        """
        root = self.vc_of(op_id)
        current = self._pins.get(root)
        if current is not None:
            if current != physical_cluster:
                raise VCContradiction(
                    f"VC of {op_id} already pinned to cluster {current}, "
                    f"cannot pin to {physical_cluster}"
                )
            return False
        for other in self._edges[root]:
            if self._pins.get(other) == physical_cluster:
                raise VCContradiction(
                    f"VC of {op_id} is incompatible with a VC already pinned "
                    f"to cluster {physical_cluster}"
                )
        tset(self._trail, self._pins, root, physical_cluster)
        return True

    def pin_of(self, op_id: int) -> Optional[int]:
        return self._pins.get(self.vc_of(op_id))

    # ------------------------------------------------------------------ #
    # updates
    # ------------------------------------------------------------------ #
    def fuse(self, u: int, v: int) -> bool:
        """Merge the VCs of *u* and *v*.

        Returns True when a merge happened, False when they already share a
        VC.  Raises :class:`VCContradiction` when the VCs are incompatible
        or pinned to different physical clusters.
        """
        root_u, root_v = self.vc_of(u), self.vc_of(v)
        if root_u == root_v:
            return False
        if root_v in self._edges[root_u]:
            raise VCContradiction(
                f"cannot fuse VCs of {u} and {v}: they are incompatible"
            )
        pin_u, pin_v = self._pins.get(root_u), self._pins.get(root_v)
        if pin_u is not None and pin_v is not None and pin_u != pin_v:
            raise VCContradiction(
                f"cannot fuse VCs of {u} and {v}: pinned to clusters {pin_u} and {pin_v}"
            )
        # Merge the smaller VC into the larger one.
        if self._size[root_u] < self._size[root_v]:
            root_u, root_v = root_v, root_u
        t = self._trail
        tset(t, self._parent, root_v, root_u)
        tset(t, self._size, root_u, self._size[root_u] + self._size[root_v])
        loser_members = self._members[root_v]
        if t is None:
            self._members[root_u].extend(loser_members)
        else:
            t.extend_list(self._members[root_u], loser_members)
        tdel(t, self._members, root_v)
        # Re-point incompatibility edges of the absorbed VC.
        absorbed = self._edges[root_v]
        tdel(t, self._edges, root_v)
        for other in absorbed:
            tdiscard(t, self._edges[other], root_v)
            tadd(t, self._edges[other], root_u)
            tadd(t, self._edges[root_u], other)
        # Merge pins.
        pin = pin_u if pin_u is not None else pin_v
        tdel(t, self._pins, root_v)
        if pin is not None:
            tset(t, self._pins, root_u, pin)
            for other in self._edges[root_u]:
                if self._pins.get(other) == pin:
                    raise VCContradiction(
                        f"fusing VCs of {u} and {v} collides with a VC pinned to cluster {pin}"
                    )
        return True

    def mark_incompatible(self, u: int, v: int) -> bool:
        """Record that the VCs of *u* and *v* must map to different PCs.

        Returns True when the edge is new.  Raises :class:`VCContradiction`
        when *u* and *v* are in the same VC or both pinned to one cluster.
        """
        root_u, root_v = self.vc_of(u), self.vc_of(v)
        if root_u == root_v:
            raise VCContradiction(
                f"cannot mark {u} and {v} incompatible: they share a VC"
            )
        pin_u, pin_v = self._pins.get(root_u), self._pins.get(root_v)
        if pin_u is not None and pin_u == pin_v:
            raise VCContradiction(
                f"cannot mark {u} and {v} incompatible: both pinned to cluster {pin_u}"
            )
        if root_v in self._edges[root_u]:
            return False
        t = self._trail
        tadd(t, self._edges[root_u], root_v)
        tadd(t, self._edges[root_v], root_u)
        return True

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "VirtualClusterGraph":
        clone = VirtualClusterGraph()
        clone._parent = dict(self._parent)
        clone._size = dict(self._size)
        clone._edges = {k: set(v) for k, v in self._edges.items()}
        clone._pins = dict(self._pins)
        clone._members = {root: list(members) for root, members in self._members.items()}
        return clone

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = []
        for vc in self.vcs():
            members = ",".join(str(m) for m in sorted(vc))
            parts.append("{" + members + "}")
        return (
            f"VCG({self.n_vcs} VCs, {self.n_incompatibilities()} incompatibilities): "
            + " ".join(parts)
        )
