"""Virtual clusters and the Virtual Cluster Graph (Section 3.2 of the paper).

A *virtual cluster* (VC) is a set of operations that must end up in the same
physical cluster.  The *virtual cluster graph* (VCG) records which pairs of
VCs are incompatible (must map to different physical clusters).  Scheduling
decisions fuse VCs or mark them incompatible through the deduction process;
the final mapping of VCs onto physical clusters is postponed to the end of
scheduling and performed with a graph-colouring style assignment.

Inter-cluster value transfers are represented by :class:`Communication`
records: fully linked (FLC — producer and consumer known) or partially
linked (PLC — one or both endpoints still open, Section 3.3.1).
"""

from repro.vcluster.vcg import VirtualClusterGraph, VCContradiction
from repro.vcluster.mapping import (
    greedy_coloring,
    required_clusters_estimate,
    has_clique_larger_than,
    map_virtual_to_physical,
)
from repro.vcluster.communication import CommKind, Communication, CommunicationSet

__all__ = [
    "VirtualClusterGraph",
    "VCContradiction",
    "greedy_coloring",
    "required_clusters_estimate",
    "has_clique_larger_than",
    "map_virtual_to_physical",
    "CommKind",
    "Communication",
    "CommunicationSet",
]
