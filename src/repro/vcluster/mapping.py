"""Mapping virtual clusters onto physical clusters.

The final mapping stage (Section 4.4.1.3) orders VCs by their degree in the
incompatibility graph and assigns them greedily to physical clusters, in the
style of Chaitin's register-allocation colouring.  The same colouring is used
earlier in the algorithm to detect situations in which the VCG can no longer
be mapped onto the target machine (a clique of incompatible VCs larger than
the number of physical clusters).
"""

from __future__ import annotations

from typing import Dict, Optional

import networkx as nx

from repro.vcluster.vcg import VirtualClusterGraph


def _incompatibility_graph(vcg: VirtualClusterGraph) -> nx.Graph:
    graph = nx.Graph()
    graph.add_nodes_from(vcg.roots())
    graph.add_edges_from(vcg.incompatibility_pairs())
    return graph


def greedy_coloring(vcg: VirtualClusterGraph) -> Dict[int, int]:
    """Colour the VC incompatibility graph greedily, highest degree first.

    Returns a mapping from VC root to colour index.  The number of colours
    used is an upper bound on the number of physical clusters required by
    the incompatibilities alone (ignoring pins).
    """
    order = sorted(
        vcg.roots(),
        key=lambda r: (-vcg.incompatibility_degree(r), r),
    )
    colors: Dict[int, int] = {}
    for root in order:
        neighbour_colors = {
            colors[n] for n in vcg.incompatible_with(root) if n in colors
        }
        color = 0
        while color in neighbour_colors:
            color += 1
        colors[root] = color
    return colors


def required_clusters_estimate(vcg: VirtualClusterGraph) -> int:
    """Upper bound on physical clusters needed to honour incompatibilities."""
    if vcg.n_vcs == 0:
        return 0
    colors = greedy_coloring(vcg)
    return max(colors.values()) + 1


def has_clique_larger_than(vcg: VirtualClusterGraph, n_clusters: int, exact_limit: int = 40) -> bool:
    """Whether the incompatibility graph provably cannot be mapped.

    For small graphs (at most *exact_limit* VCs) an exact maximum-clique
    query is used; for larger graphs the greedy colouring gives a
    conservative (may miss cliques, never false-positives via clique but the
    colouring bound itself is what the scheduler acts on) estimate, exactly
    as the paper resorts to a colouring scheme because the exact question is
    NP-complete.
    """
    graph = _incompatibility_graph(vcg)
    if graph.number_of_nodes() <= exact_limit:
        clique_number = max((len(c) for c in nx.find_cliques(graph)), default=0)
        return clique_number > n_clusters
    return required_clusters_estimate(vcg) > n_clusters


def map_virtual_to_physical(
    vcg: VirtualClusterGraph,
    n_clusters: int,
    injective: bool = False,
) -> Optional[Dict[int, int]]:
    """Assign every VC to a physical cluster, or return None when impossible.

    VCs are processed in decreasing incompatibility-degree order; each VC is
    placed in the lowest-numbered physical cluster that no incompatible VC
    occupies, honouring existing pins.  Returns a mapping from VC root to
    physical cluster index.

    With ``injective=True`` every VC gets its own physical cluster (used once
    stage 4 has reduced the number of VCs to at most the number of clusters:
    the deduction process has validated fusions, so sharing a cluster without
    fusing would bypass its resource checks).
    """
    if n_clusters <= 0:
        raise ValueError("machine must have at least one cluster")
    assignment: Dict[int, int] = {}
    # Pins go first so that the greedy pass respects them.
    for root in vcg.roots():
        pin = vcg.pin_of(root)
        if pin is not None:
            if pin >= n_clusters:
                return None
            assignment[root] = pin
    if injective and len(set(assignment.values())) != len(assignment):
        return None

    order = sorted(
        (r for r in vcg.roots() if r not in assignment),
        key=lambda r: (-vcg.incompatibility_degree(r), r),
    )
    for root in order:
        if injective:
            forbidden = set(assignment.values())
        else:
            forbidden = {
                assignment[n]
                for n in vcg.incompatible_with(root)
                if n in assignment
            }
        chosen = None
        for pc in range(n_clusters):
            if pc not in forbidden:
                chosen = pc
                break
        if chosen is None:
            return None
        assignment[root] = chosen
    return assignment
