"""Inter-cluster communications: fully and partially linked copies.

A *fully linked communication* (FLC) moves one value from a known producer
to a known consumer's cluster.  A *partially linked communication* (PLC,
Section 3.3.1) reserves bus bandwidth and schedule space for a transfer that
is already known to be necessary although its producer (P-PLC), its consumer
(C-PLC) or both (PC-PLC) are still undetermined; rules 6 and 7 of the
deduction process promote PLCs to FLCs as virtual clusters fuse or become
incompatible.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Tuple

from repro.trail import Trail, tdel, tset


class CommKind(enum.Enum):
    """Linking state of a communication."""

    FLC = "flc"
    P_PLC = "p-plc"
    C_PLC = "c-plc"
    PC_PLC = "pc-plc"

    @property
    def is_partial(self) -> bool:
        return self is not CommKind.FLC

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class Communication:
    """One inter-cluster value transfer.

    Parameters
    ----------
    comm_id:
        Identifier of the copy operation that implements the transfer; copy
        operations get ids above all original operations of the block.
    value:
        The virtual register being moved (None for a PC-PLC whose value is
        one of several alternatives).
    producer / consumer:
        Known endpoints; None when still undetermined (partial links).
    alternatives:
        For partial links, the producer/consumer pairs of which at least one
        will need this transfer.
    """

    comm_id: int
    value: Optional[str]
    producer: Optional[int] = None
    consumer: Optional[int] = None
    alternatives: Tuple[Tuple[int, int], ...] = ()

    @property
    def kind(self) -> CommKind:
        if self.producer is not None and self.consumer is not None:
            return CommKind.FLC
        if self.producer is None and self.consumer is not None:
            return CommKind.P_PLC
        if self.producer is not None and self.consumer is None:
            return CommKind.C_PLC
        return CommKind.PC_PLC

    @property
    def is_fully_linked(self) -> bool:
        return self.kind is CommKind.FLC

    def possible_producers(self) -> List[int]:
        if self.producer is not None:
            return [self.producer]
        return sorted({p for p, _ in self.alternatives})

    def possible_consumers(self) -> List[int]:
        if self.consumer is not None:
            return [self.consumer]
        return sorted({c for _, c in self.alternatives})

    def resolved(self, producer: int, consumer: int, value: Optional[str] = None) -> "Communication":
        """Return this communication promoted to an FLC."""
        return replace(
            self,
            producer=producer,
            consumer=consumer,
            value=value if value is not None else self.value,
            alternatives=(),
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Comm#{self.comm_id}[{self.kind}] {self.value or '?'}: "
            f"{self.producer if self.producer is not None else '?'} -> "
            f"{self.consumer if self.consumer is not None else '?'}"
        )


class CommunicationSet:
    """The communications created so far during scheduling of one block.

    Mutations may be routed through an attached trail (see
    :mod:`repro.trail`) so a probed decision that created or resolved
    communications can be rolled back."""

    def __init__(self) -> None:
        self._comms: Dict[int, Communication] = {}
        self._trail: Optional[Trail] = None

    def attach_trail(self, trail: Optional[Trail]) -> None:
        """Route subsequent mutations through *trail* (None detaches)."""
        self._trail = trail

    def add(self, comm: Communication) -> None:
        if comm.comm_id in self._comms:
            raise ValueError(f"duplicate communication id {comm.comm_id}")
        tset(self._trail, self._comms, comm.comm_id, comm)

    def replace(self, comm: Communication) -> None:
        if comm.comm_id not in self._comms:
            raise KeyError(f"unknown communication id {comm.comm_id}")
        tset(self._trail, self._comms, comm.comm_id, comm)

    def remove(self, comm_id: int) -> None:
        """Drop a communication (no-op when the id is unknown)."""
        tdel(self._trail, self._comms, comm_id)

    def get(self, comm_id: int) -> Communication:
        return self._comms[comm_id]

    def __contains__(self, comm_id: int) -> bool:
        return comm_id in self._comms

    def __len__(self) -> int:
        return len(self._comms)

    def __iter__(self):
        return iter(sorted(self._comms.values(), key=lambda c: c.comm_id))

    def fully_linked(self) -> List[Communication]:
        return [c for c in self if c.is_fully_linked]

    def partially_linked(self) -> List[Communication]:
        return [c for c in self if not c.is_fully_linked]

    def for_pair(self, producer: int, consumer: int) -> Optional[Communication]:
        """An existing FLC for the given producer/consumer pair, if any."""
        for comm in self:
            if comm.producer == producer and comm.consumer == consumer:
                return comm
        return None

    def involving_pair(self, producer: int, consumer: int) -> List[Communication]:
        """Communications (partial or full) that list the pair as a
        possibility."""
        out = []
        for comm in self:
            if comm.producer == producer and comm.consumer == consumer:
                out.append(comm)
            elif (producer, consumer) in comm.alternatives:
                out.append(comm)
        return out

    def copy(self) -> "CommunicationSet":
        clone = CommunicationSet()
        clone._comms = dict(self._comms)
        return clone
