"""Seeded generation of synthetic superblocks.

A superblock is generated as a layered DAG: operations are emitted in
program order, each reading one or two previously defined values (biased
towards recent ones, with the bias controlling the available ILP), with a
configurable mix of integer, floating-point and memory operations.  Exits
are inserted at roughly regular intervals with decreasing taken
probabilities, mimicking the hot-path structure superblock formation
produces; the final operation is the unconditional jump that closes the
block.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.ir.builder import SuperblockBuilder
from repro.ir.operation import OpClass
from repro.ir.superblock import Superblock
from repro.ir.validate import validate_superblock


@dataclass
class GeneratorConfig:
    """Knobs of the synthetic superblock generator.

    Parameters
    ----------
    min_ops / max_ops:
        Range of non-branch operations per block.
    ilp:
        Controls how far back operand references reach: higher values mean a
        flatter, wider dependence graph (more instruction-level parallelism).
        Roughly the expected number of independent chains.
    mem_fraction / fp_fraction:
        Fraction of non-branch operations that are memory / floating-point.
    store_fraction:
        Fraction of memory operations that are stores.
    exit_every:
        Average number of non-branch operations between side exits.
    exit_probability:
        Average probability mass given to each side exit (the final jump
        takes the remainder).
    live_in_values:
        Number of values live on entry that early operations may read.
    execution_count_mean:
        Mean of the (log-normal-ish) execution count distribution.
    int_latency / fp_latency / mem_latency / branch_latency:
        Operation latencies used for the generated code.
    """

    min_ops: int = 8
    max_ops: int = 24
    ilp: float = 2.5
    mem_fraction: float = 0.25
    fp_fraction: float = 0.05
    store_fraction: float = 0.3
    exit_every: int = 8
    exit_probability: float = 0.12
    live_in_values: int = 4
    execution_count_mean: float = 200.0
    int_latency: int = 1
    fp_latency: int = 3
    mem_latency: int = 2
    branch_latency: int = 1

    def __post_init__(self) -> None:
        if self.min_ops < 2 or self.max_ops < self.min_ops:
            raise ValueError("invalid operation count range")
        if not (0.0 <= self.mem_fraction <= 1.0 and 0.0 <= self.fp_fraction <= 1.0):
            raise ValueError("class fractions must be within [0, 1]")
        if self.mem_fraction + self.fp_fraction > 1.0:
            raise ValueError("mem_fraction + fp_fraction must not exceed 1")
        if self.ilp <= 0:
            raise ValueError("ilp must be positive")


class SuperblockGenerator:
    """Deterministic generator of synthetic superblocks."""

    def __init__(self, config: Optional[GeneratorConfig] = None, seed: int = 0) -> None:
        self.config = config or GeneratorConfig()
        self.seed = seed

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def generate(self, name: str, index: int = 0) -> Superblock:
        """Generate one superblock; ``(seed, name, index)`` fully determine it."""
        rng = random.Random(f"{self.seed}|{name}|{index}")
        block = self._generate_with_rng(name, rng)
        validate_superblock(block)
        return block

    def generate_many(self, base_name: str, count: int) -> List[Superblock]:
        """Generate *count* superblocks named ``{base_name}/sb_{i:04d}``."""
        return [self.generate(f"{base_name}/sb_{i:04d}", index=i) for i in range(count)]

    # ------------------------------------------------------------------ #
    # generation
    # ------------------------------------------------------------------ #
    def _generate_with_rng(self, name: str, rng: random.Random) -> Superblock:
        cfg = self.config
        n_ops = rng.randint(cfg.min_ops, cfg.max_ops)
        builder = SuperblockBuilder(name)

        live_ins = [f"in{i}" for i in range(cfg.live_in_values)]
        available: List[str] = list(live_ins)
        remaining_exit_mass = 1.0
        ops_since_exit = 0

        for position in range(n_ops):
            op_class = self._pick_class(rng)
            latency, opcode = self._latency_and_opcode(op_class, rng)
            srcs = self._pick_sources(rng, available, op_class)
            dests: Tuple[str, ...]
            if op_class is OpClass.MEM and rng.random() < cfg.store_fraction:
                dests = ()
                opcode = "store"
            else:
                dests = (f"v{position}",)
            builder.add_op(
                opcode,
                op_class,
                dests=dests,
                srcs=srcs,
                latency=latency,
                speculative=(opcode != "store"),
            )
            for dest in dests:
                available.append(dest)
            ops_since_exit += 1

            # Insert a side exit once enough operations accumulated.
            if (
                position < n_ops - 1
                and ops_since_exit >= cfg.exit_every
                and remaining_exit_mass > 0.05
            ):
                probability = min(
                    remaining_exit_mass * 0.9,
                    max(0.01, rng.gauss(cfg.exit_probability, cfg.exit_probability / 3)),
                )
                exit_srcs = self._pick_sources(rng, available, OpClass.BRANCH)
                builder.add_exit(
                    probability=round(probability, 4),
                    srcs=exit_srcs,
                    latency=cfg.branch_latency,
                )
                remaining_exit_mass -= round(probability, 4)
                ops_since_exit = 0

        # Final jump consuming a recently produced value, taking the rest of
        # the probability mass (handled by the builder).
        final_srcs = self._pick_sources(rng, available, OpClass.BRANCH)
        builder.add_exit(
            probability=round(max(remaining_exit_mass, 0.0), 4),
            srcs=final_srcs,
            latency=cfg.branch_latency,
        )
        execution_count = self._execution_count(rng)
        live_outs = rng.sample(available, k=min(2, len(available)))
        builder.mark_live_out(*live_outs)
        return builder.build(execution_count=execution_count, final_exit_probability=None)

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _pick_class(self, rng: random.Random) -> OpClass:
        cfg = self.config
        draw = rng.random()
        if draw < cfg.mem_fraction:
            return OpClass.MEM
        if draw < cfg.mem_fraction + cfg.fp_fraction:
            return OpClass.FP
        return OpClass.INT

    def _latency_and_opcode(self, op_class: OpClass, rng: random.Random) -> Tuple[int, str]:
        cfg = self.config
        if op_class is OpClass.MEM:
            return cfg.mem_latency, "load"
        if op_class is OpClass.FP:
            return cfg.fp_latency, rng.choice(["fmul", "fadd"])
        return cfg.int_latency, rng.choice(["add", "sub", "and", "shl", "mul"])

    def _pick_sources(
        self, rng: random.Random, available: Sequence[str], op_class: OpClass
    ) -> Tuple[str, ...]:
        if not available:
            return ()
        n_srcs = 1 if op_class is OpClass.BRANCH else rng.choice([1, 2, 2])
        window = max(1, int(round(self.config.ilp * 2)))
        recent = list(available[-window:])
        srcs = []
        for _ in range(n_srcs):
            # Bias towards recent values; occasionally reach far back, which
            # lengthens dependence chains and lowers ILP.
            if rng.random() < 0.8 or len(available) <= window:
                srcs.append(rng.choice(recent))
            else:
                srcs.append(rng.choice(list(available)))
        return tuple(dict.fromkeys(srcs))

    def _execution_count(self, rng: random.Random) -> int:
        mean = self.config.execution_count_mean
        value = rng.lognormvariate(0.0, 1.0) * mean
        return max(1, int(round(value)))
