"""Workloads: synthetic superblock suites standing in for IMPACT output.

The paper evaluates on more than 60 000 superblocks extracted by the IMPACT
compiler from 7 SpecInt95 and 7 MediaBench applications.  Neither IMPACT nor
those binaries are available here, so this package generates *synthetic*
superblock populations whose structural statistics (block size, instruction
mix, available ILP, branchiness, exit probabilities, execution-count skew)
are parameterised per benchmark to follow the qualitative differences the
paper relies on: media kernels are wide and regular, SpecInt blocks are
narrower and branchier.  All generation is seeded and deterministic.
"""

from repro.workloads.synth import GeneratorConfig, SuperblockGenerator
from repro.workloads.profiles import (
    BenchmarkProfile,
    SPECINT_PROFILES,
    MEDIABENCH_PROFILES,
    all_profiles,
    profile_by_name,
)
from repro.workloads.suite import (
    BenchmarkWorkload,
    build_benchmark,
    build_suite,
    stable_block_id,
    train_variant,
)
from repro.workloads.kernels import (
    fir_kernel,
    dot_product_kernel,
    dct_butterfly_kernel,
    string_search_kernel,
    paper_figure1_block,
    all_kernels,
)
from repro.workloads.families import (
    WorkloadFamily,
    build_family,
    build_workload_families,
    workload_families,
    workload_family,
    workload_family_names,
)

__all__ = [
    "WorkloadFamily",
    "workload_families",
    "workload_family",
    "workload_family_names",
    "build_family",
    "build_workload_families",
    "GeneratorConfig",
    "SuperblockGenerator",
    "BenchmarkProfile",
    "SPECINT_PROFILES",
    "MEDIABENCH_PROFILES",
    "all_profiles",
    "profile_by_name",
    "BenchmarkWorkload",
    "build_benchmark",
    "build_suite",
    "stable_block_id",
    "train_variant",
    "fir_kernel",
    "dot_product_kernel",
    "dct_butterfly_kernel",
    "string_search_kernel",
    "paper_figure1_block",
    "all_kernels",
]
