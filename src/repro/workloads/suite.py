"""Building whole-benchmark workloads and their profiling variants.

A :class:`BenchmarkWorkload` is the unit the evaluation harness operates on:
the named application, its superblocks (with ``ref``-profile exit
probabilities and execution counts), and helpers to derive the ``train``
profiling variant used by the cross-input experiment (Figure 12).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.ir.superblock import Superblock
from repro.workloads.profiles import BenchmarkProfile, all_profiles
from repro.workloads.synth import SuperblockGenerator


@dataclass
class BenchmarkWorkload:
    """One application's superblock population."""

    profile: BenchmarkProfile
    blocks: List[Superblock]

    @property
    def name(self) -> str:
        return self.profile.name

    @property
    def suite(self) -> str:
        return self.profile.suite

    @property
    def n_blocks(self) -> int:
        return len(self.blocks)

    @property
    def total_operations(self) -> int:
        return sum(block.size for block in self.blocks)

    def __iter__(self):
        return iter(self.blocks)

    # ------------------------------------------------------------------ #
    # stable identification (parallel-runner job enumeration)
    # ------------------------------------------------------------------ #
    def block_id(self, index: int) -> str:
        """Stable id of one block (see :func:`stable_block_id`)."""
        return stable_block_id(self.name, index, self.blocks[index].name)

    @property
    def block_ids(self) -> List[str]:
        return [self.block_id(i) for i in range(len(self.blocks))]


def stable_block_id(workload_name: str, index: int, block_name: str) -> str:
    """The canonical id of one block of a workload: position plus the
    generator-assigned name, e.g. ``130.li[0003]:130.li/sb_0003``.

    Ids depend only on the workload definition — never on scheduling,
    sharding or completion order — which is what makes them safe keys for
    the parallel runner's job enumeration (``repro.runner.jobs`` builds
    its job ids from them)."""
    return f"{workload_name}[{index:04d}]:{block_name}"


def build_benchmark(
    profile: BenchmarkProfile,
    n_blocks: Optional[int] = None,
) -> BenchmarkWorkload:
    """Generate the superblock population of one application (ref profile)."""
    count = n_blocks if n_blocks is not None else profile.n_blocks
    generator = SuperblockGenerator(profile.generator, seed=profile.seed)
    blocks = generator.generate_many(profile.name, count)
    return BenchmarkWorkload(profile=profile, blocks=blocks)


def build_suite(
    profiles: Optional[Sequence[BenchmarkProfile]] = None,
    blocks_per_benchmark: Optional[int] = None,
) -> List[BenchmarkWorkload]:
    """Generate the full evaluation workload (all 14 applications by default)."""
    chosen = list(profiles) if profiles is not None else all_profiles()
    return [build_benchmark(p, blocks_per_benchmark) for p in chosen]


def train_variant(
    workload: BenchmarkWorkload, noise: float = 0.35, seed: int = 1
) -> BenchmarkWorkload:
    """The ``train``-input profiling variant of a workload.

    Exit probabilities are perturbed multiplicatively and renormalised, and
    execution counts are redrawn around the original values, modelling a
    different profiling input.  The dependence graphs are untouched: only
    profile information differs, which is exactly the situation of the
    paper's Figure 12 (schedule with one input's profile, run with another).
    """
    rng = random.Random(f"{seed}|{workload.name}|train")
    perturbed: List[Superblock] = []
    for block in workload.blocks:
        new_probs: Dict[int, float] = {}
        raw = []
        for exit_info in block.exits:
            factor = max(0.05, rng.gauss(1.0, noise))
            raw.append((exit_info.op_id, exit_info.probability * factor))
        total = sum(p for _, p in raw)
        if total <= 0:
            total = 1.0
        for op_id, p in raw:
            new_probs[op_id] = p / total
        variant = block.with_exit_probabilities(new_probs)
        variant.execution_count = max(
            1, int(round(block.execution_count * max(0.1, rng.gauss(1.0, noise))))
        )
        perturbed.append(variant)
    return BenchmarkWorkload(profile=workload.profile, blocks=perturbed)
