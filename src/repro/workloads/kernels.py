"""Hand-written superblocks: small kernels and the paper's running example.

These blocks are used by the examples, the unit tests and the worked-example
benchmark.  They are deliberately small so their optimal schedules can be
reasoned about by hand.
"""

from __future__ import annotations

from typing import Dict, List

from repro.ir.builder import SuperblockBuilder
from repro.ir.operation import OpClass
from repro.ir.superblock import Superblock


def paper_figure1_block(execution_count: int = 100) -> Superblock:
    """The superblock of the paper's Figure 1 / Section 5 worked example.

    Seven operations: I0 feeding I1, I2 and I3; I3 feeding the 0.3-probability
    exit B0; I1 and I2 feeding I4, which feeds the final exit B1 (probability
    0.7); I4 is control dependent on B0.  Non-branch operations take 2 cycles
    and branches 3, as in the paper.
    """
    b = SuperblockBuilder("paper/fig1")
    b.add_op("add", OpClass.INT, dests=["v0"], latency=2)
    b.add_op("add", OpClass.INT, dests=["v1"], srcs=["v0"], latency=2)
    b.add_op("add", OpClass.INT, dests=["v2"], srcs=["v0"], latency=2)
    b.add_op("add", OpClass.INT, dests=["v3"], srcs=["v0"], latency=2)
    b.add_exit(probability=0.3, srcs=["v3"], latency=3)
    b.add_op("add", OpClass.INT, dests=["v4"], srcs=["v1", "v2"], latency=2, speculative=False)
    b.add_exit(probability=0.7, srcs=["v4"], latency=3)
    return b.build(execution_count=execution_count)


def fir_kernel(taps: int = 4, execution_count: int = 1000) -> Superblock:
    """An unrolled FIR filter tap loop body: loads, multiplies, an add chain
    and a loop-back branch — the archetypal MediaBench-style block."""
    if taps < 2:
        raise ValueError("a FIR kernel needs at least two taps")
    b = SuperblockBuilder(f"kernel/fir{taps}")
    acc = None
    for i in range(taps):
        sample = f"x{i}"
        coeff = f"c{i}"
        b.add_op("load", OpClass.MEM, dests=[sample], srcs=["ptr"], latency=2)
        b.add_op("load", OpClass.MEM, dests=[coeff], srcs=["coefs"], latency=2)
        prod = f"p{i}"
        b.add_op("fmul", OpClass.FP, dests=[prod], srcs=[sample, coeff], latency=3)
        if acc is None:
            acc = prod
        else:
            new_acc = f"acc{i}"
            b.add_op("fadd", OpClass.FP, dests=[new_acc], srcs=[acc, prod], latency=3)
            acc = new_acc
    b.add_op("store", OpClass.MEM, dests=[], srcs=[acc], latency=2)
    b.add_op("add", OpClass.INT, dests=["i"], srcs=["i0"], latency=1)
    b.add_exit(probability=1.0, srcs=["i"], latency=1)
    b.mark_live_out(acc)
    return b.build(execution_count=execution_count)


def dot_product_kernel(width: int = 4, execution_count: int = 500) -> Superblock:
    """An unrolled integer dot-product body with a reduction tree."""
    b = SuperblockBuilder(f"kernel/dot{width}")
    partials: List[str] = []
    for i in range(width):
        a, c = f"a{i}", f"b{i}"
        b.add_op("load", OpClass.MEM, dests=[a], srcs=["pa"], latency=2)
        b.add_op("load", OpClass.MEM, dests=[c], srcs=["pb"], latency=2)
        p = f"m{i}"
        b.add_op("mul", OpClass.INT, dests=[p], srcs=[a, c], latency=2)
        partials.append(p)
    # Reduction tree.
    level = 0
    while len(partials) > 1:
        next_level = []
        for i in range(0, len(partials) - 1, 2):
            s = f"s{level}_{i}"
            b.add_op("add", OpClass.INT, dests=[s], srcs=[partials[i], partials[i + 1]], latency=1)
            next_level.append(s)
        if len(partials) % 2:
            next_level.append(partials[-1])
        partials = next_level
        level += 1
    b.add_op("add", OpClass.INT, dests=["sum"], srcs=[partials[0], "sum0"], latency=1)
    b.add_exit(probability=1.0, srcs=["sum"], latency=1)
    b.mark_live_out("sum")
    return b.build(execution_count=execution_count)


def dct_butterfly_kernel(execution_count: int = 800) -> Superblock:
    """A pair of DCT butterfly stages: wide, regular, communication hungry."""
    b = SuperblockBuilder("kernel/dct")
    for i in range(4):
        b.add_op("load", OpClass.MEM, dests=[f"x{i}"], srcs=["src"], latency=2)
    b.add_op("add", OpClass.INT, dests=["t0"], srcs=["x0", "x3"], latency=1)
    b.add_op("sub", OpClass.INT, dests=["t1"], srcs=["x0", "x3"], latency=1)
    b.add_op("add", OpClass.INT, dests=["t2"], srcs=["x1", "x2"], latency=1)
    b.add_op("sub", OpClass.INT, dests=["t3"], srcs=["x1", "x2"], latency=1)
    b.add_op("add", OpClass.INT, dests=["y0"], srcs=["t0", "t2"], latency=1)
    b.add_op("sub", OpClass.INT, dests=["y2"], srcs=["t0", "t2"], latency=1)
    b.add_op("mul", OpClass.INT, dests=["y1"], srcs=["t1", "c1"], latency=2)
    b.add_op("mul", OpClass.INT, dests=["y3"], srcs=["t3", "c3"], latency=2)
    for i in range(4):
        b.add_op("store", OpClass.MEM, dests=[], srcs=[f"y{i}"], latency=2)
    b.add_op("add", OpClass.INT, dests=["row"], srcs=["row0"], latency=1)
    b.add_exit(probability=1.0, srcs=["row"], latency=1)
    return b.build(execution_count=execution_count)


def string_search_kernel(execution_count: int = 300) -> Superblock:
    """A branchy SpecInt-style block: character compares with early exits."""
    b = SuperblockBuilder("kernel/strsearch")
    b.add_op("load", OpClass.MEM, dests=["ch0"], srcs=["sptr"], latency=2)
    b.add_op("load", OpClass.MEM, dests=["pat0"], srcs=["pptr"], latency=2)
    b.add_op("sub", OpClass.INT, dests=["d0"], srcs=["ch0", "pat0"], latency=1)
    b.add_exit(probability=0.45, srcs=["d0"], latency=1)
    b.add_op("load", OpClass.MEM, dests=["ch1"], srcs=["sptr"], latency=2)
    b.add_op("load", OpClass.MEM, dests=["pat1"], srcs=["pptr"], latency=2)
    b.add_op("sub", OpClass.INT, dests=["d1"], srcs=["ch1", "pat1"], latency=1)
    b.add_exit(probability=0.30, srcs=["d1"], latency=1)
    b.add_op("add", OpClass.INT, dests=["sptr2"], srcs=["sptr"], latency=1)
    b.add_op("add", OpClass.INT, dests=["pptr2"], srcs=["pptr"], latency=1)
    b.add_op("and", OpClass.INT, dests=["cond"], srcs=["sptr2", "len"], latency=1)
    b.add_exit(probability=0.25, srcs=["cond"], latency=1)
    b.mark_live_out("sptr2", "pptr2")
    return b.build(execution_count=execution_count)


def all_kernels() -> Dict[str, Superblock]:
    """All hand-written kernels keyed by a short name."""
    return {
        "fig1": paper_figure1_block(),
        "fir": fir_kernel(),
        "dot": dot_product_kernel(),
        "dct": dct_butterfly_kernel(),
        "strsearch": string_search_kernel(),
    }
