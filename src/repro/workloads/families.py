"""Named workload families: the workload axis of the scenario matrix.

A :class:`WorkloadFamily` is a named set of generator profiles swept
together — the workload-side counterpart of
:mod:`repro.machine.families`.  The paper's 14-application population is
the ``paper`` family (with ``specint``/``mediabench`` subsets); the
parametric families stress one structural dimension each, built as
:class:`~repro.workloads.synth.GeneratorConfig` grids:

* ``ilp-sweep`` — available ILP from serial chains to very wide blocks;
* ``membound`` — memory-dominated blocks with slow loads;
* ``fpheavy`` — floating-point-heavy, long-latency arithmetic;
* ``longchain`` — long dependence chains (deep, narrow graphs);
* ``exitdense`` — branchy blocks with frequent, likely side exits;
* ``kernels`` — the hand-written kernels as one fixed workload.

Every family builds deterministic :class:`~repro.workloads.suite.
BenchmarkWorkload` populations, so any (machine-family x workload-family)
cell of the matrix is reproducible from its names alone.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Tuple

from repro.workloads.kernels import all_kernels
from repro.workloads.profiles import (
    MEDIABENCH_PROFILES,
    SPECINT_PROFILES,
    BenchmarkProfile,
    all_profiles,
)
from repro.workloads.suite import BenchmarkWorkload, build_benchmark
from repro.workloads.synth import GeneratorConfig


@dataclass(frozen=True)
class WorkloadFamily:
    """A named set of benchmark profiles swept together.

    ``builder`` overrides profile-based generation for families whose
    blocks are not synthesised (the hand-written kernels)."""

    name: str
    description: str
    profiles: Tuple[BenchmarkProfile, ...] = ()
    builder: Optional[Callable[[Optional[int]], List[BenchmarkWorkload]]] = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not self.profiles and self.builder is None:
            raise ValueError(f"workload family {self.name!r} has no profiles")

    @property
    def benchmark_names(self) -> List[str]:
        if self.builder is not None:
            return [workload.name for workload in self.builder(None)]
        return [profile.name for profile in self.profiles]

    def build(self, blocks_per_benchmark: Optional[int] = None) -> List[BenchmarkWorkload]:
        """Generate the family's workloads (deterministic in its names)."""
        if self.builder is not None:
            return self.builder(blocks_per_benchmark)
        return [build_benchmark(p, blocks_per_benchmark) for p in self.profiles]


# --------------------------------------------------------------------------- #
# parametric profile grids
# --------------------------------------------------------------------------- #
def _family_profile(name: str, seed: int, **overrides) -> BenchmarkProfile:
    base = dict(
        min_ops=8,
        max_ops=24,
        ilp=2.5,
        mem_fraction=0.25,
        fp_fraction=0.05,
        exit_every=8,
        exit_probability=0.12,
        execution_count_mean=200.0,
    )
    base.update(overrides)
    return BenchmarkProfile(
        name=name, suite="family", generator=GeneratorConfig(**base), seed=seed
    )


def _ilp_sweep() -> Tuple[BenchmarkProfile, ...]:
    return tuple(
        _family_profile(f"ilp-{ilp:.1f}", seed=31 + index, ilp=ilp)
        for index, ilp in enumerate((1.2, 2.0, 3.5, 6.0))
    )


def _membound() -> Tuple[BenchmarkProfile, ...]:
    return (
        _family_profile("mem-50", seed=41, mem_fraction=0.50, mem_latency=4),
        _family_profile("mem-65", seed=42, mem_fraction=0.65, mem_latency=4),
        _family_profile("mem-50-slow", seed=43, mem_fraction=0.50, mem_latency=6, ilp=3.0),
    )


def _fpheavy() -> Tuple[BenchmarkProfile, ...]:
    return (
        _family_profile("fp-30", seed=51, fp_fraction=0.30, fp_latency=4),
        _family_profile("fp-45", seed=52, fp_fraction=0.45, fp_latency=4, ilp=3.5),
        _family_profile("fp-30-slow", seed=53, fp_fraction=0.30, fp_latency=6, max_ops=28),
    )


def _longchain() -> Tuple[BenchmarkProfile, ...]:
    return (
        _family_profile("chain-24", seed=61, ilp=1.0, min_ops=16, max_ops=24),
        _family_profile("chain-40", seed=62, ilp=1.0, min_ops=28, max_ops=40),
        _family_profile("chain-32-mem", seed=63, ilp=1.2, min_ops=20, max_ops=32, mem_fraction=0.4),
    )


def _exitdense() -> Tuple[BenchmarkProfile, ...]:
    return (
        _family_profile("exits-3", seed=71, exit_every=3, exit_probability=0.2, max_ops=18),
        _family_profile("exits-2", seed=72, exit_every=2, exit_probability=0.25, max_ops=14),
        _family_profile("exits-3-wide", seed=73, exit_every=3, exit_probability=0.2, ilp=4.0),
    )


def _build_kernels(blocks_per_benchmark: Optional[int]) -> List[BenchmarkWorkload]:
    """The hand-written kernels as one fixed workload.

    ``blocks_per_benchmark`` truncates the kernel list (the kernels are
    fixed blocks, not a generator population)."""
    blocks = list(all_kernels().values())
    if blocks_per_benchmark is not None:
        blocks = blocks[: max(1, blocks_per_benchmark)]
    profile = BenchmarkProfile(
        name="kernels",
        suite="family",
        generator=GeneratorConfig(),
        n_blocks=len(blocks),
    )
    return [BenchmarkWorkload(profile=profile, blocks=blocks)]


# --------------------------------------------------------------------------- #
# the registry
# --------------------------------------------------------------------------- #
def workload_families() -> List[WorkloadFamily]:
    """Every registered workload family, in presentation order."""
    return [
        WorkloadFamily(
            name="paper",
            description="the paper's 14 SpecInt95 + MediaBench applications",
            profiles=tuple(all_profiles()),
        ),
        WorkloadFamily(
            name="specint",
            description="the 7 SpecInt95 applications",
            profiles=tuple(SPECINT_PROFILES),
        ),
        WorkloadFamily(
            name="mediabench",
            description="the 7 MediaBench applications",
            profiles=tuple(MEDIABENCH_PROFILES),
        ),
        WorkloadFamily(
            name="ilp-sweep",
            description="available ILP swept from serial (1.2) to wide (6.0)",
            profiles=_ilp_sweep(),
        ),
        WorkloadFamily(
            name="membound",
            description="memory-bound blocks (50-65% memory ops, slow loads)",
            profiles=_membound(),
        ),
        WorkloadFamily(
            name="fpheavy",
            description="floating-point-heavy blocks with long FP latencies",
            profiles=_fpheavy(),
        ),
        WorkloadFamily(
            name="longchain",
            description="long dependence chains (deep, narrow graphs)",
            profiles=_longchain(),
        ),
        WorkloadFamily(
            name="exitdense",
            description="branchy blocks with frequent, likely side exits",
            profiles=_exitdense(),
        ),
        WorkloadFamily(
            name="kernels",
            description="the hand-written kernels (fig1, fir, dot, dct, strsearch)",
            builder=_build_kernels,
        ),
    ]


def workload_family(name: str) -> WorkloadFamily:
    """Look one family up by name (KeyError with the known names)."""
    for family in workload_families():
        if family.name == name:
            return family
    known = [family.name for family in workload_families()]
    raise KeyError(f"unknown workload family {name!r}; known: {known}")


def build_family(
    name: str, blocks_per_benchmark: Optional[int] = None
) -> List[BenchmarkWorkload]:
    """Build a family's workloads by name."""
    return workload_family(name).build(blocks_per_benchmark)


def build_workload_families(
    names, blocks_per_benchmark: Optional[int] = None
) -> List[Tuple[str, BenchmarkWorkload]]:
    """Build several families as one flat ``(family name, workload)`` list.

    Benchmark names must be unique across the selected families (the
    ``paper`` family contains ``specint``/``mediabench``, so selecting an
    overlap would silently double-schedule); a ValueError names the
    colliding workload and both families."""
    pairs: List[Tuple[str, BenchmarkWorkload]] = []
    seen: Dict[str, str] = {}
    for name in names:
        family = workload_family(name)
        for workload in family.build(blocks_per_benchmark):
            if workload.name in seen:
                raise ValueError(
                    f"workload {workload.name!r} appears in both "
                    f"{seen[workload.name]!r} and {family.name!r}; "
                    "select non-overlapping workload families"
                )
            seen[workload.name] = family.name
            pairs.append((family.name, workload))
    return pairs


def workload_family_names() -> List[str]:
    return [family.name for family in workload_families()]


def family_index() -> Dict[str, WorkloadFamily]:
    return {family.name: family for family in workload_families()}
