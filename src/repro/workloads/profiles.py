"""Per-benchmark generator profiles for the 14 evaluated applications.

The paper uses 7 SpecInt95 and 7 MediaBench applications.  Each profile
below parameterises the synthetic superblock generator so that the resulting
population has the qualitative character the paper's discussion relies on:

* SpecInt codes (go, m88ksim, compress, li, ijpeg, perl, vortex) — smaller,
  branchier blocks with modest ILP; ijpeg is the most media-like of them.
* MediaBench codes (epic, g721, mpeg2, rasta) — larger blocks, wider ILP,
  more memory and floating-point operations, fewer side exits.

The ``weight`` field skews how many of an application's dynamic cycles come
from its hottest blocks, controlling how much a few hard blocks matter
(relevant for the compile-time-threshold experiments).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List

from repro.workloads.synth import GeneratorConfig


@dataclass(frozen=True)
class BenchmarkProfile:
    """Generation profile of one application."""

    name: str
    suite: str  # "specint", "mediabench" or "family" (parametric families)
    generator: GeneratorConfig
    n_blocks: int = 20
    seed: int = 0

    def __post_init__(self) -> None:
        if self.suite not in ("specint", "mediabench", "family"):
            raise ValueError(f"unknown suite {self.suite!r}")
        if self.n_blocks <= 0:
            raise ValueError("a benchmark needs at least one block")

    def scaled(self, n_blocks: int) -> "BenchmarkProfile":
        """A copy of the profile with a different population size."""
        return replace(self, n_blocks=n_blocks)


def _spec(name: str, seed: int, **overrides) -> BenchmarkProfile:
    base = dict(
        min_ops=6,
        max_ops=18,
        ilp=2.0,
        mem_fraction=0.28,
        fp_fraction=0.02,
        exit_every=5,
        exit_probability=0.15,
        execution_count_mean=150.0,
    )
    base.update(overrides)
    return BenchmarkProfile(name=name, suite="specint", generator=GeneratorConfig(**base), seed=seed)


def _media(name: str, seed: int, **overrides) -> BenchmarkProfile:
    base = dict(
        min_ops=10,
        max_ops=30,
        ilp=3.5,
        mem_fraction=0.32,
        fp_fraction=0.10,
        exit_every=10,
        exit_probability=0.08,
        execution_count_mean=400.0,
    )
    base.update(overrides)
    return BenchmarkProfile(name=name, suite="mediabench", generator=GeneratorConfig(**base), seed=seed)


#: The seven SpecInt95 applications of the paper's evaluation.
SPECINT_PROFILES: List[BenchmarkProfile] = [
    _spec("099.go", seed=11, ilp=2.6, min_ops=8, max_ops=22, exit_every=6),
    _spec("124.m88ksim", seed=12, ilp=1.8, max_ops=16),
    _spec("129.compress", seed=13, ilp=2.4, mem_fraction=0.35, max_ops=20),
    _spec("130.li", seed=14, ilp=1.9, min_ops=5, max_ops=14, exit_every=4),
    _spec("132.ijpeg", seed=15, ilp=3.2, min_ops=10, max_ops=26, fp_fraction=0.04, exit_every=8),
    _spec("134.perl", seed=16, ilp=2.2, max_ops=20),
    _spec("147.vortex", seed=17, ilp=2.0, min_ops=8, max_ops=24, mem_fraction=0.38),
]

#: The seven MediaBench applications of the paper's evaluation.
MEDIABENCH_PROFILES: List[BenchmarkProfile] = [
    _media("epicdec", seed=21, ilp=3.8, max_ops=26),
    _media("epicenc", seed=22, ilp=3.6, max_ops=28, fp_fraction=0.14),
    _media("g721dec", seed=23, ilp=2.6, min_ops=8, max_ops=20, fp_fraction=0.02),
    _media("g721enc", seed=24, ilp=2.6, min_ops=8, max_ops=22, fp_fraction=0.02),
    _media("mpeg2dec", seed=25, ilp=4.0, min_ops=12, max_ops=30),
    _media("mpeg2enc", seed=26, ilp=4.2, min_ops=12, max_ops=32, mem_fraction=0.36),
    _media("rasta", seed=27, ilp=3.0, fp_fraction=0.20, max_ops=24),
]


def all_profiles() -> List[BenchmarkProfile]:
    """The 14 profiles in the paper's presentation order (SpecInt then Media)."""
    return list(SPECINT_PROFILES) + list(MEDIABENCH_PROFILES)


def profile_by_name(name: str) -> BenchmarkProfile:
    for profile in all_profiles():
        if profile.name == name:
            return profile
    raise KeyError(f"unknown benchmark {name!r}")
