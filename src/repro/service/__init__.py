"""Scheduling-as-a-service: the asyncio HTTP job server.

The package turns the batch runner into a long-running multi-tenant
service without adding any dependency beyond the standard library:

* :mod:`repro.service.http` — a minimal HTTP/1.1 layer over asyncio
  streams (request parsing, JSON responses; ``Connection: close``).
* :mod:`repro.service.queue` — the fair per-client FIFO queue and the
  in-memory job table (lifecycle states, cancellation flags, per-client
  policy and spend accounting).
* :mod:`repro.service.server` — :class:`JobServer` (the asyncio server
  plus the dispatcher that drains the queue through
  :func:`repro.api.schedule_many`, i.e. the exact batch-runner path:
  shared persistent pool, content-addressed result cache) and
  :class:`ServerThread` (a context manager running a server on a
  background thread for tests, benchmarks and docs examples).
* :mod:`repro.service.client` — :class:`ServiceClient`, a blocking
  ``http.client`` wrapper speaking :class:`repro.api.ScheduleRequest` /
  :class:`repro.api.ScheduleResponse` on the wire.

Determinism: dispatch goes through the same execution core as the batch
runner and the same content-addressed cache, so every schedule returned
over HTTP is byte-identical (digest + dp_work) to the batch path and
repeated submissions are warm cache hits — CI's ``service-smoke`` job
(``scripts/check_service_identity.py``) gates the invariant.
"""

from repro.service.client import ServiceClient, ServiceError
from repro.service.queue import ClientState, FairQueue, ServiceJob
from repro.service.server import JobServer, ServerThread

__all__ = [
    "ClientState",
    "FairQueue",
    "JobServer",
    "ServerThread",
    "ServiceClient",
    "ServiceError",
    "ServiceJob",
]
