"""The job table and the fair per-client FIFO queue.

Fairness model: every client owns a FIFO lane, and the dispatcher takes
jobs by rotating round-robin over the lanes that have work — one job per
client per rotation.  A tenant that floods the queue therefore delays
only its own lane; a light tenant's next job is always at most one
rotation away.  Within a lane, submission order is preserved.

Job lifecycle (states from :data:`repro.api.JOB_STATES`)::

    queued -> running -> done | failed
       \\          \\
        \\          -> cancelling -> cancelled
         -> cancelled                (cooperative: the in-flight batch
            (immediate)               finishes, its result is discarded)

The table also keeps per-client state: an optional default
:class:`~repro.scheduler.policy.SchedulePolicy` (applied to requests
that carry none, so a tenant's budget rules follow every job it
submits) and cumulative spend/outcome counters.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional

from repro.api import JobStatus, ScheduleRequest, ScheduleResponse
from repro.scheduler.policy import SchedulePolicy


@dataclass
class ServiceJob:
    """One submitted job and its lifecycle bookkeeping."""

    job_id: str
    client: str
    request: ScheduleRequest
    state: str = "queued"
    detail: str = ""
    #: Monotonic seconds relative to server start.
    submitted_s: float = 0.0
    started_s: float = 0.0
    finished_s: float = 0.0
    cancel_requested: bool = False
    response: Optional[ScheduleResponse] = None
    #: Set exactly once, when the job reaches a terminal state.
    done: "object" = None  # asyncio.Event, injected by the server

    def status(self, queue_position: int = -1) -> JobStatus:
        return JobStatus(
            job_id=self.job_id,
            state=self.state,
            client=self.client,
            detail=self.detail,
            queue_position=queue_position,
            submitted_s=self.submitted_s,
            started_s=self.started_s,
            finished_s=self.finished_s,
        )

    @property
    def terminal(self) -> bool:
        return self.state in ("done", "failed", "cancelled")


@dataclass
class ClientState:
    """Per-tenant policy and accounting."""

    name: str
    #: Default budget policy merged into requests that carry none.
    policy: Optional[SchedulePolicy] = None
    submitted: int = 0
    completed: int = 0
    failed: int = 0
    cancelled: int = 0
    #: Cumulative deterministic dp_work of the client's finished jobs.
    dp_work: int = 0
    #: Finished jobs whose budget exhausted into a partial finalize.
    partial_finalizes: int = 0

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "policy": self.policy.to_dict() if self.policy is not None else None,
            "submitted": self.submitted,
            "completed": self.completed,
            "failed": self.failed,
            "cancelled": self.cancelled,
            "dp_work": self.dp_work,
            "partial_finalizes": self.partial_finalizes,
        }


class FairQueue:
    """Round-robin fair queue of :class:`ServiceJob` lanes, one per client.

    ``push`` appends to the submitting client's lane; ``take_round``
    pops up to *limit* jobs, visiting lanes in rotating round-robin
    order so no client can starve another.  Cancelled jobs are lazily
    skipped at pop time (cancelling a queued job just flags it).
    """

    def __init__(self) -> None:
        self._lanes: Dict[str, Deque[ServiceJob]] = {}
        #: Rotation order; clients are appended on first submission.
        self._rotation: List[str] = []
        self._cursor = 0

    def push(self, job: ServiceJob) -> None:
        lane = self._lanes.get(job.client)
        if lane is None:
            lane = self._lanes[job.client] = deque()
            self._rotation.append(job.client)
        lane.append(job)

    def __len__(self) -> int:
        return sum(
            sum(1 for job in lane if not job.cancel_requested) for lane in self._lanes.values()
        )

    def position(self, job: ServiceJob) -> int:
        """The job's position in its client's lane (0 = next), -1 if absent."""
        lane = self._lanes.get(job.client, ())
        live = [queued for queued in lane if not queued.cancel_requested]
        for index, queued in enumerate(live):
            if queued is job:
                return index
        return -1

    def _pop_lane(self, client: str) -> Optional[ServiceJob]:
        """The next non-cancelled job of one lane (drops flagged ones)."""
        lane = self._lanes.get(client)
        while lane:
            job = lane.popleft()
            if not job.cancel_requested:
                return job
        return None

    def take_round(self, limit: int) -> List[ServiceJob]:
        """Pop up to *limit* jobs, one per client per round-robin rotation."""
        taken: List[ServiceJob] = []
        if limit <= 0 or not self._rotation:
            return taken
        n_lanes = len(self._rotation)
        idle_streak = 0
        while len(taken) < limit and idle_streak < n_lanes:
            client = self._rotation[self._cursor % n_lanes]
            self._cursor = (self._cursor + 1) % n_lanes
            job = self._pop_lane(client)
            if job is None:
                idle_streak += 1
            else:
                idle_streak = 0
                taken.append(job)
        return taken
