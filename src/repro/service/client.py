"""A blocking HTTP client for the job server (stdlib ``http.client``).

Speaks the :mod:`repro.api` wire types: submit a
:class:`~repro.api.ScheduleRequest`, poll a
:class:`~repro.api.JobStatus`, long-poll the final
:class:`~repro.api.ScheduleResponse`.  One connection per call
(the server is ``Connection: close``), so a client instance is cheap
and safe to share across threads.
"""

from __future__ import annotations

import json
from http.client import HTTPConnection
from typing import Optional, Tuple
from urllib.parse import urlsplit

from repro.api import JobStatus, ScheduleRequest, ScheduleResponse
from repro.scheduler.policy import SchedulePolicy


class ServiceError(RuntimeError):
    """A non-2xx response from the job server."""

    def __init__(self, status: int, message: str):
        super().__init__(f"HTTP {status}: {message}")
        self.status = status
        self.message = message


class ServiceClient:
    """Blocking client of one :class:`~repro.service.server.JobServer`.

    ``url`` is the server base (e.g. ``http://127.0.0.1:8423``);
    ``timeout`` is the per-connection socket timeout in seconds.
    """

    def __init__(self, url: str, timeout: float = 600.0):
        split = urlsplit(url if "//" in url else f"http://{url}")
        if split.scheme not in ("", "http"):
            raise ValueError(f"unsupported scheme {split.scheme!r} (http only)")
        self.host = split.hostname or "127.0.0.1"
        self.port = split.port or 80
        self.timeout = timeout

    # ------------------------------------------------------------------ #
    # transport
    # ------------------------------------------------------------------ #
    def _call(
        self, method: str, path: str, payload: Optional[object] = None
    ) -> Tuple[int, dict]:
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        connection = HTTPConnection(self.host, self.port, timeout=self.timeout)
        try:
            connection.request(method, path, body=body, headers=headers)
            response = connection.getresponse()
            raw = response.read()
            status = response.status
        finally:
            connection.close()
        try:
            decoded = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ServiceError(status, f"undecodable response body: {exc}") from None
        if status >= 400:
            message = decoded.get("error", raw.decode("utf-8", "replace")) if isinstance(
                decoded, dict
            ) else str(decoded)
            raise ServiceError(status, message)
        if not isinstance(decoded, dict):
            raise ServiceError(status, f"expected a JSON object, got {type(decoded).__name__}")
        return status, decoded

    # ------------------------------------------------------------------ #
    # API surface
    # ------------------------------------------------------------------ #
    def health(self) -> dict:
        return self._call("GET", "/api/v1/health")[1]

    def stats(self) -> dict:
        return self._call("GET", "/api/v1/stats")[1]

    def submit(self, request: ScheduleRequest) -> JobStatus:
        """POST one request; returns its ``queued`` status (with the
        server-assigned job id)."""
        _, payload = self._call("POST", "/api/v1/jobs", request.to_dict())
        return JobStatus.from_dict(payload["job"])

    def status(self, job_id: str) -> JobStatus:
        _, payload = self._call("GET", f"/api/v1/jobs/{job_id}")
        return JobStatus.from_dict(payload["job"])

    def result(self, job_id: str, timeout: Optional[float] = None) -> ScheduleResponse:
        """Long-poll the job's final response.

        Blocks on the server side until the job is terminal; ``timeout``
        bounds the wait (:class:`TimeoutError` on expiry — the job keeps
        running).
        """
        path = f"/api/v1/jobs/{job_id}/result"
        if timeout is not None:
            path += f"?timeout={timeout}"
        status, payload = self._call("GET", path)
        if status == 202:
            state = payload.get("job", {}).get("state", "unknown")
            raise TimeoutError(f"job {job_id} still {state} after {timeout}s")
        return ScheduleResponse.from_dict(payload["response"])

    def cancel(self, job_id: str) -> JobStatus:
        _, payload = self._call("POST", f"/api/v1/jobs/{job_id}/cancel")
        return JobStatus.from_dict(payload["job"])

    def client_state(self, name: str) -> dict:
        return self._call("GET", f"/api/v1/clients/{name}")[1]["client"]

    def set_policy(self, name: str, policy: Optional[SchedulePolicy]) -> dict:
        payload = policy.to_dict() if policy is not None else None
        return self._call("PUT", f"/api/v1/clients/{name}/policy", payload)[1]["client"]

    def schedule(
        self, request: ScheduleRequest, timeout: Optional[float] = None
    ) -> ScheduleResponse:
        """Submit one request and block for its response."""
        status = self.submit(request)
        return self.result(status.job_id, timeout=timeout)
