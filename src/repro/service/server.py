"""The asyncio job server and its background-thread harness.

:class:`JobServer` accepts :class:`repro.api.ScheduleRequest` JSON over
a small HTTP/1.1 API, queues it in the fair per-client queue, and drains
the queue in rounds through :func:`repro.api.schedule_many` on a worker
thread — the *exact* batch-runner path (shared persistent pool,
machine interning, content-addressed result cache), so HTTP results are
byte-identical to batch results and repeated submissions are cache
hits.

Endpoints (all JSON, ``Connection: close``)::

    GET  /api/v1/health                   liveness + version
    POST /api/v1/jobs                     submit; body = ScheduleRequest.to_dict()
    GET  /api/v1/jobs/<id>                JobStatus snapshot
    GET  /api/v1/jobs/<id>/result[?timeout=S]
                                          long-poll; 200 + ScheduleResponse when
                                          terminal, 202 + JobStatus on expiry
    POST /api/v1/jobs/<id>/cancel         cancel (immediate while queued,
                                          cooperative while running)
    GET  /api/v1/clients/<name>           per-client policy + accounting
    PUT  /api/v1/clients/<name>/policy    set/clear the client's default
                                          SchedulePolicy (body = dict or null)
    GET  /api/v1/stats                    queue depth, cache counters, clients

Cancellation semantics: a queued job is cancelled immediately (it never
runs).  A running job switches to ``cancelling``; the dispatcher cannot
preempt the in-flight batch (scheduling is CPU-bound in worker
processes), so the batch finishes, the job's result is *discarded*, and
the job lands in ``cancelled`` with failure kind ``"cancelled"`` — the
runner's taxonomy (error/timeout/crash/cancelled) passes through
unchanged for all other failures.
"""

from __future__ import annotations

import asyncio
import threading
import time
from dataclasses import replace
from typing import Dict, List, Optional, Tuple

import repro
from repro.api import JobStatus, ScheduleRequest, ScheduleResponse, schedule_many
from repro.config import RuntimeConfig
from repro.runner.batch import BatchResult, BatchScheduler, JobFailure
from repro.runner.cache import CacheSpec, CacheStats
from repro.scheduler.policy import SchedulePolicy
from repro.service.http import HttpError, Request, encode_response, read_request, split_path
from repro.service.queue import ClientState, FairQueue, ServiceJob


class JobServer:
    """The asyncio HTTP job server (see module docstring for the API).

    Parameters default to the ``REPRO_SERVICE_*`` knobs of
    :class:`~repro.config.RuntimeConfig`; ``runner`` and ``cache``
    default to the environment-configured batch runner and result cache
    (``REPRO_JOBS``, ``REPRO_CACHE``/``REPRO_CACHE_DIR``), exactly like
    the batch entry points.  ``max_batch`` bounds the jobs dispatched
    per fair-queue round (default: the runner's worker count, so a
    round saturates the pool without letting one tenant monopolise it).
    """

    def __init__(
        self,
        host: Optional[str] = None,
        port: Optional[int] = None,
        runner: Optional[BatchScheduler] = None,
        cache: object = None,
        max_batch: Optional[int] = None,
        job_timeout: Optional[float] = None,
        config: Optional[RuntimeConfig] = None,
    ):
        config = config if config is not None else RuntimeConfig.load()
        self.host = host if host is not None else config.service_host
        self.port = port if port is not None else config.service_port
        timeout = job_timeout if job_timeout is not None else config.service_timeout
        self.runner = runner if runner is not None else BatchScheduler(timeout=timeout)
        self.cache = cache if cache is not None else CacheSpec.from_env(enabled=config.cache)
        self.max_batch = max_batch if max_batch is not None else self.runner.n_workers
        if self.max_batch <= 0:
            raise ValueError(f"max_batch must be positive, got {self.max_batch}")

        self.queue = FairQueue()
        self.jobs: Dict[str, ServiceJob] = {}
        self.clients: Dict[str, ClientState] = {}
        self.cache_stats = CacheStats()
        self.rounds_dispatched = 0
        self._counter = 0
        self._running = 0
        self._server: Optional[asyncio.base_events.Server] = None
        self._dispatcher: Optional[asyncio.Task] = None
        self._wakeup: Optional[asyncio.Event] = None
        self._t0 = time.monotonic()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    async def start(self) -> None:
        """Bind the listening socket and start the dispatcher."""
        self._wakeup = asyncio.Event()
        self._server = await asyncio.start_server(self._handle, self.host, self.port)
        self.port = self._server.sockets[0].getsockname()[1]
        self._t0 = time.monotonic()
        self._dispatcher = asyncio.create_task(self._dispatch_loop())

    async def stop(self) -> None:
        """Stop accepting connections and wind the dispatcher down."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._dispatcher is not None:
            self._dispatcher.cancel()
            try:
                await self._dispatcher
            except asyncio.CancelledError:
                pass

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    def _now(self) -> float:
        return time.monotonic() - self._t0

    # ------------------------------------------------------------------ #
    # HTTP plumbing
    # ------------------------------------------------------------------ #
    async def _handle(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        status, payload = 500, {"error": "internal error"}
        try:
            request = await read_request(reader)
            if request is None:
                writer.close()
                return
            status, payload = await self._route(request)
        except HttpError as exc:
            status, payload = exc.status, {"error": exc.message}
        except Exception as exc:  # Defensive: one bad request must not kill the server.
            status, payload = 500, {"error": f"{type(exc).__name__}: {exc}"}
        try:
            writer.write(encode_response(status, payload))
            await writer.drain()
        except (ConnectionError, BrokenPipeError):
            pass
        finally:
            writer.close()

    async def _route(self, request: Request) -> Tuple[int, object]:
        segments = split_path(request.path)
        if len(segments) < 3 or segments[:2] != ("api", "v1"):
            raise HttpError(404, f"unknown path {request.path!r}")
        head, rest = segments[2], segments[3:]

        if head == "health" and not rest:
            self._expect(request, "GET")
            return 200, {"ok": True, "version": repro.__version__, "uptime_s": self._now()}
        if head == "stats" and not rest:
            self._expect(request, "GET")
            return 200, self._stats()
        if head == "jobs" and not rest:
            self._expect(request, "POST")
            return self._submit(request)
        if head == "jobs" and len(rest) == 1:
            self._expect(request, "GET")
            job = self._job(rest[0])
            return 200, {"job": self._status(job).to_dict()}
        if head == "jobs" and len(rest) == 2 and rest[1] == "result":
            self._expect(request, "GET")
            return await self._result(self._job(rest[0]), request.query_float("timeout"))
        if head == "jobs" and len(rest) == 2 and rest[1] == "cancel":
            self._expect(request, "POST")
            return self._cancel(self._job(rest[0]))
        if head == "clients" and len(rest) == 1:
            self._expect(request, "GET")
            return 200, {"client": self._client(rest[0]).to_dict()}
        if head == "clients" and len(rest) == 2 and rest[1] == "policy":
            self._expect(request, "PUT")
            return self._set_policy(rest[0], request)
        raise HttpError(404, f"unknown path {request.path!r}")

    @staticmethod
    def _expect(request: Request, method: str) -> None:
        if request.method != method:
            raise HttpError(405, f"{request.path} expects {method}, got {request.method}")

    # ------------------------------------------------------------------ #
    # handlers
    # ------------------------------------------------------------------ #
    def _client(self, name: str) -> ClientState:
        state = self.clients.get(name)
        if state is None:
            state = self.clients[name] = ClientState(name=name)
        return state

    def _job(self, job_id: str) -> ServiceJob:
        job = self.jobs.get(job_id)
        if job is None:
            raise HttpError(404, f"unknown job {job_id!r}")
        return job

    def _status(self, job: ServiceJob) -> JobStatus:
        position = self.queue.position(job) if job.state == "queued" else -1
        return job.status(queue_position=position)

    def _submit(self, request: Request) -> Tuple[int, object]:
        payload = request.json()
        if not isinstance(payload, dict):
            raise HttpError(400, "expected a JSON object (ScheduleRequest.to_dict())")
        try:
            schedule_request = ScheduleRequest.from_dict(payload)
        except Exception as exc:
            raise HttpError(400, f"invalid schedule request: {exc}") from None
        client = self._client(schedule_request.client)
        # A request "brings its own" policy either explicitly or embedded
        # in its wire VcsConfig (from_dict keeps the canonical carrier).
        has_policy = schedule_request.policy is not None or (
            schedule_request.vcs is not None and schedule_request.vcs.policy is not None
        )
        if not has_policy and client.policy is not None:
            # The tenant's default budget policy follows every job that
            # does not bring its own (backends without a VcsConfig
            # ignore it, matching the batch path).
            try:
                schedule_request = replace(schedule_request, policy=client.policy)
            except ValueError as exc:
                raise HttpError(400, f"client policy rejected: {exc}") from None

        self._counter += 1
        job = ServiceJob(
            job_id=f"j-{self._counter:06d}",
            client=schedule_request.client,
            request=schedule_request,
            submitted_s=self._now(),
            done=asyncio.Event(),
        )
        self.jobs[job.job_id] = job
        self.queue.push(job)
        client.submitted += 1
        assert self._wakeup is not None
        self._wakeup.set()
        return 200, {"job": self._status(job).to_dict()}

    async def _result(self, job: ServiceJob, timeout: Optional[float]) -> Tuple[int, object]:
        if not job.terminal:
            assert isinstance(job.done, asyncio.Event)
            try:
                await asyncio.wait_for(job.done.wait(), timeout)
            except asyncio.TimeoutError:
                return 202, {"job": self._status(job).to_dict()}
        assert job.response is not None
        return 200, {
            "job": self._status(job).to_dict(),
            "response": job.response.to_dict(),
        }

    def _cancel(self, job: ServiceJob) -> Tuple[int, object]:
        if job.terminal:
            return 200, {"job": self._status(job).to_dict()}
        job.cancel_requested = True
        if job.state == "queued":
            self._finish_cancelled(job, "cancelled while queued")
        else:
            # Cooperative: the in-flight batch finishes, then the result
            # is discarded and the job lands in ``cancelled``.
            job.state = "cancelling"
            job.detail = "cancel requested; waiting for the in-flight batch"
        return 200, {"job": self._status(job).to_dict()}

    def _set_policy(self, name: str, request: Request) -> Tuple[int, object]:
        payload = request.json() if request.body else None
        client = self._client(name)
        if payload is None:
            client.policy = None
        elif isinstance(payload, dict):
            try:
                client.policy = SchedulePolicy.from_dict(payload)
            except ValueError as exc:
                raise HttpError(400, f"invalid policy: {exc}") from None
        else:
            raise HttpError(400, "expected a SchedulePolicy dict or null")
        return 200, {"client": client.to_dict()}

    def _stats(self) -> dict:
        states: Dict[str, int] = {}
        for job in self.jobs.values():
            states[job.state] = states.get(job.state, 0) + 1
        return {
            "uptime_s": self._now(),
            "queue_depth": len(self.queue),
            "running": self._running,
            "rounds_dispatched": self.rounds_dispatched,
            "max_batch": self.max_batch,
            "n_workers": self.runner.n_workers,
            "jobs": {"total": len(self.jobs), "by_state": states},
            "cache": self.cache_stats.to_dict(),
            "clients": {name: state.to_dict() for name, state in self.clients.items()},
        }

    # ------------------------------------------------------------------ #
    # dispatch
    # ------------------------------------------------------------------ #
    async def _dispatch_loop(self) -> None:
        assert self._wakeup is not None
        while True:
            if not len(self.queue):
                self._wakeup.clear()
                await self._wakeup.wait()
            batch = self.queue.take_round(self.max_batch)
            if not batch:
                continue
            started = self._now()
            for job in batch:
                job.state = "running"
                job.started_s = started
            self._running = len(batch)
            self.rounds_dispatched += 1
            jobs = [replace(job.request.job(), job_id=job.job_id) for job in batch]
            try:
                result = await asyncio.to_thread(
                    schedule_many, jobs, self.runner, self.cache, "capture"
                )
                self._fold(batch, result)
            except Exception as exc:
                # A failure of the batch machinery itself (not of a job)
                # fails the whole round with the runner's error taxonomy.
                for index, job in enumerate(batch):
                    failure = JobFailure(
                        index=index,
                        job_id=job.job_id,
                        kind="error",
                        error_type=type(exc).__name__,
                        message=str(exc),
                    )
                    self._finish_failure(job, failure)
            finally:
                self._running = 0

    def _fold(self, batch: List[ServiceJob], result: BatchResult) -> None:
        failures = {failure.index: failure for failure in result.failures}
        if result.cache is not None:
            self.cache_stats.merge(result.cache)
        outcomes = result.cache_outcomes or [""] * len(batch)
        for index, job in enumerate(batch):
            if job.cancel_requested:
                self._finish_cancelled(job, "cancelled while running; result discarded")
                continue
            value = result.values[index]
            if value is None:
                self._finish_failure(
                    job,
                    failures.get(index, JobFailure(index=index, job_id=job.job_id, kind="error")),
                )
                continue
            now = self._now()
            job.response = ScheduleResponse.from_result(
                job.job_id, value, cache=outcomes[index], wall_s=now - job.started_s
            )
            job.state = "done"
            job.finished_s = now
            client = self._client(job.client)
            client.completed += 1
            client.dp_work += value.work
            if value.policy is not None and value.policy.get("partial_finalize"):
                client.partial_finalizes += 1
            assert isinstance(job.done, asyncio.Event)
            job.done.set()

    def _finish_cancelled(self, job: ServiceJob, detail: str) -> None:
        now = self._now()
        job.state = "cancelled"
        job.detail = detail
        job.finished_s = now
        job.response = ScheduleResponse.from_failure(
            JobFailure(index=0, job_id=job.job_id, kind="cancelled", message=detail),
            wall_s=now - job.started_s if job.started_s else 0.0,
        )
        self._client(job.client).cancelled += 1
        assert isinstance(job.done, asyncio.Event)
        job.done.set()

    def _finish_failure(self, job: ServiceJob, failure: JobFailure) -> None:
        now = self._now()
        job.response = ScheduleResponse.from_failure(failure, wall_s=now - job.started_s)
        job.state = job.response.state
        job.detail = failure.describe()
        job.finished_s = now
        client = self._client(job.client)
        if failure.kind == "cancelled":
            client.cancelled += 1
        else:
            client.failed += 1
        assert isinstance(job.done, asyncio.Event)
        job.done.set()


class ServerThread:
    """A :class:`JobServer` on a background thread, as a context manager.

    The harness tests, the load benchmark and the docs examples use::

        with ServerThread(port=0) as server:
            client = ServiceClient(server.url)
            ...

    The listening port is bound (and ``server.url`` valid) by the time
    ``__enter__`` returns; exit stops the server and joins the thread.
    """

    def __init__(self, **kwargs: object):
        self._kwargs = kwargs
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._error: Optional[BaseException] = None
        self.server: Optional[JobServer] = None
        self.url = ""
        self.port = 0

    def __enter__(self) -> "ServerThread":
        self._thread = threading.Thread(target=self._run, name="repro-service", daemon=True)
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise RuntimeError("job server failed to start within 30s")
        if self._error is not None:
            raise RuntimeError(f"job server failed to start: {self._error}") from self._error
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._loop is not None and self._stop is not None:
            loop, stop = self._loop, self._stop
            loop.call_soon_threadsafe(stop.set)
        if self._thread is not None:
            self._thread.join(timeout=60)

    def _run(self) -> None:
        try:
            asyncio.run(self._main())
        except BaseException as exc:  # Surface startup failures to __enter__.
            self._error = exc
            self._ready.set()

    async def _main(self) -> None:
        server = JobServer(**self._kwargs)  # type: ignore[arg-type]
        await server.start()
        self.server = server
        self.port = server.port
        self.url = server.url
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        self._ready.set()
        await self._stop.wait()
        await server.stop()
