"""A minimal HTTP/1.1 layer over asyncio streams.

Just enough protocol for the job server's JSON API — no routing
framework, no keep-alive, no chunked encoding.  Every exchange is one
request, one JSON response, ``Connection: close``; the parser enforces
small hard limits on header and body sizes so a misbehaving client
cannot balloon server memory.
"""

from __future__ import annotations

import asyncio
import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

#: Hard limits keeping one request bounded: 16 KiB of headers, 32 MiB of
#: body (a large superblock serialises to well under 1 MiB).
MAX_HEADER_BYTES = 16 * 1024
MAX_BODY_BYTES = 32 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    408: "Request Timeout",
    409: "Conflict",
    500: "Internal Server Error",
}


class HttpError(Exception):
    """A protocol-level failure mapped to an HTTP status."""

    def __init__(self, status: int, message: str):
        super().__init__(message)
        self.status = status
        self.message = message


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> object:
        """The decoded JSON body (:class:`HttpError` 400 on garbage)."""
        if not self.body:
            raise HttpError(400, "expected a JSON body")
        try:
            return json.loads(self.body.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise HttpError(400, f"invalid JSON body: {exc}") from None

    def query_float(self, name: str) -> Optional[float]:
        raw = self.query.get(name)
        if raw is None or not raw.strip():
            return None
        try:
            return float(raw)
        except ValueError:
            raise HttpError(400, f"query parameter {name}={raw!r} is not a number") from None


async def read_request(reader: asyncio.StreamReader) -> Optional[Request]:
    """Parse one request off the stream; ``None`` on a clean EOF."""
    try:
        head = await reader.readuntil(b"\r\n\r\n")
    except asyncio.IncompleteReadError as exc:
        if not exc.partial:
            return None
        raise HttpError(400, "truncated request head") from None
    except asyncio.LimitOverrunError:
        raise HttpError(400, "request head too large") from None
    if len(head) > MAX_HEADER_BYTES:
        raise HttpError(400, "request head too large")

    lines = head.decode("latin-1").split("\r\n")
    parts = lines[0].split()
    if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
        raise HttpError(400, f"malformed request line {lines[0]!r}")
    method, target = parts[0].upper(), parts[1]
    split = urlsplit(target)
    query = {
        key: values[-1] for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }

    headers: Dict[str, str] = {}
    for line in lines[1:]:
        if not line:
            continue
        if ":" not in line:
            raise HttpError(400, f"malformed header line {line!r}")
        name, value = line.split(":", 1)
        headers[name.strip().lower()] = value.strip()

    body = b""
    length_text = headers.get("content-length", "0")
    try:
        length = int(length_text)
    except ValueError:
        raise HttpError(400, f"invalid Content-Length {length_text!r}") from None
    if length < 0 or length > MAX_BODY_BYTES:
        raise HttpError(400, f"body of {length} bytes exceeds the {MAX_BODY_BYTES}-byte limit")
    if length:
        try:
            body = await reader.readexactly(length)
        except asyncio.IncompleteReadError:
            raise HttpError(400, "truncated request body") from None

    return Request(
        method=method, path=unquote(split.path), query=query, headers=headers, body=body
    )


def encode_response(status: int, payload: object) -> bytes:
    """One complete JSON response, ready to write."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    reason = REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        "Content-Type: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        "Connection: close\r\n"
        "\r\n"
    )
    return head.encode("latin-1") + body


def split_path(path: str) -> Tuple[str, ...]:
    """The non-empty segments of a URL path."""
    return tuple(segment for segment in path.split("/") if segment)
