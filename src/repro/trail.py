"""Mutation trail: the undo log behind checkpoint/rollback.

The deduction hot path used to deep-copy the whole scheduling state for
every candidate decision studied (one full dict/set/union-find/VCG copy per
candidate, per stage, per AWCT target).  Following the classic SAT/CP-solver
design (MiniSat/Chaff trails), every elementary mutation of the state now
records its inverse on a :class:`Trail`; ``checkpoint()`` returns a mark and
``rollback(mark)`` undoes everything recorded since, restoring the state
exactly.  Probing a candidate becomes apply-then-undo instead of
copy-then-apply.

The trail stores flat 4-tuples ``(tag, target, key, old)`` rather than
closures: entries are created on the hottest path of the scheduler, and a
tuple append plus a small dispatch on undo is markedly cheaper than
allocating a closure per mutation.

Entry kinds
-----------
``_SET``     mapping[key] was set; ``old`` is the previous value or
             :data:`MISSING` when the key was absent.
``_ADD``     ``key`` was added to the set ``target``.
``_DISCARD`` ``key`` was removed from the set ``target``.
``_APPEND``  one item was appended to the list ``target``.
``_EXTEND``  ``target`` (a list) grew; ``key`` is the previous length.
``_ATTR``    attribute ``key`` of object ``target`` was rebound; ``old`` is
             the previous value.

Structures shared with the state (the offset union-find, the virtual
cluster graph, the communication set) accept an attached trail and route
their own mutations through it; when no trail is attached they mutate
directly, so they remain usable standalone.
"""

from __future__ import annotations

from typing import Any, List, MutableMapping, Optional, Set


class _Missing:
    """Sentinel for 'key was absent' (distinct from a stored None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


MISSING = _Missing()

_SET = 0
_ADD = 1
_DISCARD = 2
_APPEND = 3
_EXTEND = 4
_ATTR = 5


class Trail:
    """Undo log of elementary mutations with integer checkpoints."""

    __slots__ = ("_entries",)

    def __init__(self) -> None:
        self._entries: List[tuple] = []

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def mark(self) -> int:
        """Current trail position; pass to :meth:`rollback` to undo to here."""
        return len(self._entries)

    def rollback(self, mark: int) -> int:
        """Undo every mutation recorded after *mark*; returns entries undone."""
        entries = self._entries
        undone = len(entries) - mark
        while len(entries) > mark:
            tag, target, key, old = entries.pop()
            if tag == _SET:
                if old is MISSING:
                    del target[key]
                else:
                    target[key] = old
            elif tag == _ADD:
                target.discard(key)
            elif tag == _DISCARD:
                target.add(key)
            elif tag == _APPEND:
                target.pop()
            elif tag == _EXTEND:
                del target[key:]
            else:  # _ATTR
                setattr(target, key, old)
        return undone

    def rollback_capture(self, mark: int) -> List[tuple]:
        """Undo to *mark* and return a redo log that re-applies the span.

        The redo log records the *forward* values of every undone mutation,
        in application order.  Passing it to :meth:`redo` on a state that is
        byte-identical to the one the span originally started from
        reproduces the span exactly — without re-running whatever computed
        it.  The scheduler uses this to keep the winning candidate of a
        probe round: probe (deduce + record), roll back with capture, and
        once the winner is known redo its log instead of re-deducing it.
        """
        entries = self._entries
        redo: List[tuple] = []
        while len(entries) > mark:
            tag, target, key, old = entries.pop()
            if tag == _SET:
                redo.append((_SET, target, key, target.get(key, MISSING)))
                if old is MISSING:
                    del target[key]
                else:
                    target[key] = old
            elif tag == _ADD:
                redo.append((_ADD, target, key, None))
                target.discard(key)
            elif tag == _DISCARD:
                redo.append((_DISCARD, target, key, None))
                target.add(key)
            elif tag == _APPEND:
                redo.append((_APPEND, target, target[-1], None))
                target.pop()
            elif tag == _EXTEND:
                redo.append((_EXTEND, target, target[key:], None))
                del target[key:]
            else:  # _ATTR
                redo.append((_ATTR, target, key, getattr(target, key)))
                setattr(target, key, old)
        redo.reverse()
        return redo

    def redo(self, log: List[tuple]) -> None:
        """Re-apply a redo log from :meth:`rollback_capture`, re-recording
        every mutation so the redone span can itself be rolled back."""
        for tag, target, a, b in log:
            if tag == _SET:
                if b is MISSING:
                    self.del_item(target, a)
                else:
                    self.set_item(target, a, b)
            elif tag == _ADD:
                self.add_to_set(target, a)
            elif tag == _DISCARD:
                self.discard_from_set(target, a)
            elif tag == _APPEND:
                self.append_to_list(target, a)
            elif tag == _EXTEND:
                self.extend_list(target, a)
            else:  # _ATTR
                self.set_attr(target, a, b)

    # ------------------------------------------------------------------ #
    # recording mutators (record *and* apply)
    # ------------------------------------------------------------------ #
    def set_item(self, mapping: MutableMapping, key: Any, value: Any) -> None:
        self._entries.append((_SET, mapping, key, mapping.get(key, MISSING)))
        mapping[key] = value

    def del_item(self, mapping: MutableMapping, key: Any) -> None:
        if key in mapping:
            self._entries.append((_SET, mapping, key, mapping[key]))
            del mapping[key]

    def add_to_set(self, target: Set, item: Any) -> None:
        if item not in target:
            self._entries.append((_ADD, target, item, None))
            target.add(item)

    def discard_from_set(self, target: Set, item: Any) -> None:
        if item in target:
            self._entries.append((_DISCARD, target, item, None))
            target.discard(item)

    def append_to_list(self, target: List, item: Any) -> None:
        self._entries.append((_APPEND, target, None, None))
        target.append(item)

    def extend_list(self, target: List, items) -> None:
        self._entries.append((_EXTEND, target, len(target), None))
        target.extend(items)

    def set_attr(self, obj: Any, name: str, value: Any) -> None:
        self._entries.append((_ATTR, obj, name, getattr(obj, name)))
        setattr(obj, name, value)


# --------------------------------------------------------------------------- #
# helpers for structures that work with or without an attached trail
# --------------------------------------------------------------------------- #
def tset(trail: Optional[Trail], mapping: MutableMapping, key: Any, value: Any) -> None:
    if trail is None:
        mapping[key] = value
    else:
        trail.set_item(mapping, key, value)


def tdel(trail: Optional[Trail], mapping: MutableMapping, key: Any) -> None:
    if trail is None:
        mapping.pop(key, None)
    else:
        trail.del_item(mapping, key)


def tadd(trail: Optional[Trail], target: Set, item: Any) -> None:
    if trail is None:
        target.add(item)
    else:
        trail.add_to_set(target, item)


def tdiscard(trail: Optional[Trail], target: Set, item: Any) -> None:
    if trail is None:
        target.discard(item)
    else:
        trail.discard_from_set(target, item)


def textend(trail: Optional[Trail], target: List, items) -> None:
    if trail is None:
        target.extend(items)
    else:
        trail.extend_list(target, items)
