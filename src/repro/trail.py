"""Mutation trail: the undo log behind checkpoint/rollback.

The deduction hot path used to deep-copy the whole scheduling state for
every candidate decision studied (one full dict/set/union-find/VCG copy per
candidate, per stage, per AWCT target).  Following the classic SAT/CP-solver
design (MiniSat/Chaff trails), every elementary mutation of the state now
records its inverse on a :class:`Trail`; ``checkpoint()`` returns a mark and
``rollback(mark)`` undoes everything recorded since, restoring the state
exactly.  Probing a candidate becomes apply-then-undo instead of
copy-then-apply.

The trail stores flat 4-tuples ``(tag, target, key, old)`` rather than
closures: entries are created on the hottest path of the scheduler, and a
tuple append plus a small dispatch on undo is markedly cheaper than
allocating a closure per mutation.

Entry kinds
-----------
``_SET``     mapping[key] was set; ``old`` is the previous value or
             :data:`MISSING` when the key was absent.
``_ADD``     ``key`` was added to the set ``target``.
``_DISCARD`` ``key`` was removed from the set ``target``.
``_APPEND``  one item was appended to the list ``target``.
``_EXTEND``  ``target`` (a list) grew; ``key`` is the previous length.
``_ATTR``    attribute ``key`` of object ``target`` was rebound; ``old`` is
             the previous value.

Structures shared with the state (the offset union-find, the virtual
cluster graph, the communication set) accept an attached trail and route
their own mutations through it; when no trail is attached they mutate
directly, so they remain usable standalone.

State tokens
------------
:meth:`Trail.token` returns ``(length, era of the top entry)``, which
uniquely identifies the trail *prefix*.  Entries pushed between two
rollbacks share an *era*; the first push after a rollback starts a new
one, and eras are never reused.  If two observations see the same length
and the same era-of-top, the top entry is the same physical entry (had it
been popped in between, the re-push would have started a new era), and
entries below the top cannot change without popping it — so equal tokens
imply byte-identical trail prefixes, and therefore byte-identical states,
given the same initial state.  Rolling back to a mark restores the exact
token the state had at that mark, which is what makes the token usable as
the "state epoch" key of the probe-memoization layer
(:class:`repro.scheduler.pipeline.ProbeCache`): a cached deduction recorded
at token T may be replayed whenever the state is back at token T, and any
diverging mutation invalidates the match by construction.  Eras are kept
as a short run-length list, so the hot path pays one flag check per
mutation instead of a bookkeeping write.
"""

from __future__ import annotations

from typing import Any, List, MutableMapping, Optional, Set, Tuple


class _Missing:
    """Sentinel for 'key was absent' (distinct from a stored None)."""

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


MISSING = _Missing()

_SET = 0
_ADD = 1
_DISCARD = 2
_APPEND = 3
_EXTEND = 4
_ATTR = 5


class Trail:
    """Undo log of elementary mutations with integer checkpoints."""

    __slots__ = ("_entries", "_era", "_era_runs", "_era_broken")

    def __init__(self) -> None:
        self._entries: List[tuple] = []
        #: Era bookkeeping (see "State tokens" in the module docs):
        #: ``_era_runs`` holds ``(start_index, era)`` pairs for each
        #: contiguous run of pushes between rollbacks.
        self._era = 0
        self._era_runs: List[Tuple[int, int]] = []
        self._era_broken = True

    def __len__(self) -> int:
        return len(self._entries)

    # ------------------------------------------------------------------ #
    # checkpointing
    # ------------------------------------------------------------------ #
    def mark(self) -> int:
        """Current trail position; pass to :meth:`rollback` to undo to here."""
        return len(self._entries)

    def token(self) -> Tuple[int, int]:
        """A value identifying the current trail prefix (the state epoch).

        Two equal tokens from the same trail guarantee byte-identical
        prefixes: entries below the top cannot change without popping the
        top, and a re-pushed top always lands in a fresh era."""
        entries = self._entries
        if not entries:
            return (0, 0)
        return (len(entries), self._era_runs[-1][1])

    def _start_era(self) -> None:
        """Open a fresh era at the just-pushed top entry (rare path)."""
        self._era += 1
        self._era_runs.append((len(self._entries) - 1, self._era))
        self._era_broken = False

    def _break_era(self, mark: int) -> None:
        """Note a rollback to *mark*: drop eras above it, break the run."""
        runs = self._era_runs
        while runs and runs[-1][0] >= mark:
            runs.pop()
        self._era_broken = True

    def rollback(self, mark: int) -> int:
        """Undo every mutation recorded after *mark*; returns entries undone."""
        entries = self._entries
        undone = len(entries) - mark
        if undone > 0:
            self._break_era(mark)
        while len(entries) > mark:
            tag, target, key, old = entries.pop()
            if tag == _SET:
                if old is MISSING:
                    del target[key]
                else:
                    target[key] = old
            elif tag == _ADD:
                target.discard(key)
            elif tag == _DISCARD:
                target.add(key)
            elif tag == _APPEND:
                target.pop()
            elif tag == _EXTEND:
                del target[key:]
            else:  # _ATTR
                setattr(target, key, old)
        return undone

    def rollback_capture(self, mark: int) -> List[tuple]:
        """Undo to *mark* and return a redo log that re-applies the span.

        The redo log records the *forward* values of every undone mutation,
        in application order.  Passing it to :meth:`redo` on a state that is
        byte-identical to the one the span originally started from
        reproduces the span exactly — without re-running whatever computed
        it.  The scheduler uses this to keep the winning candidate of a
        probe round: probe (deduce + record), roll back with capture, and
        once the winner is known redo its log instead of re-deducing it.
        """
        entries = self._entries
        if len(entries) > mark:
            self._break_era(mark)
        redo: List[tuple] = []
        while len(entries) > mark:
            tag, target, key, old = entries.pop()
            if tag == _SET:
                redo.append((_SET, target, key, target.get(key, MISSING)))
                if old is MISSING:
                    del target[key]
                else:
                    target[key] = old
            elif tag == _ADD:
                redo.append((_ADD, target, key, None))
                target.discard(key)
            elif tag == _DISCARD:
                redo.append((_DISCARD, target, key, None))
                target.add(key)
            elif tag == _APPEND:
                redo.append((_APPEND, target, target[-1], None))
                target.pop()
            elif tag == _EXTEND:
                redo.append((_EXTEND, target, target[key:], None))
                del target[key:]
            else:  # _ATTR
                redo.append((_ATTR, target, key, getattr(target, key)))
                setattr(target, key, old)
        redo.reverse()
        return redo

    def redo(self, log: List[tuple]) -> None:
        """Re-apply a redo log from :meth:`rollback_capture`, re-recording
        every mutation so the redone span can itself be rolled back.

        The undo entries are appended directly instead of going through the
        recording mutators: the log was captured from real mutations on a
        byte-identical state, so every mutator guard (key present before a
        delete, item absent before a set add, ...) is known to hold and the
        membership re-checks would be pure overhead on what is the single
        hottest call of the winner-keeping path."""
        entries = self._entries
        for tag, target, a, b in log:
            if tag == _SET:
                if b is MISSING:
                    entries.append((_SET, target, a, target[a]))
                    if self._era_broken:
                        self._start_era()
                    del target[a]
                else:
                    entries.append((_SET, target, a, target.get(a, MISSING)))
                    if self._era_broken:
                        self._start_era()
                    target[a] = b
            elif tag == _ADD:
                entries.append((_ADD, target, a, None))
                if self._era_broken:
                    self._start_era()
                target.add(a)
            elif tag == _DISCARD:
                entries.append((_DISCARD, target, a, None))
                if self._era_broken:
                    self._start_era()
                target.discard(a)
            elif tag == _APPEND:
                entries.append((_APPEND, target, None, None))
                if self._era_broken:
                    self._start_era()
                target.append(a)
            elif tag == _EXTEND:
                entries.append((_EXTEND, target, len(target), None))
                if self._era_broken:
                    self._start_era()
                target.extend(a)
            else:  # _ATTR
                entries.append((_ATTR, target, a, getattr(target, a)))
                if self._era_broken:
                    self._start_era()
                setattr(target, a, b)

    # ------------------------------------------------------------------ #
    # recording mutators (record *and* apply)
    # ------------------------------------------------------------------ #
    # Each mutator checks the era flag inline (these are the hottest
    # writes of the scheduler; the rare new-era path is shared).
    def set_item(self, mapping: MutableMapping, key: Any, value: Any) -> None:
        self._entries.append((_SET, mapping, key, mapping.get(key, MISSING)))
        if self._era_broken:
            self._start_era()
        mapping[key] = value

    def del_item(self, mapping: MutableMapping, key: Any) -> None:
        if key in mapping:
            self._entries.append((_SET, mapping, key, mapping[key]))
            if self._era_broken:
                self._start_era()
            del mapping[key]

    def add_to_set(self, target: Set, item: Any) -> None:
        if item not in target:
            self._entries.append((_ADD, target, item, None))
            if self._era_broken:
                self._start_era()
            target.add(item)

    def discard_from_set(self, target: Set, item: Any) -> None:
        if item in target:
            self._entries.append((_DISCARD, target, item, None))
            if self._era_broken:
                self._start_era()
            target.discard(item)

    def append_to_list(self, target: List, item: Any) -> None:
        self._entries.append((_APPEND, target, None, None))
        if self._era_broken:
            self._start_era()
        target.append(item)

    def extend_list(self, target: List, items) -> None:
        self._entries.append((_EXTEND, target, len(target), None))
        if self._era_broken:
            self._start_era()
        target.extend(items)

    def set_attr(self, obj: Any, name: str, value: Any) -> None:
        self._entries.append((_ATTR, obj, name, getattr(obj, name)))
        if self._era_broken:
            self._start_era()
        setattr(obj, name, value)


# --------------------------------------------------------------------------- #
# helpers for structures that work with or without an attached trail
# --------------------------------------------------------------------------- #
def tset(trail: Optional[Trail], mapping: MutableMapping, key: Any, value: Any) -> None:
    if trail is None:
        mapping[key] = value
    else:
        trail.set_item(mapping, key, value)


def tdel(trail: Optional[Trail], mapping: MutableMapping, key: Any) -> None:
    if trail is None:
        mapping.pop(key, None)
    else:
        trail.del_item(mapping, key)


def tadd(trail: Optional[Trail], target: Set, item: Any) -> None:
    if trail is None:
        target.add(item)
    else:
        trail.add_to_set(target, item)


def tdiscard(trail: Optional[Trail], target: Set, item: Any) -> None:
    if trail is None:
        target.discard(item)
    else:
        trail.discard_from_set(target, item)


def textend(trail: Optional[Trail], target: List, items) -> None:
    if trail is None:
        target.extend(items)
    else:
        trail.extend_list(target, items)
