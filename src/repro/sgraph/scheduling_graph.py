"""Construction and queries of the Scheduling Graph.

The SG is an undirected graph over the superblock's operations; an edge
between *u* and *v* carries the set of feasible combinations between them.
It is computed once per superblock (using only dependence and resource
information, which are common to all AWCT targets) and then filtered
dynamically by the deduction process as bounds tighten.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.bounds.estart import compute_estart
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.sgraph.combination import Combination, feasible_combinations, pair_key


class SchedulingGraph:
    """All feasible combinations between overlapping operation pairs.

    Parameters
    ----------
    block:
        The superblock whose operations are related.
    machine:
        Machine description used to rule out pairwise resource conflicts.
    """

    def __init__(self, block: Superblock, machine: ClusteredMachine) -> None:
        self._block = block
        self._machine = machine
        self._combinations: Dict[Tuple[int, int], Tuple[Combination, ...]] = {}
        self._distances: Dict[Tuple[int, int], Tuple[int, ...]] = {}
        self._neighbors: Dict[int, Tuple[int, ...]] = {}
        self._base_estart: Optional[Dict[int, int]] = None
        self._build()

    def _build(self) -> None:
        op_ids = self._block.op_ids
        adjacency: Dict[int, Set[int]] = {}
        for i, u in enumerate(op_ids):
            for v in op_ids[i + 1:]:
                combos = feasible_combinations(self._block.graph, self._machine, u, v)
                if combos:
                    self._combinations[(u, v)] = tuple(combos)
                    self._distances[(u, v)] = tuple(c.distance for c in combos)
                    adjacency.setdefault(u, set()).add(v)
                    adjacency.setdefault(v, set()).add(u)
        self._neighbors = {u: tuple(sorted(vs)) for u, vs in adjacency.items()}

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    @property
    def block(self) -> Superblock:
        return self._block

    @property
    def machine(self) -> ClusteredMachine:
        return self._machine

    def pairs(self) -> List[Tuple[int, int]]:
        """All pairs linked by at least one combination, sorted."""
        return sorted(self._combinations)

    def has_edge(self, u: int, v: int) -> bool:
        return pair_key(u, v) in self._combinations

    def combinations(self, u: int, v: int) -> Tuple[Combination, ...]:
        """Feasible combinations between *u* and *v* (may be empty)."""
        return self._combinations.get(pair_key(u, v), ())

    def distances(self, u: int, v: int) -> Tuple[int, ...]:
        """Distances of the pair's feasible combinations (may be empty)."""
        return self._distances.get(pair_key(u, v), ())

    @property
    def base_estart(self) -> Dict[int, int]:
        """Dependence-only estart of every operation, computed once per block.

        Scheduling states copy this instead of recomputing the longest-path
        pass for every AWCT target and every minAWCT probe; subsequent bound
        changes are propagated incrementally from the changed node by the
        deduction rules."""
        if self._base_estart is None:
            self._base_estart = compute_estart(self._block.graph)
        return self._base_estart

    def all_combinations(self) -> Iterator[Combination]:
        for combos in self._combinations.values():
            yield from combos

    def n_combinations(self) -> int:
        return sum(len(c) for c in self._combinations.values())

    def neighbors(self, op_id: int) -> Tuple[int, ...]:
        """Operations sharing at least one combination with *op_id*."""
        return self._neighbors.get(op_id, ())

    def degree(self, op_id: int) -> int:
        return len(self.neighbors(op_id))

    def __len__(self) -> int:
        """Number of edges (pairs with at least one combination)."""
        return len(self._combinations)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [
            f"SchedulingGraph({self._block.name}: {len(self)} edges, "
            f"{self.n_combinations()} combinations)"
        ]
        for (u, v), combos in sorted(self._combinations.items()):
            dists = ", ".join(str(c.distance) for c in combos)
            lines.append(f"  ({u}, {v}): [{dists}]")
        return "\n".join(lines)
