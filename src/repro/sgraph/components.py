"""Offset union-find: connected components with rigid cycle offsets.

Choosing a combination between two operations fixes their relative issue
cycles; the resulting "complex instruction" (connected component in the
paper's terms) behaves as a single unit whose members move together.  The
offset union-find keeps, for every operation, its cycle offset relative to
the representative of its component, so that merging two components with a
new relative-distance constraint either succeeds (and the offsets compose)
or is detected as contradictory.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple


class OffsetContradiction(Exception):
    """Two operations are already linked at a different relative distance."""


class OffsetUnionFind:
    """Union-find over operation ids with integer offsets.

    The invariant is ``cycle(x) = cycle(root(x)) + offset(x)``.
    ``link(u, v, d)`` records ``cycle(v) - cycle(u) = d``.
    """

    def __init__(self, elements: Iterable[int] = ()) -> None:
        self._parent: Dict[int, int] = {}
        self._offset: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        for element in elements:
            self.add(element)

    # ------------------------------------------------------------------ #
    # basic operations
    # ------------------------------------------------------------------ #
    def add(self, element: int) -> None:
        if element not in self._parent:
            self._parent[element] = element
            self._offset[element] = 0
            self._size[element] = 1

    def __contains__(self, element: int) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: int) -> Tuple[int, int]:
        """Return ``(root, offset_of_element_relative_to_root)``."""
        if element not in self._parent:
            raise KeyError(f"unknown element {element}")
        path: List[int] = []
        node = element
        while self._parent[node] != node:
            path.append(node)
            node = self._parent[node]
        root = node
        # Path compression, accumulating offsets towards the root.
        for node in reversed(path):
            parent = self._parent[node]
            self._offset[node] += self._offset[parent] if parent != root else 0
            # After the loop below, every node on the path points directly
            # at the root, so the accumulated offset is already relative to
            # the root.
            self._parent[node] = root
        return root, self._offset[element]

    def offset_between(self, u: int, v: int) -> int | None:
        """``cycle(v) - cycle(u)`` when the two are linked, else None."""
        root_u, off_u = self.find(u)
        root_v, off_v = self.find(v)
        if root_u != root_v:
            return None
        return off_v - off_u

    def connected(self, u: int, v: int) -> bool:
        return self.find(u)[0] == self.find(v)[0]

    def link(self, u: int, v: int, distance: int) -> bool:
        """Record ``cycle(v) - cycle(u) = distance``.

        Returns True when the link merged two components, False when the
        constraint was already implied.  Raises :class:`OffsetContradiction`
        when the two are already linked at a different distance.
        """
        self.add(u)
        self.add(v)
        root_u, off_u = self.find(u)
        root_v, off_v = self.find(v)
        if root_u == root_v:
            if off_v - off_u != distance:
                raise OffsetContradiction(
                    f"operations {u} and {v} already linked at distance "
                    f"{off_v - off_u}, cannot set {distance}"
                )
            return False
        # Attach the smaller tree below the larger one.
        if self._size[root_u] < self._size[root_v]:
            # cycle(root_u) = cycle(root_v) + (off_v - distance - off_u)
            self._parent[root_u] = root_v
            self._offset[root_u] = off_v - distance - off_u
            self._size[root_v] += self._size[root_u]
        else:
            # cycle(root_v) = cycle(root_u) + (off_u + distance - off_v)
            self._parent[root_v] = root_u
            self._offset[root_v] = off_u + distance - off_v
            self._size[root_u] += self._size[root_v]
        return True

    # ------------------------------------------------------------------ #
    # component queries
    # ------------------------------------------------------------------ #
    def component(self, element: int) -> List[Tuple[int, int]]:
        """Members of *element*'s component as ``(member, offset)`` pairs,
        offsets relative to *element*."""
        root, base = self.find(element)
        members = []
        for other in self._parent:
            other_root, other_off = self.find(other)
            if other_root == root:
                members.append((other, other_off - base))
        return sorted(members)

    def components(self) -> List[List[int]]:
        """All components as sorted lists of members."""
        groups: Dict[int, List[int]] = {}
        for element in self._parent:
            root, _ = self.find(element)
            groups.setdefault(root, []).append(element)
        return sorted(sorted(group) for group in groups.values())

    def n_components(self) -> int:
        return len({self.find(e)[0] for e in self._parent})

    def copy(self) -> "OffsetUnionFind":
        clone = OffsetUnionFind()
        clone._parent = dict(self._parent)
        clone._offset = dict(self._offset)
        clone._size = dict(self._size)
        return clone
