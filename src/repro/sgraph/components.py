"""Offset union-find: connected components with rigid cycle offsets.

Choosing a combination between two operations fixes their relative issue
cycles; the resulting "complex instruction" (connected component in the
paper's terms) behaves as a single unit whose members move together.  The
offset union-find keeps, for every operation, its cycle offset relative to
the representative of its component, so that merging two components with a
new relative-distance constraint either succeeds (and the offsets compose)
or is detected as contradictory.

The structure supports an attached mutation trail (see :mod:`repro.trail`)
so the scheduler can probe decisions in place and roll them back.  While a
trail is attached, :meth:`find` does not path-compress — compression is a
mutation that would otherwise have to be recorded, and union-by-size alone
keeps the trees logarithmically shallow.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from repro.trail import Trail, tdel, tset


class OffsetContradiction(Exception):
    """Two operations are already linked at a different relative distance."""


class OffsetUnionFind:
    """Union-find over operation ids with integer offsets.

    The invariant is ``cycle(x) = cycle(root(x)) + offset(x)``.
    ``link(u, v, d)`` records ``cycle(v) - cycle(u) = d``.
    """

    def __init__(self, elements: Iterable[int] = ()) -> None:
        self._parent: Dict[int, int] = {}
        self._offset: Dict[int, int] = {}
        self._size: Dict[int, int] = {}
        #: Members of each component, keyed by root (kept so component
        #: queries touch only the component, not every element).
        self._members: Dict[int, List[int]] = {}
        self._trail: Optional[Trail] = None
        for element in elements:
            self.add(element)

    def attach_trail(self, trail: Optional[Trail]) -> None:
        """Route subsequent mutations through *trail* (None detaches)."""
        self._trail = trail

    # ------------------------------------------------------------------ #
    # basic operations
    # ------------------------------------------------------------------ #
    def add(self, element: int) -> None:
        if element not in self._parent:
            t = self._trail
            tset(t, self._parent, element, element)
            tset(t, self._offset, element, 0)
            tset(t, self._size, element, 1)
            tset(t, self._members, element, [element])

    def __contains__(self, element: int) -> bool:
        return element in self._parent

    def __len__(self) -> int:
        return len(self._parent)

    def find(self, element: int) -> Tuple[int, int]:
        """Return ``(root, offset_of_element_relative_to_root)``."""
        parent = self._parent
        if element not in parent:
            raise KeyError(f"unknown element {element}")
        if self._trail is not None:
            # No path compression while a trail is attached: walk up,
            # summing offsets towards the root.
            offset_map = self._offset
            node = element
            offset = 0
            while parent[node] != node:
                offset += offset_map[node]
                node = parent[node]
            return node, offset
        path: List[int] = []
        node = element
        while parent[node] != node:
            path.append(node)
            node = parent[node]
        root = node
        # Path compression, accumulating offsets towards the root.
        for node in reversed(path):
            node_parent = parent[node]
            self._offset[node] += self._offset[node_parent] if node_parent != root else 0
            # After the loop below, every node on the path points directly
            # at the root, so the accumulated offset is already relative to
            # the root.
            parent[node] = root
        return root, self._offset[element]

    def offset_between(self, u: int, v: int) -> int | None:
        """``cycle(v) - cycle(u)`` when the two are linked, else None."""
        root_u, off_u = self.find(u)
        root_v, off_v = self.find(v)
        if root_u != root_v:
            return None
        return off_v - off_u

    def connected(self, u: int, v: int) -> bool:
        return self.find(u)[0] == self.find(v)[0]

    def link(self, u: int, v: int, distance: int) -> bool:
        """Record ``cycle(v) - cycle(u) = distance``.

        Returns True when the link merged two components, False when the
        constraint was already implied.  Raises :class:`OffsetContradiction`
        when the two are already linked at a different distance.
        """
        self.add(u)
        self.add(v)
        root_u, off_u = self.find(u)
        root_v, off_v = self.find(v)
        if root_u == root_v:
            if off_v - off_u != distance:
                raise OffsetContradiction(
                    f"operations {u} and {v} already linked at distance "
                    f"{off_v - off_u}, cannot set {distance}"
                )
            return False
        # Attach the smaller tree below the larger one.
        t = self._trail
        if self._size[root_u] < self._size[root_v]:
            # cycle(root_u) = cycle(root_v) + (off_v - distance - off_u)
            winner, loser = root_v, root_u
            loser_offset = off_v - distance - off_u
        else:
            # cycle(root_v) = cycle(root_u) + (off_u + distance - off_v)
            winner, loser = root_u, root_v
            loser_offset = off_u + distance - off_v
        tset(t, self._parent, loser, winner)
        tset(t, self._offset, loser, loser_offset)
        tset(t, self._size, winner, self._size[winner] + self._size[loser])
        loser_members = self._members[loser]
        if t is None:
            self._members[winner].extend(loser_members)
        else:
            t.extend_list(self._members[winner], loser_members)
        tdel(t, self._members, loser)
        return True

    # ------------------------------------------------------------------ #
    # component queries
    # ------------------------------------------------------------------ #
    def component(self, element: int) -> List[Tuple[int, int]]:
        """Members of *element*'s component as ``(member, offset)`` pairs,
        offsets relative to *element*."""
        root, base = self.find(element)
        members = []
        for other in self._members[root]:
            _, other_off = self.find(other)
            members.append((other, other_off - base))
        return sorted(members)

    def component_size(self, element: int) -> int:
        """Number of members in *element*'s component (one root walk)."""
        return len(self._members[self.find(element)[0]])

    def components(self) -> List[List[int]]:
        """All components as sorted lists of members."""
        return sorted(sorted(group) for group in self._members.values())

    def n_components(self) -> int:
        return len(self._members)

    def copy(self) -> "OffsetUnionFind":
        clone = OffsetUnionFind()
        clone._parent = dict(self._parent)
        clone._offset = dict(self._offset)
        clone._size = dict(self._size)
        clone._members = {root: list(members) for root, members in self._members.items()}
        return clone
