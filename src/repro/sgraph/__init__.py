"""The Scheduling Graph (Section 3.1 of the paper).

The scheduling graph (SG) enumerates, for every pair of operations that may
overlap in some final schedule, the feasible *combinations*: the cycle
distances the pair may be placed at.  Scheduling proceeds by choosing or
discarding combinations; a chosen combination rigidly links the two
operations into a *connected component* tracked by an offset union-find.
"""

from repro.sgraph.combination import (
    Combination,
    combination_range,
    feasible_combinations,
    pair_key,
)
from repro.sgraph.scheduling_graph import SchedulingGraph
from repro.sgraph.components import OffsetUnionFind, OffsetContradiction

__all__ = [
    "Combination",
    "combination_range",
    "feasible_combinations",
    "pair_key",
    "SchedulingGraph",
    "OffsetUnionFind",
    "OffsetContradiction",
]
