"""Combinations: cycle-distance relations between pairs of operations.

A combination between the ordered pair ``(u, v)`` (ordered by operation id,
the paper's "lexicographic order") with distance ``d`` states that in the
final schedule ``cycle(v) - cycle(u) = d``.  Only distances at which the two
operations' execution intervals overlap are combinations; distances outside
that window do not constrain cluster assignment and need not be enumerated.

Feasibility of a combination (Section 3.1) depends on

* **dependences** — a combination contradicting a direct or transitive
  dependence distance is infeasible;
* **resources** — a combination is infeasible if the two operations cannot
  be issued at that distance on any machine of the given shape (the only
  pairwise case is distance 0 with insufficient per-class or issue
  capacity);
* **AWCT bounds** — handled dynamically by the deduction process, because
  the scheduling graph is built once and reused for every AWCT target.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import Operation
from repro.machine.machine import ClusteredMachine


def pair_key(u: int, v: int) -> Tuple[int, int]:
    """Canonical (ordered) key for an unordered operation pair."""
    return (u, v) if u < v else (v, u)


@dataclass(frozen=True)
class Combination:
    """One combination of the scheduling graph.

    ``u < v`` always holds and ``distance`` is ``cycle(v) - cycle(u)``.
    """

    u: int
    v: int
    distance: int

    def __post_init__(self) -> None:
        if self.u >= self.v:
            raise ValueError("combination pairs must be ordered by id (u < v)")

    @property
    def pair(self) -> Tuple[int, int]:
        return (self.u, self.v)

    def offset_from(self, op_id: int) -> int:
        """Distance of the *other* operation relative to *op_id*."""
        if op_id == self.u:
            return self.distance
        if op_id == self.v:
            return -self.distance
        raise KeyError(f"operation {op_id} is not part of {self}")

    def other(self, op_id: int) -> int:
        if op_id == self.u:
            return self.v
        if op_id == self.v:
            return self.u
        raise KeyError(f"operation {op_id} is not part of {self}")

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"comb({self.u},{self.v})={self.distance:+d}"


def combination_range(latency_u: int, latency_v: int) -> range:
    """Distances at which two operations' execution intervals overlap.

    With ``d = cycle(v) - cycle(u)`` the intervals ``[cycle(u), cycle(u) +
    latency_u - 1]`` and ``[cycle(v), cycle(v) + latency_v - 1]`` intersect
    iff ``-(latency_v - 1) <= d <= latency_u - 1``.
    """
    return range(-(latency_v - 1), latency_u)


def _same_cycle_resource_ok(op_u: Operation, op_v: Operation, machine: ClusteredMachine) -> bool:
    """Whether the machine can issue *op_u* and *op_v* in the same cycle."""
    if op_u.op_class == op_v.op_class:
        if machine.per_cycle_capacity(op_u.op_class) < 2:
            return False
    if machine.total_issue_width < 2:
        return False
    return True


def feasible_combinations(
    graph: DependenceGraph,
    machine: ClusteredMachine,
    u: int,
    v: int,
) -> List[Combination]:
    """All feasible combinations between operations *u* and *v*.

    The returned list is empty when the pair cannot overlap in any schedule
    (for instance when a dependence separates them by at least the producer's
    full latency).
    """
    if u == v:
        raise ValueError("a combination relates two distinct operations")
    a, b = pair_key(u, v)
    op_a, op_b = graph.op(a), graph.op(b)

    low = -(op_b.latency - 1)
    high = op_a.latency - 1

    # Dependence constraints: transitive minimum distances clip the window.
    dist_ab = graph.min_distance(a, b)
    if dist_ab is not None:
        low = max(low, dist_ab)
    dist_ba = graph.min_distance(b, a)
    if dist_ba is not None:
        high = min(high, -dist_ba)

    result: List[Combination] = []
    for d in range(low, high + 1):
        if d == 0 and not _same_cycle_resource_ok(op_a, op_b, machine):
            continue
        result.append(Combination(a, b, d))
    return result
