"""One typed loader for every ``REPRO_*`` environment knob.

Historically each layer parsed its own environment variables —
``resolve_jobs`` read ``REPRO_JOBS`` in :mod:`repro.runner.batch`,
``cache_enabled`` read ``REPRO_CACHE`` in :mod:`repro.runner.cache`, the
pool read ``REPRO_POOL``, the benchmark conftest read
``REPRO_BENCH_*`` — which made the precedence between explicit
arguments and ambient environment a per-call-site convention.  This
module is the single source of truth:

* :data:`ENV_KNOBS` — the registry of every non-``VcsConfig`` knob
  (name, default, parser, byte-identity impact, description).  The
  generated knob table in ``docs/tuning.md`` is produced from it by
  ``scripts/check_docs.py``, so a knob cannot exist without being
  documented.
* :class:`RuntimeConfig` — a frozen snapshot of every knob, built by
  :meth:`RuntimeConfig.load` under one precedence rule: **explicit
  argument > environment variable > default**.  Loading never mutates
  the environment.
* Per-knob parse helpers (:func:`parse_jobs`, :func:`parse_cache`, …)
  that the legacy accessors (``resolve_jobs``, ``cache_enabled``,
  ``pool_reuse_enabled``, ``CacheSpec.from_env``) now delegate to, so
  the parse rules cannot drift between layers.

The module is deliberately stdlib-only (no ``repro`` imports): every
layer of the package, including the worker-pool initializer, can import
it without cycles.  ``VcsConfig`` fields keep their own
``REPRO_VCS_<FIELD>`` override path in :mod:`repro.scheduler.registry`.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Callable, Dict, Mapping, Optional, Tuple

# --------------------------------------------------------------------------- #
# per-knob parse rules
# --------------------------------------------------------------------------- #


def parse_jobs(value: object) -> int:
    """Parse a worker count: positive integer or ``"auto"`` (CPU count).

    The rule behind :func:`repro.runner.batch.resolve_jobs` — zero,
    negative and boolean counts are rejected with :class:`ValueError`.
    """
    jobs = value
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return os.cpu_count() or 1
        try:
            jobs = int(text)
        except ValueError:
            raise ValueError(
                f"invalid job count {value!r}: expected a positive integer or 'auto'"
            ) from None
    if not isinstance(jobs, int) or isinstance(jobs, bool) or jobs <= 0:
        raise ValueError(f"invalid job count {value!r}: expected a positive integer or 'auto'")
    return jobs


def parse_scheduler(value: object) -> str:
    """Parse a default backend name; empty selects ``"vcs"``."""
    return str(value).strip() or "vcs"


def parse_cache(value: object) -> bool:
    """``REPRO_CACHE`` rule: anything but ``off``/``0``/``false``/``no`` is on."""
    return str(value).strip().lower() not in ("off", "0", "false", "no")


def parse_cache_dir(value: object) -> str:
    """``REPRO_CACHE_DIR`` rule: stripped path, empty means ``~/.cache/repro``."""
    text = str(value).strip()
    return text if text else str(Path.home() / ".cache" / "repro")


def parse_pool(value: object) -> bool:
    """``REPRO_POOL`` rule: anything but ``fresh``/``off``/``0``/``false``
    keeps the shared persistent pool."""
    return str(value).strip().lower() not in ("fresh", "off", "0", "false")


def parse_optional_int(name: str) -> Callable[[object], Optional[int]]:
    def parse(value: object) -> Optional[int]:
        if value is None:
            return None
        text = str(value).strip()
        if not text:
            return None
        try:
            parsed = int(text)
        except ValueError:
            raise ValueError(f"invalid {name} {value!r}: expected an integer") from None
        return parsed

    return parse


def parse_optional_float(name: str) -> Callable[[object], Optional[float]]:
    def parse(value: object) -> Optional[float]:
        if value is None:
            return None
        text = str(value).strip()
        if not text:
            return None
        try:
            parsed = float(text)
        except ValueError:
            raise ValueError(f"invalid {name} {value!r}: expected a number") from None
        if parsed <= 0:
            raise ValueError(f"invalid {name} {value!r}: expected a positive number")
        return parsed

    return parse


def parse_int(name: str) -> Callable[[object], int]:
    def parse(value: object) -> int:
        try:
            return int(str(value).strip())
        except ValueError:
            raise ValueError(f"invalid {name} {value!r}: expected an integer") from None

    return parse


def parse_host(value: object) -> str:
    return str(value).strip() or "127.0.0.1"


# --------------------------------------------------------------------------- #
# the knob registry
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class EnvKnob:
    """One documented environment knob: where it lives, how it parses,
    and the two prose columns of the generated tuning table."""

    #: ``RuntimeConfig`` attribute the knob populates.
    attr: str
    #: Environment variable name.
    env: str
    #: Raw default fed to :attr:`parse` when the variable is unset.
    default: object
    #: Parser from raw (string or explicit) value to the typed value.
    parse: Callable[[object], object]
    #: Human-readable default shown in the docs table.
    default_text: str
    #: Byte-identity impact column of the docs table.
    identity: str
    #: Description column of the docs table.
    note: str


#: Every non-``VcsConfig`` environment knob, in docs-table order.  The
#: ``docs/tuning.md`` env rows are generated from this tuple.
ENV_KNOBS: Tuple[EnvKnob, ...] = (
    EnvKnob(
        attr="jobs",
        env="REPRO_JOBS",
        default="1",
        parse=parse_jobs,
        default_text="1",
        identity="byte-identical for any value (gated in CI at 1 and 2)",
        note="worker-process count for the benchmark harness and batch runner",
    ),
    EnvKnob(
        attr="scheduler",
        env="REPRO_SCHEDULER",
        default="vcs",
        parse=parse_scheduler,
        default_text="vcs",
        identity="selects the backend — results differ across backends by design",
        note="default backend for run_suite.py and the harness (vcs/cars/list/hybrid)",
    ),
    EnvKnob(
        attr="bench_blocks",
        env="REPRO_BENCH_BLOCKS",
        default=None,
        parse=parse_optional_int("REPRO_BENCH_BLOCKS"),
        default_text="unset (full workload)",
        identity="changes the workload, not determinism",
        note="cap synthetic blocks per suite — CI uses 1 for the perf-smoke gate",
    ),
    EnvKnob(
        attr="bench_budget",
        env="REPRO_BENCH_BUDGET",
        default="60000",
        parse=parse_int("REPRO_BENCH_BUDGET"),
        default_text="60000",
        identity="changes the benchmark work budget, not determinism",
        note='the "4-minute-equivalent" dp_work budget of the pytest benchmark harness',
    ),
    EnvKnob(
        attr="cache",
        env="REPRO_CACHE",
        default="on",
        parse=parse_cache,
        default_text="on",
        identity="byte-identical — hits replay stored results keyed by content",
        note="`off` disables the on-disk result cache (same as run_suite.py --no-cache)",
    ),
    EnvKnob(
        attr="cache_dir",
        env="REPRO_CACHE_DIR",
        default="",
        parse=parse_cache_dir,
        default_text="~/.cache/repro",
        identity="byte-identical — relocates the store, never the results",
        note="result-cache directory (run_suite.py --cache-dir overrides per run)",
    ),
    EnvKnob(
        attr="pool",
        env="REPRO_POOL",
        default="persistent",
        parse=parse_pool,
        default_text="persistent",
        identity="byte-identical — reuse only changes wall time",
        note="`fresh`/`off` restores an executor per batch instead of the shared "
        "persistent worker pool",
    ),
    EnvKnob(
        attr="service_host",
        env="REPRO_SERVICE_HOST",
        default="127.0.0.1",
        parse=parse_host,
        default_text="127.0.0.1",
        identity="byte-identical — transport only",
        note="bind address of `repro serve` (the asyncio job server)",
    ),
    EnvKnob(
        attr="service_port",
        env="REPRO_SERVICE_PORT",
        default="0",
        parse=parse_int("REPRO_SERVICE_PORT"),
        default_text="0 (ephemeral)",
        identity="byte-identical — transport only",
        note="TCP port of `repro serve`; 0 asks the OS for a free port",
    ),
    EnvKnob(
        attr="service_timeout",
        env="REPRO_SERVICE_TIMEOUT",
        default=None,
        parse=parse_optional_float("REPRO_SERVICE_TIMEOUT"),
        default_text="unset (no deadline)",
        identity="wall-clock dependent — a fired timeout fails the job",
        note="per-job wall-clock deadline (seconds) enforced by the job server",
    ),
)

_KNOBS_BY_ATTR: Dict[str, EnvKnob] = {knob.attr: knob for knob in ENV_KNOBS}


def env_knob(attr: str) -> EnvKnob:
    """The registered knob populating ``RuntimeConfig.<attr>``."""
    return _KNOBS_BY_ATTR[attr]


# --------------------------------------------------------------------------- #
# the typed snapshot
# --------------------------------------------------------------------------- #


@dataclass(frozen=True)
class RuntimeConfig:
    """A frozen snapshot of every environment knob, typed and parsed.

    Build one with :meth:`load`; field defaults here only describe the
    fully-default environment (they are re-derived through the same
    parsers on load, so the two cannot disagree).
    """

    jobs: int = 1
    scheduler: str = "vcs"
    bench_blocks: Optional[int] = None
    bench_budget: int = 60_000
    cache: bool = True
    cache_dir: str = ""
    pool: bool = True
    service_host: str = "127.0.0.1"
    service_port: int = 0
    service_timeout: Optional[float] = None

    @classmethod
    def load(cls, env: Optional[Mapping[str, str]] = None, **overrides: object) -> "RuntimeConfig":
        """Load every knob under the rule *explicit arg > env > default*.

        ``env`` defaults to ``os.environ``; keyword overrides name
        :class:`RuntimeConfig` fields and win over the environment.  An
        override of ``None`` means "no override" (fall through to the
        environment), matching the convention of ``resolve_jobs(None)``.
        """
        source: Mapping[str, str] = os.environ if env is None else env
        unknown = set(overrides) - set(_KNOBS_BY_ATTR)
        if unknown:
            raise TypeError(f"unknown RuntimeConfig field(s): {sorted(unknown)}")
        values: Dict[str, object] = {}
        for knob in ENV_KNOBS:
            raw = overrides.get(knob.attr)
            if raw is None:
                raw = source.get(knob.env, knob.default)
            values[knob.attr] = knob.parse(raw) if raw is not None else None
        return cls(**values)

    def to_dict(self) -> dict:
        """A JSON-serialisable snapshot (report metadata)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}
