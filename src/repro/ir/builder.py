"""Fluent construction of superblocks.

The builder keeps the program order in which operations are emitted, derives
data dependence edges from def-use chains, memory-order edges between stores
and the loads/stores that follow them, and control edges that keep exits in
order and pin non-speculative operations below the most recent exit.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.depgraph import DepKind, DependenceGraph
from repro.ir.operation import OpClass, Operation, default_latency
from repro.ir.superblock import Superblock
from repro.ir.values import ValueNamer


class SuperblockBuilder:
    """Build a :class:`~repro.ir.superblock.Superblock` incrementally.

    Example
    -------
    >>> b = SuperblockBuilder("demo")
    >>> x = b.add_op("load", OpClass.MEM, dests=["x"])
    >>> y = b.add_op("add", OpClass.INT, dests=["y"], srcs=["x"])
    >>> _ = b.add_exit(probability=0.3, srcs=["y"])
    >>> z = b.add_op("mul", OpClass.INT, dests=["z"], srcs=["y"])
    >>> _ = b.add_exit(probability=0.7, srcs=["z"])
    >>> sb = b.build(execution_count=100)
    >>> sb.size
    5
    """

    def __init__(self, name: str, namer: Optional[ValueNamer] = None) -> None:
        self.name = name
        self._graph = DependenceGraph()
        self._namer = namer or ValueNamer()
        self._next_id = 0
        self._defs: Dict[str, int] = {}
        self._uses: Dict[str, List[int]] = {}
        self._last_exit: Optional[int] = None
        self._last_store: Optional[int] = None
        self._loads_since_store: List[int] = []
        self._exit_order: List[int] = []
        self._live_ins: List[str] = []
        self._live_outs: List[str] = []

    # ------------------------------------------------------------------ #
    # operation emission
    # ------------------------------------------------------------------ #
    def add_op(
        self,
        opcode: str,
        op_class: OpClass,
        dests: Sequence[str] = (),
        srcs: Sequence[str] = (),
        latency: Optional[int] = None,
        speculative: bool = True,
        comment: str = "",
    ) -> int:
        """Emit a non-exit operation and return its id."""
        if op_class is OpClass.BRANCH:
            raise ValueError("use add_exit() for branches")
        return self._emit(
            opcode,
            op_class,
            tuple(dests),
            tuple(srcs),
            latency,
            is_exit=False,
            exit_prob=0.0,
            speculative=speculative,
            comment=comment,
        )

    def add_exit(
        self,
        probability: float,
        srcs: Sequence[str] = (),
        opcode: str = "br",
        latency: Optional[int] = None,
        comment: str = "",
    ) -> int:
        """Emit an exit branch with the given taken probability."""
        return self._emit(
            opcode,
            OpClass.BRANCH,
            (),
            tuple(srcs),
            latency,
            is_exit=True,
            exit_prob=probability,
            speculative=False,
            comment=comment,
        )

    def _emit(
        self,
        opcode: str,
        op_class: OpClass,
        dests: Tuple[str, ...],
        srcs: Tuple[str, ...],
        latency: Optional[int],
        is_exit: bool,
        exit_prob: float,
        speculative: bool,
        comment: str,
    ) -> int:
        op_id = self._next_id
        self._next_id += 1
        op = Operation(
            op_id=op_id,
            opcode=opcode,
            op_class=op_class,
            latency=latency if latency is not None else default_latency(op_class),
            dests=dests,
            srcs=srcs,
            is_exit=is_exit,
            exit_prob=exit_prob,
            speculative=speculative,
            comment=comment,
        )
        self._graph.add_operation(op)
        self._wire_dependences(op)
        self._record_definitions(op)
        if is_exit:
            self._exit_order.append(op_id)
            self._last_exit = op_id
        return op_id

    # ------------------------------------------------------------------ #
    # dependence derivation
    # ------------------------------------------------------------------ #
    def _wire_dependences(self, op: Operation) -> None:
        # Flow (true) dependences: use of a previously defined value.
        for value in op.srcs:
            producer = self._defs.get(value)
            if producer is not None:
                self._graph.add_edge(producer, op.op_id, DepKind.DATA, value=value)
            else:
                if value not in self._live_ins:
                    self._live_ins.append(value)
            self._uses.setdefault(value, []).append(op.op_id)

        # Anti dependences: redefinition of a value previously used or defined.
        for value in op.dests:
            for user in self._uses.get(value, ()):
                if user != op.op_id:
                    self._graph.add_edge(user, op.op_id, DepKind.ANTI, latency=0)
            prior_def = self._defs.get(value)
            if prior_def is not None and prior_def != op.op_id:
                self._graph.add_edge(prior_def, op.op_id, DepKind.ANTI, latency=1)

        # Memory ordering: loads and stores stay ordered with respect to
        # the most recent store (conservative, no alias analysis).
        if op.op_class is OpClass.MEM:
            is_store = not op.dests
            if is_store:
                if self._last_store is not None:
                    self._graph.add_edge(self._last_store, op.op_id, DepKind.MEMORY, latency=1)
                for load in self._loads_since_store:
                    self._graph.add_edge(load, op.op_id, DepKind.MEMORY, latency=0)
                self._last_store = op.op_id
                self._loads_since_store = []
            else:
                if self._last_store is not None:
                    self._graph.add_edge(self._last_store, op.op_id, DepKind.MEMORY, latency=1)
                self._loads_since_store.append(op.op_id)

        # Control dependences: exits stay in program order; non-speculative
        # operations cannot be hoisted above the preceding exit; stores are
        # never speculative.
        if self._last_exit is not None and self._last_exit != op.op_id:
            must_stay_below = (
                op.is_exit
                or not op.speculative
                or (op.op_class is OpClass.MEM and not op.dests)
            )
            if must_stay_below:
                self._graph.add_edge(self._last_exit, op.op_id, DepKind.CONTROL, latency=0)

    def _record_definitions(self, op: Operation) -> None:
        for value in op.dests:
            self._defs[value] = op.op_id

    # ------------------------------------------------------------------ #
    # miscellaneous builder state
    # ------------------------------------------------------------------ #
    def fresh_value(self, prefix: Optional[str] = None) -> str:
        """Return a fresh virtual register name."""
        return self._namer.fresh(prefix)

    def mark_live_out(self, *values: str) -> None:
        for value in values:
            if value not in self._live_outs:
                self._live_outs.append(value)

    @property
    def graph(self) -> DependenceGraph:
        return self._graph

    @property
    def exit_ids(self) -> List[int]:
        return list(self._exit_order)

    # ------------------------------------------------------------------ #
    # finalisation
    # ------------------------------------------------------------------ #
    def build(self, execution_count: int = 1, final_exit_probability: Optional[float] = None) -> Superblock:
        """Finalise the superblock.

        If the emitted exits' probabilities do not sum to one, a final
        fall-through jump is appended with the remaining probability (or
        *final_exit_probability* when given).  The block ends at that final
        exit: every operation receives a zero-latency order edge to it, so no
        operation can be scheduled below the jump that leaves the block.
        """
        total = sum(self._graph.op(e).exit_prob for e in self._exit_order)
        remaining = 1.0 - total
        if final_exit_probability is not None:
            remaining = final_exit_probability
        if remaining > 1e-9 or not self._exit_order:
            self.add_exit(probability=max(remaining, 0.0), opcode="jump", comment="fall-through")
        final_exit = self._exit_order[-1]
        for op_id in self._graph.op_ids:
            if op_id == final_exit:
                continue
            if not self._graph.must_precede(op_id, final_exit):
                self._graph.add_edge(op_id, final_exit, DepKind.CONTROL, latency=0)
        return Superblock(
            name=self.name,
            graph=self._graph,
            execution_count=execution_count,
            live_ins=tuple(self._live_ins),
            live_outs=tuple(self._live_outs),
        )
