"""Operations: the atomic units the scheduler places into cycles.

An :class:`Operation` corresponds to one slot of a VLIW instruction word: an
integer/floating-point/memory/branch operation, or an inter-cluster copy
inserted by the scheduler.  Operations are identified by a small integer id
that is unique within a superblock; the lexicographic order used by the
scheduling graph (Section 3.1 of the paper) is the order of these ids.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field, replace
from typing import Optional, Tuple


class OpClass(enum.Enum):
    """Functional-unit class of an operation.

    The paper's machine model gives every cluster one functional unit of each
    of the four classes (int, fp, mem, branch); inter-cluster copies are a
    fifth class that occupies the bus rather than a functional unit.
    """

    INT = "int"
    FP = "fp"
    MEM = "mem"
    BRANCH = "branch"
    COPY = "copy"

    # Identity hash (C slot): enum.Enum.__hash__ is a Python-level call and
    # OpClass keys sit on the hottest dict paths of the deduction engine.
    # Consistent with the default identity __eq__; dict iteration order is
    # insertion order, so no observable behaviour depends on hash values.
    __hash__ = object.__hash__

    @property
    def is_branch(self) -> bool:
        return self is OpClass.BRANCH

    @property
    def is_copy(self) -> bool:
        return self is OpClass.COPY

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Default latencies per operation class.  These follow the paper's running
#: example (2-cycle non-branch operations, 3-cycle branches) for INT/BRANCH
#: and common VLIW DSP figures for the rest.  Individual operations may
#: override the class latency.
DEFAULT_LATENCIES = {
    OpClass.INT: 2,
    OpClass.FP: 3,
    OpClass.MEM: 3,
    OpClass.BRANCH: 3,
    OpClass.COPY: 1,
}


def default_latency(op_class: OpClass) -> int:
    """Return the default latency for *op_class*."""
    return DEFAULT_LATENCIES[op_class]


@dataclass(frozen=True)
class Operation:
    """A single operation of a superblock.

    Parameters
    ----------
    op_id:
        Identifier, unique within the superblock.  Also defines the
        lexicographic order used to orient scheduling-graph combinations.
    opcode:
        Mnemonic; purely informational.
    op_class:
        Functional-unit class.
    latency:
        Number of cycles between issue and availability of the result.  For
        exits it is also the completion latency used by the AWCT metric.
    dests / srcs:
        Virtual register names defined and used by the operation.
    is_exit:
        True for operations that may leave the superblock (branches and the
        final jump).
    exit_prob:
        Probability that this exit is taken, conditioned on reaching the
        superblock entry.  Only meaningful when ``is_exit`` is true.
    speculative:
        Whether the operation may be hoisted above earlier branches.  The
        superblock builder uses this to decide whether to add a control
        dependence from the preceding exit.
    """

    op_id: int
    opcode: str
    op_class: OpClass
    latency: int
    dests: Tuple[str, ...] = ()
    srcs: Tuple[str, ...] = ()
    is_exit: bool = False
    exit_prob: float = 0.0
    speculative: bool = True
    comment: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if self.latency < 1:
            raise ValueError(f"operation {self.op_id} has latency {self.latency} < 1")
        if self.is_exit and not (0.0 <= self.exit_prob <= 1.0):
            raise ValueError(
                f"exit {self.op_id} has probability {self.exit_prob} outside [0, 1]"
            )
        if self.is_exit and self.op_class is not OpClass.BRANCH:
            raise ValueError(f"exit operation {self.op_id} must be a branch")
        if self.op_class is OpClass.COPY and len(self.srcs) != 1:
            raise ValueError("copy operations read exactly one value")

    @property
    def is_branch(self) -> bool:
        return self.op_class.is_branch

    @property
    def is_copy(self) -> bool:
        return self.op_class.is_copy

    @property
    def name(self) -> str:
        """Short printable name, e.g. ``B3`` for a branch with id 3."""
        prefix = {
            OpClass.BRANCH: "B",
            OpClass.COPY: "C",
            OpClass.MEM: "M",
            OpClass.FP: "F",
            OpClass.INT: "I",
        }[self.op_class]
        return f"{prefix}{self.op_id}"

    def with_id(self, op_id: int) -> "Operation":
        """Return a copy of this operation with a different id."""
        return replace(self, op_id=op_id)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        dsts = ", ".join(self.dests)
        srcs = ", ".join(self.srcs)
        exit_part = f" exit(p={self.exit_prob:.2f})" if self.is_exit else ""
        return f"{self.name}: {self.opcode} [{dsts}] <- [{srcs}] lat={self.latency}{exit_part}"


def make_copy(op_id: int, value: str, dest: Optional[str] = None, latency: int = 1) -> Operation:
    """Create an inter-cluster copy operation for *value*.

    The copy reads *value* in the producer's cluster and defines *dest*
    (``value + "'"`` by default) in the consumer's cluster.
    """
    return Operation(
        op_id=op_id,
        opcode="copy",
        op_class=OpClass.COPY,
        latency=latency,
        dests=(dest if dest is not None else value + "'",),
        srcs=(value,),
    )
