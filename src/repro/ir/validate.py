"""Structural validation of superblocks.

The scheduler assumes a number of well-formedness properties (acyclic DG,
exits present, probabilities in range, edges consistent with latencies);
:func:`validate_superblock` checks them and raises :class:`ValidationError`
with an explanatory message when a property is violated.
"""

from __future__ import annotations

from typing import List

from repro.ir.depgraph import DepKind
from repro.ir.operation import OpClass
from repro.ir.superblock import Superblock


class ValidationError(Exception):
    """A superblock violates a structural invariant."""


def validate_superblock(block: Superblock, tolerance: float = 1e-6) -> None:
    """Raise :class:`ValidationError` if *block* is not well formed.

    Checks performed:

    * the dependence graph is acyclic;
    * there is at least one exit and exit probabilities sum to ~1;
    * every exit is a branch operation and branches are totally ordered by
      dependences (exits cannot be reordered);
    * data edges have latency at least 1 and reference values actually
      defined by their source;
    * the execution count is positive.
    """
    errors: List[str] = []

    if len(block.graph) == 0:
        raise ValidationError(f"{block.name}: superblock has no operations")

    if not block.graph.is_acyclic():
        errors.append("dependence graph contains a cycle")

    exits = block.exits
    if not exits:
        errors.append("superblock has no exit")
    else:
        total = sum(e.probability for e in exits)
        if abs(total - 1.0) > tolerance:
            errors.append(f"exit probabilities sum to {total:.6f}, expected 1.0")
        for e in exits:
            if not block.op(e.op_id).is_branch:
                errors.append(f"exit {e.op_id} is not a branch")

    if block.graph.is_acyclic():
        exit_ids = [e.op_id for e in exits]
        for i, first in enumerate(exit_ids):
            for second in exit_ids[i + 1:]:
                if not block.graph.are_ordered(first, second):
                    errors.append(
                        f"exits {first} and {second} are not ordered by dependences"
                    )

    for edge in block.graph.edges():
        src_op = block.op(edge.src)
        if edge.kind is DepKind.DATA:
            if edge.latency < 1:
                errors.append(f"data edge ({edge.src}, {edge.dst}) has latency {edge.latency}")
            if edge.value is not None and edge.value not in src_op.dests:
                errors.append(
                    f"data edge ({edge.src}, {edge.dst}) carries {edge.value!r} "
                    f"which {edge.src} does not define"
                )

    if block.execution_count < 0:
        errors.append(f"execution count {block.execution_count} is negative")

    for op in block.operations:
        if op.op_class is OpClass.COPY:
            errors.append(f"operation {op.op_id} is a copy; copies are scheduler-inserted")

    if errors:
        raise ValidationError(f"{block.name}: " + "; ".join(errors))
