"""Virtual register names.

Values in the IR are plain strings; this module only provides a tiny helper
that hands out fresh, readable names (``v0``, ``v1``, ...) and records which
names it has produced so builders can detect accidental reuse.
"""

from __future__ import annotations

from typing import Iterator, Set


class ValueNamer:
    """Produce fresh virtual register names.

    >>> namer = ValueNamer()
    >>> namer.fresh()
    'v0'
    >>> namer.fresh("addr")
    'addr1'
    """

    def __init__(self, prefix: str = "v") -> None:
        self._prefix = prefix
        self._counter = 0
        self._issued: Set[str] = set()

    def fresh(self, prefix: str | None = None) -> str:
        """Return a new, never-before-issued value name."""
        name = f"{prefix or self._prefix}{self._counter}"
        self._counter += 1
        self._issued.add(name)
        return name

    def fresh_many(self, count: int) -> Iterator[str]:
        """Yield *count* fresh names."""
        for _ in range(count):
            yield self.fresh()

    @property
    def issued(self) -> Set[str]:
        """All names issued so far (a copy)."""
        return set(self._issued)

    def __contains__(self, name: str) -> bool:
        return name in self._issued

    def __len__(self) -> int:
        return len(self._issued)
