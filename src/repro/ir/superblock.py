"""Superblocks: single-entry, multi-exit scheduling regions.

A superblock (Hwu et al.) is a sequence of basic blocks with a single entry
point and one or more exits.  For scheduling purposes it is fully described
by its dependence graph, the set of exit operations with their probabilities,
and the number of times the block is entered (its execution count), which the
evaluation uses to weight the block's AWCT into a total cycle count.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.ir.depgraph import DependenceGraph
from repro.ir.operation import OpClass, Operation


@dataclass(frozen=True)
class ExitInfo:
    """One exit of a superblock."""

    op_id: int
    probability: float

    def __post_init__(self) -> None:
        if not (0.0 <= self.probability <= 1.0):
            raise ValueError(f"exit probability {self.probability} outside [0, 1]")


@dataclass
class Superblock:
    """A superblock ready to be scheduled.

    Parameters
    ----------
    name:
        Identifier used in reports (e.g. ``"099.go/sb_0042"``).
    graph:
        The dependence graph over the block's operations.
    execution_count:
        Number of times the superblock is entered in the profiled run
        (``T(S)`` in the paper); used to compute the block's contribution
        ``TC(S) = AWCT(S) * T(S)`` to total cycles.
    live_ins / live_outs:
        Virtual registers live on entry / on some exit.  The evaluation
        assigns these to clusters up-front (randomly but identically for
        every scheduler) as the paper does for fairness.
    """

    name: str
    graph: DependenceGraph
    execution_count: int = 1
    live_ins: Tuple[str, ...] = ()
    live_outs: Tuple[str, ...] = ()

    # ------------------------------------------------------------------ #
    # operations and exits
    # ------------------------------------------------------------------ #
    @property
    def operations(self) -> List[Operation]:
        return self.graph.operations

    @property
    def op_ids(self) -> List[int]:
        return self.graph.op_ids

    def op(self, op_id: int) -> Operation:
        return self.graph.op(op_id)

    @property
    def exits(self) -> List[ExitInfo]:
        """Exit operations in id order."""
        return [
            ExitInfo(op.op_id, op.exit_prob)
            for op in self.operations
            if op.is_exit
        ]

    @property
    def exit_ids(self) -> List[int]:
        return [e.op_id for e in self.exits]

    def exit_probability(self, op_id: int) -> float:
        op = self.graph.op(op_id)
        if not op.is_exit:
            raise ValueError(f"operation {op_id} is not an exit")
        return op.exit_prob

    @property
    def total_exit_probability(self) -> float:
        return sum(e.probability for e in self.exits)

    @property
    def size(self) -> int:
        """Number of operations in the block."""
        return len(self.graph)

    # ------------------------------------------------------------------ #
    # classification helpers used by the workload statistics
    # ------------------------------------------------------------------ #
    def count_by_class(self) -> Dict[OpClass, int]:
        counts: Dict[OpClass, int] = {}
        for op in self.operations:
            counts[op.op_class] = counts.get(op.op_class, 0) + 1
        return counts

    @property
    def branch_count(self) -> int:
        return sum(1 for op in self.operations if op.is_branch)

    def critical_path_length(self) -> int:
        """Length (in cycles) of the longest dependence chain to any exit,
        including the exit's own latency.  A dependence-only lower bound on
        the completion time of the last exit."""
        longest = 0
        for exit_info in self.exits:
            for op_id in self.op_ids:
                if op_id == exit_info.op_id:
                    dist = 0
                else:
                    d = self.graph.min_distance(op_id, exit_info.op_id)
                    if d is None:
                        continue
                    dist = d
                total = dist + self.op(exit_info.op_id).latency
                longest = max(longest, total)
        return longest

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "Superblock":
        return Superblock(
            name=self.name,
            graph=self.graph.copy(),
            execution_count=self.execution_count,
            live_ins=self.live_ins,
            live_outs=self.live_outs,
        )

    def with_exit_probabilities(self, probabilities: Dict[int, float]) -> "Superblock":
        """Return a copy of the block with some exit probabilities replaced.

        Used by the cross-input experiment (Figure 12), where the profile
        used for scheduling differs from the one used for evaluation.
        """
        clone = DependenceGraph()
        for op in self.operations:
            if op.op_id in probabilities:
                if not op.is_exit:
                    raise ValueError(f"operation {op.op_id} is not an exit")
                op = Operation(
                    op_id=op.op_id,
                    opcode=op.opcode,
                    op_class=op.op_class,
                    latency=op.latency,
                    dests=op.dests,
                    srcs=op.srcs,
                    is_exit=True,
                    exit_prob=probabilities[op.op_id],
                    speculative=op.speculative,
                    comment=op.comment,
                )
            clone.add_operation(op)
        for e in self.graph.edges():
            clone.add_edge(e.src, e.dst, e.kind, e.latency, e.value)
        return Superblock(
            name=self.name,
            graph=clone,
            execution_count=self.execution_count,
            live_ins=self.live_ins,
            live_outs=self.live_outs,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Superblock({self.name}, {self.size} ops, "
            f"{len(self.exits)} exits, T={self.execution_count})"
        )
