"""Intermediate representation for superblock scheduling.

This subpackage provides the data structures the scheduler consumes:

* :class:`~repro.ir.operation.Operation` — a single VLIW operation with an
  operation class, a latency, and the virtual registers it defines and uses.
* :class:`~repro.ir.depgraph.DependenceGraph` — the data/control dependence
  graph over the operations of one superblock.
* :class:`~repro.ir.superblock.Superblock` — a single-entry, multi-exit code
  region with exit probabilities and an execution count.
* :class:`~repro.ir.builder.SuperblockBuilder` — a fluent helper that builds
  superblocks and derives the dependence edges automatically.
"""

from repro.ir.operation import (
    OpClass,
    Operation,
    DEFAULT_LATENCIES,
    default_latency,
)
from repro.ir.values import ValueNamer
from repro.ir.depgraph import DepKind, DepEdge, DependenceGraph
from repro.ir.superblock import Superblock, ExitInfo
from repro.ir.builder import SuperblockBuilder
from repro.ir.validate import ValidationError, validate_superblock

__all__ = [
    "OpClass",
    "Operation",
    "DEFAULT_LATENCIES",
    "default_latency",
    "ValueNamer",
    "DepKind",
    "DepEdge",
    "DependenceGraph",
    "Superblock",
    "ExitInfo",
    "SuperblockBuilder",
    "ValidationError",
    "validate_superblock",
]
