"""Dependence graph over the operations of a superblock.

The dependence graph (DG in the paper) is a DAG whose nodes are operation ids
and whose edges carry a *kind* (data, control, memory-order, anti) and a
*latency* — the minimum number of cycles that must separate the issue of the
source from the issue of the destination.  For a data edge the latency is the
producer's latency; control edges have latency zero (an operation may issue in
the same cycle as the branch it is control dependent on, as in the paper's
running example where I4 and B0 share estart 4).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Set, Tuple

import networkx as nx

from repro.ir.operation import Operation


class DepKind(enum.Enum):
    """Kind of a dependence edge."""

    DATA = "data"
    CONTROL = "control"
    MEMORY = "memory"
    ANTI = "anti"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class DepEdge:
    """One dependence edge of the graph."""

    src: int
    dst: int
    kind: DepKind
    latency: int
    value: Optional[str] = None

    @property
    def is_register_edge(self) -> bool:
        """True when the edge carries a register value across clusters."""
        return self.kind is DepKind.DATA and self.value is not None


class DependenceGraph:
    """A directed acyclic dependence graph for one superblock.

    The graph owns the operations: they are added with :meth:`add_operation`
    and edges reference them by id.  The class exposes the queries the
    scheduler needs: predecessors/successors with latencies, reachability
    (``must_precede``), topological order, and per-value producer/consumer
    lookups.
    """

    def __init__(self) -> None:
        self._graph = nx.DiGraph()
        self._ops: Dict[int, Operation] = {}
        self._reach_cache: Optional[Dict[int, Set[int]]] = None
        # Adjacency caches (op ids, per-node edge lists, register edges);
        # rebuilt lazily after structural changes.  The scheduler queries
        # these on its hottest paths, and the graph is static once built.
        self._struct_cache: Optional[tuple] = None
        # Longest-path distances per source and the topological order they
        # are computed over; invalidated together with the other caches.
        self._dist_cache: Dict[int, Dict[int, int]] = {}
        self._topo_cache: Optional[List[int]] = None

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def add_operation(self, op: Operation) -> None:
        """Add *op* to the graph; its id must not already be present."""
        if op.op_id in self._ops:
            raise ValueError(f"duplicate operation id {op.op_id}")
        self._ops[op.op_id] = op
        self._graph.add_node(op.op_id)
        self._reach_cache = None
        self._struct_cache = None
        self._dist_cache = {}
        self._topo_cache = None

    def add_edge(
        self,
        src: int,
        dst: int,
        kind: DepKind = DepKind.DATA,
        latency: Optional[int] = None,
        value: Optional[str] = None,
    ) -> DepEdge:
        """Add a dependence edge from *src* to *dst*.

        When *latency* is omitted it defaults to the source operation's
        latency for data/memory edges and zero for control/anti edges.  When
        an edge between the pair already exists the stricter (larger) latency
        is kept and the value annotation is preserved.
        """
        if src not in self._ops or dst not in self._ops:
            raise KeyError(f"edge ({src}, {dst}) references unknown operation")
        if src == dst:
            raise ValueError(f"self dependence on operation {src}")
        if latency is None:
            if kind in (DepKind.DATA, DepKind.MEMORY):
                latency = self._ops[src].latency
            else:
                latency = 0
        if latency < 0:
            raise ValueError("dependence latency must be non-negative")

        if self._graph.has_edge(src, dst):
            self._struct_cache = None
            data = self._graph.edges[src, dst]
            data["latency"] = max(data["latency"], latency)
            if value is not None and data.get("value") is None:
                data["value"] = value
            if kind is DepKind.DATA:
                data["kind"] = DepKind.DATA
        else:
            self._graph.add_edge(src, dst, kind=kind, latency=latency, value=value)
        self._reach_cache = None
        self._struct_cache = None
        self._dist_cache = {}
        self._topo_cache = None
        return DepEdge(src, dst, kind, latency, value)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def operations(self) -> List[Operation]:
        """All operations, sorted by id."""
        return [self._ops[i] for i in sorted(self._ops)]

    @property
    def op_ids(self) -> List[int]:
        # Computed directly: keeps the id query decoupled from the (lazily
        # built, invalidated-on-mutation) adjacency cache.
        return sorted(self._ops)

    def _structures(self) -> tuple:
        """Cached (op_ids, predecessors, successors, register_edges).

        Built with the same iteration orders as the uncached per-call
        queries, so consumers observe identical edge orderings."""
        cache = self._struct_cache
        if cache is None:
            op_ids = sorted(self._ops)
            preds: Dict[int, Tuple[DepEdge, ...]] = {}
            succs: Dict[int, Tuple[DepEdge, ...]] = {}
            edges = self._graph.edges
            for op_id in op_ids:
                preds[op_id] = tuple(
                    DepEdge(src, op_id, d["kind"], d["latency"], d.get("value"))
                    for src in self._graph.predecessors(op_id)
                    for d in (edges[src, op_id],)
                )
                succs[op_id] = tuple(
                    DepEdge(op_id, dst, d["kind"], d["latency"], d.get("value"))
                    for dst in self._graph.successors(op_id)
                    for d in (edges[op_id, dst],)
                )
            register = tuple(e for e in self.edges() if e.is_register_edge)
            cache = self._struct_cache = (op_ids, preds, succs, register)
        return cache

    def op(self, op_id: int) -> Operation:
        return self._ops[op_id]

    def __contains__(self, op_id: int) -> bool:
        return op_id in self._ops

    def __len__(self) -> int:
        return len(self._ops)

    def edges(self) -> Iterator[DepEdge]:
        """Iterate over all dependence edges."""
        for src, dst, data in self._graph.edges(data=True):
            yield DepEdge(src, dst, data["kind"], data["latency"], data.get("value"))

    def edge(self, src: int, dst: int) -> Optional[DepEdge]:
        """Return the edge from *src* to *dst*, or None."""
        if not self._graph.has_edge(src, dst):
            return None
        data = self._graph.edges[src, dst]
        return DepEdge(src, dst, data["kind"], data["latency"], data.get("value"))

    def ordered_edges(self) -> List[DepEdge]:
        """The edges in an insertion-compatible order.

        :meth:`edges` iterates grouped by source node, which loses the
        *interleaving* of the original ``add_edge`` calls — and per-node
        predecessor/successor iteration order is behaviour a rebuilt
        graph must reproduce (the deduction engine walks adjacency in
        that order, so ``dp_work`` depends on it).  This method merges
        the per-node successor and predecessor orders back into one
        sequence: replaying ``add_edge`` over it yields a graph whose
        adjacency iteration orders match this one node for node.  The
        wire format of :func:`repro.api.block_to_dict` serialises edges
        in this order, which is what makes a wire round-tripped block
        schedule byte-identically (digest *and* work counters).

        The greedy merge cannot deadlock: among the not-yet-emitted
        edges, the one inserted earliest originally is always at the
        head of both its source's successor order and its target's
        predecessor order.
        """
        graph = self._graph
        succ = {node: list(graph.successors(node)) for node in graph.nodes()}
        pred_head = {node: 0 for node in graph.nodes()}
        succ_head = {node: 0 for node in graph.nodes()}
        pred = {node: list(graph.predecessors(node)) for node in graph.nodes()}
        ordered: List[DepEdge] = []
        remaining = graph.number_of_edges()
        while remaining:
            progress = False
            for src in graph.nodes():
                while succ_head[src] < len(succ[src]):
                    dst = succ[src][succ_head[src]]
                    if pred[dst][pred_head[dst]] != src:
                        break
                    data = graph.edges[src, dst]
                    ordered.append(
                        DepEdge(src, dst, data["kind"], data["latency"], data.get("value"))
                    )
                    succ_head[src] += 1
                    pred_head[dst] += 1
                    remaining -= 1
                    progress = True
            if not progress:  # pragma: no cover - unreachable for real graphs
                ordered.extend(
                    edge
                    for edge in self.edges()
                    if not any(e.src == edge.src and e.dst == edge.dst for e in ordered)
                )
                break
        return ordered

    def predecessors(self, op_id: int) -> Tuple[DepEdge, ...]:
        """Incoming edges of *op_id*."""
        return self._structures()[1][op_id]

    def successors(self, op_id: int) -> Tuple[DepEdge, ...]:
        """Outgoing edges of *op_id*."""
        return self._structures()[2][op_id]

    def register_edges(self) -> Tuple[DepEdge, ...]:
        """All data edges that carry a named register value."""
        return self._structures()[3]

    # ------------------------------------------------------------------ #
    # structural queries
    # ------------------------------------------------------------------ #
    def is_acyclic(self) -> bool:
        return nx.is_directed_acyclic_graph(self._graph)

    def topological_order(self) -> List[int]:
        """Operation ids in a deterministic topological order."""
        return list(nx.lexicographical_topological_sort(self._graph))

    def _reachability(self) -> Dict[int, Set[int]]:
        if self._reach_cache is None:
            cache: Dict[int, Set[int]] = {}
            for node in reversed(list(nx.topological_sort(self._graph))):
                reach: Set[int] = set()
                for succ in self._graph.successors(node):
                    reach.add(succ)
                    reach |= cache[succ]
                cache[node] = reach
            self._reach_cache = cache
        return self._reach_cache

    def must_precede(self, u: int, v: int) -> bool:
        """True when a (possibly indirect) dependence forces *u* before *v*."""
        return v in self._reachability()[u]

    def are_ordered(self, u: int, v: int) -> bool:
        """True when the DG orders *u* and *v* in either direction."""
        return self.must_precede(u, v) or self.must_precede(v, u)

    def min_distance(self, u: int, v: int) -> Optional[int]:
        """Longest-path distance (in cycles) from *u* to *v*, or None.

        This is the minimum number of cycles the schedule must place between
        the issue of *u* and the issue of *v* when *u* must precede *v*.
        The per-source distance map is cached (with the topological order it
        is swept over), so building the scheduling graph costs one longest-
        path sweep per source instead of one per queried pair.
        """
        if not self.must_precede(u, v):
            return None
        dist = self._dist_cache.get(u)
        if dist is None:
            order = self._topo_cache
            if order is None:
                order = self._topo_cache = list(nx.topological_sort(self._graph))
            dist = {u: 0}
            edges = self._graph.edges
            succ_of = self._graph.successors
            for node in order:
                if node not in dist:
                    continue
                base = dist[node]
                for succ in succ_of(node):
                    cand = base + edges[node, succ]["latency"]
                    if cand > dist.get(succ, -1):
                        dist[succ] = cand
            self._dist_cache[u] = dist
        return dist.get(v)

    # ------------------------------------------------------------------ #
    # per-value queries
    # ------------------------------------------------------------------ #
    def producer_of(self, value: str) -> Optional[int]:
        """Operation id that defines *value*, if any operation in the DG does."""
        for op in self._ops.values():
            if value in op.dests:
                return op.op_id
        return None

    def consumers_of(self, value: str) -> List[int]:
        """Operation ids that use *value* through a data edge."""
        producer = self.producer_of(value)
        if producer is None:
            return sorted(
                op.op_id for op in self._ops.values() if value in op.srcs
            )
        return sorted(
            e.dst for e in self.successors(producer) if e.value == value
        )

    # ------------------------------------------------------------------ #
    # misc
    # ------------------------------------------------------------------ #
    def copy(self) -> "DependenceGraph":
        """Deep-enough copy: operations are immutable, edges are re-added."""
        clone = DependenceGraph()
        for op in self.operations:
            clone.add_operation(op)
        for e in self.edges():
            clone.add_edge(e.src, e.dst, e.kind, e.latency, e.value)
        return clone

    def as_networkx(self) -> nx.DiGraph:
        """Return a copy of the underlying networkx graph."""
        return self._graph.copy()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        lines = [f"DependenceGraph({len(self)} ops, {self._graph.number_of_edges()} edges)"]
        for op in self.operations:
            lines.append(f"  {op}")
        for e in self.edges():
            lines.append(f"  {e.src} -> {e.dst} [{e.kind}, lat={e.latency}]")
        return "\n".join(lines)
