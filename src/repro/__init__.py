"""repro — a reproduction of "Virtual Cluster Scheduling Through the
Scheduling Graph" (Codina, Sánchez, González; CGO 2007).

The package implements, from scratch, the paper's instruction scheduling and
cluster assignment technique for clustered VLIW processors together with the
substrates it needs: a superblock IR, a clustered machine model, the
scheduling graph, virtual clusters, the deduction process, the CARS
baseline, synthetic SpecInt95/MediaBench-style workloads and the evaluation
harness reproducing the paper's figures.

Quick start
-----------
>>> from repro import (
...     paper_figure1_block, example_2cluster,
...     VirtualClusterScheduler, CarsScheduler,
... )
>>> block = paper_figure1_block()
>>> machine = example_2cluster()
>>> proposed = VirtualClusterScheduler().schedule(block, machine)
>>> baseline = CarsScheduler().schedule(block, machine)
>>> proposed.awct <= baseline.awct
True
"""

from repro.ir import (
    OpClass,
    Operation,
    DependenceGraph,
    DepKind,
    Superblock,
    SuperblockBuilder,
    validate_superblock,
    ValidationError,
)
from repro.machine import (
    ClusteredMachine,
    ClusterConfig,
    ClusterSpec,
    BusConfig,
    InterconnectConfig,
    RingConfig,
    PointToPointConfig,
    FuKind,
    MachineFamily,
    MachineSpec,
    all_machine_specs,
    machine_by_name,
    machine_families,
    machine_family,
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
    paper_configurations,
    example_2cluster,
    example_1cluster_fig4,
    unified,
)
from repro.bounds import (
    awct,
    min_awct,
    min_exit_cycles,
    compute_bounds,
    ExitBoundEnumerator,
)
from repro.sgraph import SchedulingGraph, Combination
from repro.vcluster import VirtualClusterGraph, Communication, CommKind
from repro.deduction import (
    SchedulingState,
    DeductionProcess,
    DeductionResult,
    WorkBudget,
    Contradiction,
)
from repro.scheduler import (
    Schedule,
    ScheduleResult,
    validate_schedule,
    ScheduleError,
    CarsScheduler,
    ListScheduler,
    VirtualClusterScheduler,
    VcsConfig,
)
from repro.workloads import (
    SuperblockGenerator,
    GeneratorConfig,
    BenchmarkProfile,
    WorkloadFamily,
    build_benchmark,
    build_family,
    build_suite,
    train_variant,
    all_profiles,
    profile_by_name,
    workload_families,
    workload_family,
    paper_figure1_block,
    fir_kernel,
    dot_product_kernel,
    dct_butterfly_kernel,
    string_search_kernel,
)
from repro.analysis import (
    compare_block,
    evaluate_benchmark,
    geometric_mean,
    EffortThresholds,
    collect_effort,
    format_speedup_series,
    format_compile_time_table,
    ScenarioCell,
    run_scenario_matrix,
)
from repro.runner import (
    BatchScheduler,
    BatchError,
    ScheduleJob,
    enumerate_workload_jobs,
    run_schedule_job,
    resolve_jobs,
)
from repro.api import (
    JobStatus,
    ScheduleRequest,
    ScheduleResponse,
    schedule_many,
    submit,
    wait,
)
from repro.config import RuntimeConfig

__version__ = "1.0.0"

__all__ = [
    # IR
    "OpClass",
    "Operation",
    "DependenceGraph",
    "DepKind",
    "Superblock",
    "SuperblockBuilder",
    "validate_superblock",
    "ValidationError",
    # machine
    "ClusteredMachine",
    "ClusterConfig",
    "ClusterSpec",
    "BusConfig",
    "InterconnectConfig",
    "RingConfig",
    "PointToPointConfig",
    "FuKind",
    "MachineFamily",
    "MachineSpec",
    "all_machine_specs",
    "machine_by_name",
    "machine_families",
    "machine_family",
    "paper_2c_8i_1lat",
    "paper_4c_16i_1lat",
    "paper_4c_16i_2lat",
    "paper_configurations",
    "example_2cluster",
    "example_1cluster_fig4",
    "unified",
    # bounds
    "awct",
    "min_awct",
    "min_exit_cycles",
    "compute_bounds",
    "ExitBoundEnumerator",
    # scheduling graph / virtual clusters / deduction
    "SchedulingGraph",
    "Combination",
    "VirtualClusterGraph",
    "Communication",
    "CommKind",
    "SchedulingState",
    "DeductionProcess",
    "DeductionResult",
    "WorkBudget",
    "Contradiction",
    # schedulers
    "Schedule",
    "ScheduleResult",
    "validate_schedule",
    "ScheduleError",
    "CarsScheduler",
    "ListScheduler",
    "VirtualClusterScheduler",
    "VcsConfig",
    # workloads
    "SuperblockGenerator",
    "GeneratorConfig",
    "BenchmarkProfile",
    "WorkloadFamily",
    "workload_families",
    "workload_family",
    "build_benchmark",
    "build_family",
    "build_suite",
    "train_variant",
    "all_profiles",
    "profile_by_name",
    "paper_figure1_block",
    "fir_kernel",
    "dot_product_kernel",
    "dct_butterfly_kernel",
    "string_search_kernel",
    # analysis
    "compare_block",
    "evaluate_benchmark",
    "geometric_mean",
    "EffortThresholds",
    "collect_effort",
    "format_speedup_series",
    "format_compile_time_table",
    "ScenarioCell",
    "run_scenario_matrix",
    # parallel runner
    "BatchScheduler",
    "BatchError",
    "ScheduleJob",
    "enumerate_workload_jobs",
    "run_schedule_job",
    "resolve_jobs",
    # api facade / runtime config
    "JobStatus",
    "ScheduleRequest",
    "ScheduleResponse",
    "schedule_many",
    "submit",
    "wait",
    "RuntimeConfig",
    "__version__",
]
