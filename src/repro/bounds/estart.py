"""Earliest/latest start (estart/lstart) computation over a dependence graph.

``estart`` is the longest dependence path from the superblock entry to the
operation (entry operations have estart 0).  ``lstart`` is computed backwards
from per-exit deadline cycles: the lstart of an exit is the cycle it has been
constrained to, and every other operation must issue early enough for all of
its successors to meet their lstarts.  Operations with no dependence path to
any constrained exit are bounded by the latest exit deadline: they must issue
no later than the cycle in which the superblock's final exit issues.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Mapping, Optional

from repro.ir.depgraph import DependenceGraph
from repro.ir.superblock import Superblock

#: Value used for "no constraint yet" on the late side.
INFINITY = math.inf


@dataclass
class Bounds:
    """Per-operation issue-cycle bounds."""

    estart: Dict[int, int]
    lstart: Dict[int, float]

    def slack(self, op_id: int) -> float:
        return self.lstart[op_id] - self.estart[op_id]

    def is_fixed(self, op_id: int) -> bool:
        return self.lstart[op_id] == self.estart[op_id]

    def is_contradictory(self) -> bool:
        return any(self.lstart[i] < self.estart[i] for i in self.estart)

    def copy(self) -> "Bounds":
        return Bounds(dict(self.estart), dict(self.lstart))


def compute_estart(graph: DependenceGraph) -> Dict[int, int]:
    """Dependence-only earliest start cycle of every operation."""
    estart: Dict[int, int] = {op_id: 0 for op_id in graph.op_ids}
    for node in graph.topological_order():
        for edge in graph.successors(node):
            candidate = estart[node] + edge.latency
            if candidate > estart[edge.dst]:
                estart[edge.dst] = candidate
    return estart


def compute_lstart(
    graph: DependenceGraph,
    exit_bounds: Mapping[int, int],
    default_bound: Optional[float] = None,
) -> Dict[int, float]:
    """Latest start of every operation given per-exit deadline cycles.

    Parameters
    ----------
    graph:
        The dependence graph.
    exit_bounds:
        Mapping from exit operation id to the latest cycle it may issue in.
    default_bound:
        Deadline applied to operations with no dependence path to any exit
        in *exit_bounds*.  Defaults to the maximum of the exit bounds
        (infinite when *exit_bounds* is empty).
    """
    if default_bound is None:
        default_bound = max(exit_bounds.values()) if exit_bounds else INFINITY

    lstart: Dict[int, float] = {op_id: INFINITY for op_id in graph.op_ids}
    for op_id, bound in exit_bounds.items():
        lstart[op_id] = min(lstart[op_id], bound)

    for node in reversed(graph.topological_order()):
        for edge in graph.successors(node):
            candidate = lstart[edge.dst] - edge.latency
            if candidate < lstart[node]:
                lstart[node] = candidate

    for op_id in graph.op_ids:
        if lstart[op_id] == INFINITY:
            lstart[op_id] = default_bound
    return lstart


def compute_bounds(
    block: Superblock,
    exit_bounds: Mapping[int, int],
    default_bound: Optional[float] = None,
) -> Bounds:
    """estart and lstart for every operation of *block*."""
    return Bounds(
        estart=compute_estart(block.graph),
        lstart=compute_lstart(block.graph, exit_bounds, default_bound),
    )


def slack(bounds: Bounds, op_id: int) -> float:
    """Scheduling freedom (lstart - estart) of *op_id*."""
    return bounds.slack(op_id)
