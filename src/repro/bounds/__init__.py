"""Scheduling bounds and the AWCT metric.

This subpackage computes the earliest/latest issue cycles (estart/lstart) of
every operation, the average weighted completion time (AWCT) of a superblock
schedule, the dependence- and resource-based lower bound minAWCT, and the
enumeration of target exit bounds in non-decreasing AWCT order that drives
the proposed scheduler's outer loop (Section 4.2 of the paper).
"""

from repro.bounds.estart import (
    compute_estart,
    compute_lstart,
    compute_bounds,
    slack,
    Bounds,
)
from repro.bounds.awct import (
    awct,
    awct_from_schedule_cycles,
    min_exit_cycles,
    min_awct,
    total_cycles,
)
from repro.bounds.enumeration import ExitBoundEnumerator, ExitBoundStep

__all__ = [
    "compute_estart",
    "compute_lstart",
    "compute_bounds",
    "slack",
    "Bounds",
    "awct",
    "awct_from_schedule_cycles",
    "min_exit_cycles",
    "min_awct",
    "total_cycles",
    "ExitBoundEnumerator",
    "ExitBoundStep",
]
