"""Enumeration of target exit bounds in non-decreasing AWCT order.

The proposed algorithm (Section 4.2) iterates over target AWCT values.  A
target is represented concretely by a vector of per-exit deadline cycles.
Starting from the minimum exit cycles, targets are enumerated best-first:
each step yields the unvisited deadline vector with the smallest AWCT, and
its successors (one per exit, obtained by relaxing that exit's deadline by a
cycle and propagating the dependence-imposed distances between exits) are
added to the frontier.  Because relaxing a deadline can only increase the
AWCT, the sequence of yielded targets has non-decreasing AWCT, which is the
paper's "progressively increase the AWCT" loop; the increment between two
consecutive targets is (a multiple of) an exit probability, exactly as the
paper describes.

Exits with very small probabilities are given a tiny ordering weight so that
relaxing them is still registered as progress; otherwise a zero-probability
exit could be relaxed forever without the binding exits ever moving.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Mapping, Optional, Set, Tuple

from repro.bounds.awct import awct, min_exit_cycles
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine

#: Minimum per-exit weight used for ordering the frontier.
_EPSILON_PROBABILITY = 1e-3


@dataclass(frozen=True)
class ExitBoundStep:
    """One target produced by the enumerator."""

    exit_cycles: Dict[int, int]
    awct: float
    step: int


class ExitBoundEnumerator:
    """Yield successive exit-deadline vectors with non-decreasing AWCT.

    Parameters
    ----------
    block:
        Superblock being scheduled.
    machine:
        Machine description used for the resource part of the initial bound.
    initial_cycles:
        Optional replacement for the computed minimum exit cycles (the VCS
        driver passes deduction-tightened bounds here, mirroring the paper's
        enhanced minAWCT computation).
    max_steps:
        Safety limit on the number of targets produced.
    """

    def __init__(
        self,
        block: Superblock,
        machine: Optional[ClusteredMachine] = None,
        initial_cycles: Optional[Mapping[int, int]] = None,
        max_steps: int = 10_000,
    ) -> None:
        self._block = block
        self._machine = machine
        self._max_steps = max_steps
        self._exit_ids = block.exit_ids
        self._weights = {
            e: max(block.exit_probability(e), _EPSILON_PROBABILITY)
            for e in self._exit_ids
        }
        self._distances = self._exit_distances()

        base = dict(initial_cycles) if initial_cycles is not None else min_exit_cycles(block, machine)
        start = self._propagate(base)
        self._frontier: List[Tuple[float, Tuple[int, ...]]] = []
        self._visited: Set[Tuple[int, ...]] = set()
        self._step = 0
        self._push(start)

    # ------------------------------------------------------------------ #
    # internal helpers
    # ------------------------------------------------------------------ #
    def _exit_distances(self) -> Dict[Tuple[int, int], int]:
        """Dependence-imposed minimum issue distance between exit pairs."""
        distances: Dict[Tuple[int, int], int] = {}
        for u in self._exit_ids:
            for v in self._exit_ids:
                if u == v:
                    continue
                d = self._block.graph.min_distance(u, v)
                if d is not None:
                    distances[(u, v)] = d
        return distances

    def _propagate(self, cycles: Mapping[int, int]) -> Dict[int, int]:
        """Push exit cycles up so that all inter-exit distances hold."""
        result = dict(cycles)
        changed = True
        while changed:
            changed = False
            for (u, v), distance in self._distances.items():
                if result[v] < result[u] + distance:
                    result[v] = result[u] + distance
                    changed = True
        return result

    def _key(self, cycles: Dict[int, int]) -> Tuple[int, ...]:
        return tuple(cycles[e] for e in self._exit_ids)

    def _ordering_weight(self, cycles: Dict[int, int]) -> float:
        """Frontier priority: AWCT with tiny weights for ~zero-probability exits."""
        return sum((cycles[e] + self._block.op(e).latency) * self._weights[e] for e in self._exit_ids)

    def _push(self, cycles: Dict[int, int]) -> None:
        key = self._key(cycles)
        if key in self._visited:
            return
        heapq.heappush(self._frontier, (self._ordering_weight(cycles), key))

    # ------------------------------------------------------------------ #
    # iteration protocol
    # ------------------------------------------------------------------ #
    def advance(self) -> ExitBoundStep:
        """Return the next unvisited target with the smallest AWCT."""
        while self._frontier:
            _, key = heapq.heappop(self._frontier)
            if key in self._visited:
                continue
            self._visited.add(key)
            cycles = dict(zip(self._exit_ids, key))
            # Frontier expansion: relax each exit by one cycle.
            for exit_id in self._exit_ids:
                relaxed = dict(cycles)
                relaxed[exit_id] += 1
                self._push(self._propagate(relaxed))
            step = ExitBoundStep(
                exit_cycles=cycles,
                awct=awct(self._block, cycles),
                step=self._step,
            )
            self._step += 1
            return step
        raise StopIteration("exit-bound enumeration exhausted")

    def __iter__(self) -> Iterator[ExitBoundStep]:
        while self._step < self._max_steps:
            try:
                yield self.advance()
            except StopIteration:
                return

    def targets(self, limit: int) -> List[ExitBoundStep]:
        """Convenience: the first *limit* targets as a list."""
        out: List[ExitBoundStep] = []
        for target in self:
            out.append(target)
            if len(out) >= limit:
                break
        return out
