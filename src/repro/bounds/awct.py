"""The AWCT metric (Section 2.2 of the paper) and its lower bound.

AWCT (average weighted completion time) of a superblock schedule is

    AWCT = sum over exits u of (Cyc_u + lambda_u) * P_u

where ``Cyc_u`` is the cycle the exit is issued in, ``lambda_u`` its latency
and ``P_u`` the profiled probability of leaving the superblock through it.
The contribution of a block to the total execution time of an application is
``TC(S) = AWCT(S) * T(S)`` with ``T(S)`` the block's execution count.
"""

from __future__ import annotations

from typing import Dict, Iterable, Mapping, Optional

from repro.bounds.estart import compute_estart
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine


def awct(block: Superblock, exit_cycles: Mapping[int, int]) -> float:
    """AWCT of *block* when its exits issue in the given cycles."""
    total = 0.0
    for exit_info in block.exits:
        if exit_info.op_id not in exit_cycles:
            raise KeyError(f"exit {exit_info.op_id} has no cycle assignment")
        op = block.op(exit_info.op_id)
        total += (exit_cycles[exit_info.op_id] + op.latency) * exit_info.probability
    return total


def awct_from_schedule_cycles(block: Superblock, cycles: Mapping[int, int]) -> float:
    """AWCT extracted from a full cycle assignment (exits are looked up)."""
    return awct(block, {e.op_id: cycles[e.op_id] for e in block.exits})


def min_exit_cycles(
    block: Superblock,
    machine: Optional[ClusteredMachine] = None,
) -> Dict[int, int]:
    """Per-exit lower bound on the issue cycle.

    The dependence part is the estart of each exit.  When *machine* is given
    the bound additionally accounts for machine-wide resource capacity: all
    operations that must issue no later than an exit (its dependence
    ancestors plus the exit itself) need at least ``ceil(n / capacity)``
    cycles, so the exit cannot issue before that many cycles have passed.
    This mirrors the paper's "critical path and resource constraints"
    definition of minAWCT; it ignores inter-cluster communication penalties
    by design (the whole point of the outer AWCT loop is to discover when
    they make a bound unreachable).
    """
    estart = compute_estart(block.graph)
    result: Dict[int, int] = {}
    for exit_info in block.exits:
        bound = estart[exit_info.op_id]
        if machine is not None:
            ancestors = [
                op
                for op in block.operations
                if op.op_id == exit_info.op_id
                or block.graph.must_precede(op.op_id, exit_info.op_id)
            ]
            resource_cycles = machine.resource_length_lower_bound(ancestors)
            # The exit issues in the last of those cycles at the earliest
            # (cycles are numbered from 0).
            bound = max(bound, resource_cycles - 1)
        result[exit_info.op_id] = bound
    return result


def min_awct(block: Superblock, machine: Optional[ClusteredMachine] = None) -> float:
    """Lower bound on the AWCT of any schedule of *block* (minAWCT)."""
    return awct(block, min_exit_cycles(block, machine))


def total_cycles(
    blocks_and_awct: Iterable[tuple],
) -> float:
    """Total cycle contribution of a set of blocks.

    *blocks_and_awct* yields ``(superblock, awct_value)`` pairs; the result
    is ``sum(awct_value * block.execution_count)``.
    """
    return sum(value * block.execution_count for block, value in blocks_and_awct)
