"""The clustered VLIW machine description used by all schedulers."""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Dict, List, Sequence, Tuple

from repro.ir.operation import OpClass, Operation
from repro.machine.cluster import ClusterConfig
from repro.machine.interconnect import InterconnectConfig
from repro.machine.resources import fu_kind_for


@dataclass(frozen=True)
class CycleCapacityTable:
    """Per-cycle resource limits of a frozen machine, bundled for the
    candidate-pruning hot path: machine-wide per-class start capacity,
    total issue width for non-copies, and the interconnect's channel count
    and per-transfer occupancy."""

    class_capacity: Dict[OpClass, int]
    issue_width: int
    channels: int
    occupancy: int


@dataclass(frozen=True)
class ClusteredMachine:
    """A statically scheduled clustered VLIW machine.

    Parameters
    ----------
    name:
        Short label used in reports (e.g. ``"2clust 1b 1lat"``).
    clusters:
        One :class:`ClusterConfig` per physical cluster.
    bus:
        The inter-cluster interconnect (any
        :class:`~repro.machine.interconnect.InterconnectConfig` topology;
        the field keeps its historical name from the bus-only model).
        Irrelevant for single-cluster machines.
    copies_use_issue:
        When True an inter-cluster copy also consumes an issue slot in the
        source cluster; by default copies only occupy a channel.
    """

    name: str
    clusters: Tuple[ClusterConfig, ...]
    bus: InterconnectConfig = InterconnectConfig()
    copies_use_issue: bool = False

    def __post_init__(self) -> None:
        if not self.clusters:
            raise ValueError("a machine needs at least one cluster")
        object.__setattr__(self, "clusters", tuple(self.clusters))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def is_clustered(self) -> bool:
        return self.n_clusters > 1

    def cluster(self, index: int) -> ClusterConfig:
        return self.clusters[index]

    @property
    def cluster_ids(self) -> List[int]:
        return list(range(self.n_clusters))

    @cached_property
    def total_issue_width(self) -> int:
        return sum(c.issue_width for c in self.clusters)

    @cached_property
    def max_cluster_issue_width(self) -> int:
        """The widest single cluster's issue width."""
        return max(c.issue_width for c in self.clusters)

    @property
    def is_homogeneous(self) -> bool:
        return all(c == self.clusters[0] for c in self.clusters)

    # ------------------------------------------------------------------ #
    # the interconnect, reduced to the abstract contention model
    # ------------------------------------------------------------------ #
    @property
    def interconnect(self) -> InterconnectConfig:
        """The inter-cluster interconnect (alias of the ``bus`` field)."""
        return self.bus

    @cached_property
    def copy_latency(self) -> int:
        """Cycles every inter-cluster copy takes on this machine."""
        return self.bus.effective_latency(self.n_clusters)

    @cached_property
    def copy_occupancy(self) -> int:
        """Cycles one copy keeps its interconnect channel busy."""
        return self.bus.effective_occupancy(self.n_clusters)

    @cached_property
    def channel_count(self) -> int:
        """Copies that may occupy the interconnect simultaneously."""
        return self.bus.channel_count(self.n_clusters)

    # ------------------------------------------------------------------ #
    # per-operation capacity queries
    # ------------------------------------------------------------------ #
    def fu_count(self, cluster: int, op_class: OpClass) -> int:
        """Units in *cluster* able to execute operations of *op_class*."""
        kind = fu_kind_for(op_class)
        if kind is None:
            return 0
        return self.clusters[cluster].fu_count(kind)

    def total_fu_count(self, op_class: OpClass) -> int:
        """Units able to execute *op_class* summed over all clusters."""
        kind = fu_kind_for(op_class)
        if kind is None:
            return self.channel_count
        return sum(c.fu_count(kind) for c in self.clusters)

    @cached_property
    def _per_cycle_capacity(self) -> Dict[OpClass, int]:
        """Machine-wide per-class capacity table (the machine is frozen, so
        the derivation runs once instead of on every deduction-rule firing)."""
        table: Dict[OpClass, int] = {}
        for op_class in OpClass:
            if op_class is OpClass.COPY:
                table[op_class] = self.channel_count
            else:
                table[op_class] = min(self.total_fu_count(op_class), self.total_issue_width)
        return table

    @cached_property
    def _cluster_capacity(self) -> Dict[Tuple[int, OpClass], int]:
        """Per-(cluster, class) capacity table, derived once."""
        table: Dict[Tuple[int, OpClass], int] = {}
        for cluster in range(self.n_clusters):
            for op_class in OpClass:
                if op_class is OpClass.COPY:
                    capacity = self.channel_count
                else:
                    capacity = min(
                        self.fu_count(cluster, op_class), self.clusters[cluster].issue_width
                    )
                table[(cluster, op_class)] = capacity
        return table

    @cached_property
    def _max_cluster_capacity(self) -> Dict[OpClass, int]:
        """Per-class maximum of :meth:`cluster_capacity` over all clusters."""
        return {
            op_class: max(
                self._cluster_capacity[(cluster, op_class)]
                for cluster in range(self.n_clusters)
            )
            for op_class in OpClass
        }

    @cached_property
    def cycle_capacity_table(self) -> "CycleCapacityTable":
        """The frozen per-cycle resource envelope in one bundle.

        Candidate pruning tests every probed cycle against these limits;
        deriving them once per machine keeps the per-cycle check to dict
        hits and integer compares (see
        :func:`repro.scheduler.candidates.prune_cycle_candidates`)."""
        return CycleCapacityTable(
            class_capacity=dict(self._per_cycle_capacity),
            issue_width=self.total_issue_width,
            channels=self.channel_count,
            occupancy=self.copy_occupancy,
        )

    def per_cycle_capacity(self, op_class: OpClass) -> int:
        """Operations of *op_class* the whole machine can start per cycle.

        Bounded both by the functional units of the right kind and by the
        total issue width (for copies, by the interconnect channels)."""
        return self._per_cycle_capacity[op_class]

    def cluster_capacity(self, cluster: int, op_class: OpClass) -> int:
        """Operations of *op_class* that cluster *cluster* can start per cycle."""
        return self._cluster_capacity[(cluster, op_class)]

    def max_cluster_capacity(self, op_class: OpClass) -> int:
        """The best single cluster's capacity for *op_class* (the bound the
        per-VC deduction rules compare against)."""
        return self._max_cluster_capacity[op_class]

    def can_execute(self, cluster: int, op: Operation) -> bool:
        """Whether *cluster* has a functional unit for *op*."""
        if op.is_copy:
            return self.channel_count > 0
        return self.fu_count(cluster, op.op_class) > 0

    # ------------------------------------------------------------------ #
    # lower bounds used by minAWCT
    # ------------------------------------------------------------------ #
    def resource_length_lower_bound(self, ops: Sequence[Operation]) -> int:
        """Minimum number of issue cycles needed to start all *ops*,
        considering only machine-wide capacities (ignores dependences)."""
        if not ops:
            return 0
        by_class: Dict[OpClass, int] = {}
        for op in ops:
            by_class[op.op_class] = by_class.get(op.op_class, 0) + 1
        bound = 1
        for op_class, count in by_class.items():
            capacity = self.per_cycle_capacity(op_class)
            if capacity == 0:
                raise ValueError(f"machine {self.name} cannot execute {op_class} operations")
            bound = max(bound, -(-count // capacity))
        total_capacity = self.total_issue_width
        non_copy = sum(1 for op in ops if not op.is_copy)
        bound = max(bound, -(-non_copy // total_capacity))
        return bound

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"ClusteredMachine({self.name}: {self.n_clusters} clusters, "
            f"issue={self.total_issue_width}, {self.bus})"
        )
