"""The machine configurations used in the paper's evaluation and examples.

Section 6.1 of the paper studies three clustered VLIW designs, all built from
clusters with one functional unit of each type (int, fp, mem, branch) and a
single inter-cluster bus:

* ``2clust 1b 1lat``  — 2 clusters, 8-issue, 1-cycle bus;
* ``4clust 1b 1lat``  — 4 clusters, 16-issue, 1-cycle bus;
* ``4clust 1b 2lat``  — 4 clusters, 16-issue, 2-cycle non-pipelined bus.

Section 5's worked example uses a reduced 2-cluster machine (one 2-cycle
"I" unit and one 3-cycle "B" unit per cluster), and Figure 4 a single-cluster
machine issuing two non-branch and one branch operation per cycle.

Since the scenario matrix these are all *named specs* — entries of the
``paper`` and ``examples`` machine families (:mod:`repro.machine.families`)
— and the functions here materialise them, byte-identical to the historical
hard-coded constructions.
"""

from __future__ import annotations

from typing import List

from repro.machine.families import machine_family
from repro.machine.machine import ClusteredMachine
from repro.machine.spec import MachineSpec


def _from_family(family: str, name: str) -> ClusteredMachine:
    return machine_family(family).spec(name).to_machine()


def paper_2c_8i_1lat() -> ClusteredMachine:
    """The paper's first configuration: 2 clusters, 8-issue, 1-cycle bus."""
    return _from_family("paper", "2clust 1b 1lat")


def paper_4c_16i_1lat() -> ClusteredMachine:
    """The paper's second configuration: 4 clusters, 16-issue, 1-cycle bus."""
    return _from_family("paper", "4clust 1b 1lat")


def paper_4c_16i_2lat() -> ClusteredMachine:
    """The paper's third configuration: 4 clusters, 16-issue, 2-cycle bus.

    The paper notes the bus in this configuration is not pipelined, which is
    what makes communication scheduling hard and the proposed technique's
    gains largest."""
    return _from_family("paper", "4clust 1b 2lat")


def paper_configurations() -> List[ClusteredMachine]:
    """The three configurations of the evaluation, in the paper's order."""
    return machine_family("paper").machines()


def example_2cluster() -> ClusteredMachine:
    """Section 5's example machine: 2 clusters, each issuing one INT and one
    BRANCH per cycle, connected by a single 1-cycle bus."""
    return _from_family("examples", "example 2-cluster")


def example_1cluster_fig4() -> ClusteredMachine:
    """Figure 4's example machine: a single cluster issuing 2 non-branch and
    1 branch operation per cycle."""
    return _from_family("examples", "example 1-cluster")


def unified(issue_width: int = 8, fus_per_kind: int = 2) -> ClusteredMachine:
    """A non-clustered reference machine with the given total issue width."""
    return MachineSpec.uniform(
        f"unified {issue_width}-issue",
        n_clusters=1,
        fus_per_kind=fus_per_kind,
        issue_width=issue_width,
    ).to_machine()
