"""The machine configurations used in the paper's evaluation and examples.

Section 6.1 of the paper studies three clustered VLIW designs, all built from
clusters with one functional unit of each type (int, fp, mem, branch) and a
single inter-cluster bus:

* ``2clust 1b 1lat``  — 2 clusters, 8-issue, 1-cycle bus;
* ``4clust 1b 1lat``  — 4 clusters, 16-issue, 1-cycle bus;
* ``4clust 1b 2lat``  — 4 clusters, 16-issue, 2-cycle non-pipelined bus.

Section 5's worked example uses a reduced 2-cluster machine (one 2-cycle
"I" unit and one 3-cycle "B" unit per cluster), and Figure 4 a single-cluster
machine issuing two non-branch and one branch operation per cycle.
"""

from __future__ import annotations

from typing import List

from repro.machine.cluster import ClusterConfig
from repro.machine.interconnect import BusConfig
from repro.machine.machine import ClusteredMachine
from repro.machine.resources import FuKind


def _paper_cluster() -> ClusterConfig:
    """One cluster as described in Section 6.1: one FU of each type."""
    return ClusterConfig.uniform(count_per_kind=1)


def paper_2c_8i_1lat() -> ClusteredMachine:
    """The paper's first configuration: 2 clusters, 8-issue, 1-cycle bus."""
    return ClusteredMachine(
        name="2clust 1b 1lat",
        clusters=(_paper_cluster(), _paper_cluster()),
        bus=BusConfig(count=1, latency=1, pipelined=True),
    )


def paper_4c_16i_1lat() -> ClusteredMachine:
    """The paper's second configuration: 4 clusters, 16-issue, 1-cycle bus."""
    return ClusteredMachine(
        name="4clust 1b 1lat",
        clusters=tuple(_paper_cluster() for _ in range(4)),
        bus=BusConfig(count=1, latency=1, pipelined=True),
    )


def paper_4c_16i_2lat() -> ClusteredMachine:
    """The paper's third configuration: 4 clusters, 16-issue, 2-cycle bus.

    The paper notes the bus in this configuration is not pipelined, which is
    what makes communication scheduling hard and the proposed technique's
    gains largest."""
    return ClusteredMachine(
        name="4clust 1b 2lat",
        clusters=tuple(_paper_cluster() for _ in range(4)),
        bus=BusConfig(count=1, latency=2, pipelined=False),
    )


def paper_configurations() -> List[ClusteredMachine]:
    """The three configurations of the evaluation, in the paper's order."""
    return [paper_2c_8i_1lat(), paper_4c_16i_1lat(), paper_4c_16i_2lat()]


def example_2cluster() -> ClusteredMachine:
    """Section 5's example machine: 2 clusters, each issuing one INT and one
    BRANCH per cycle, connected by a single 1-cycle bus."""
    cluster = ClusterConfig(fu_counts={FuKind.INT: 1, FuKind.BRANCH: 1}, issue_width=2)
    return ClusteredMachine(
        name="example 2-cluster",
        clusters=(cluster, cluster),
        bus=BusConfig(count=1, latency=1, pipelined=True),
    )


def example_1cluster_fig4() -> ClusteredMachine:
    """Figure 4's example machine: a single cluster issuing 2 non-branch and
    1 branch operation per cycle."""
    cluster = ClusterConfig(fu_counts={FuKind.INT: 2, FuKind.BRANCH: 1}, issue_width=3)
    return ClusteredMachine(name="example 1-cluster", clusters=(cluster,))


def unified(issue_width: int = 8, fus_per_kind: int = 2) -> ClusteredMachine:
    """A non-clustered reference machine with the given total issue width."""
    cluster = ClusterConfig.uniform(count_per_kind=fus_per_kind, issue_width=issue_width)
    return ClusteredMachine(name=f"unified {issue_width}-issue", clusters=(cluster,))
