"""Clustered VLIW machine model.

The model follows Section 2.1 of the paper: a statically scheduled machine
partitioned into homogeneous clusters, each with its own register file and
functional units; clusters exchange register values through explicit copy
operations over a small number of shared buses; the memory hierarchy is
centralised.
"""

from repro.machine.resources import FuKind, fu_kind_for
from repro.machine.cluster import ClusterConfig
from repro.machine.interconnect import BusConfig
from repro.machine.machine import ClusteredMachine
from repro.machine.presets import (
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
    paper_configurations,
    example_2cluster,
    example_1cluster_fig4,
    unified,
)

__all__ = [
    "FuKind",
    "fu_kind_for",
    "ClusterConfig",
    "BusConfig",
    "ClusteredMachine",
    "paper_2c_8i_1lat",
    "paper_4c_16i_1lat",
    "paper_4c_16i_2lat",
    "paper_configurations",
    "example_2cluster",
    "example_1cluster_fig4",
    "unified",
]
