"""Clustered VLIW machine model.

The model follows Section 2.1 of the paper: a statically scheduled machine
partitioned into clusters, each with its own register file and functional
units; clusters exchange register values through explicit copy operations
over an inter-cluster interconnect (the paper's shared buses, plus ring and
point-to-point generalisations); the memory hierarchy is centralised.

Machines come from three layers: :class:`ClusteredMachine` is what the
schedulers consume, :class:`MachineSpec` is the declarative, serialisable
description, and :mod:`repro.machine.families` enumerates named spec
families (the scenario matrix's machine axis).
"""

from repro.machine.resources import FuKind, fu_kind_for
from repro.machine.cluster import ClusterConfig
from repro.machine.interconnect import (
    TOPOLOGIES,
    BusConfig,
    InterconnectConfig,
    PointToPointConfig,
    RingConfig,
)
from repro.machine.machine import ClusteredMachine
from repro.machine.spec import ClusterSpec, MachineSpec
from repro.machine.families import (
    MachineFamily,
    all_machine_specs,
    machine_by_name,
    machine_families,
    machine_family,
)
from repro.machine.presets import (
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
    paper_configurations,
    example_2cluster,
    example_1cluster_fig4,
    unified,
)

__all__ = [
    "FuKind",
    "fu_kind_for",
    "ClusterConfig",
    "TOPOLOGIES",
    "BusConfig",
    "InterconnectConfig",
    "RingConfig",
    "PointToPointConfig",
    "ClusteredMachine",
    "ClusterSpec",
    "MachineSpec",
    "MachineFamily",
    "machine_families",
    "machine_family",
    "all_machine_specs",
    "machine_by_name",
    "paper_2c_8i_1lat",
    "paper_4c_16i_1lat",
    "paper_4c_16i_2lat",
    "paper_configurations",
    "example_2cluster",
    "example_1cluster_fig4",
    "unified",
]
