"""Per-cluster resource description."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.machine.resources import FuKind


@dataclass(frozen=True)
class ClusterConfig:
    """Resources of one cluster.

    Parameters
    ----------
    fu_counts:
        Number of functional units of each kind.  Kinds missing from the
        mapping are absent from the cluster (their count is zero).
    issue_width:
        Maximum number of operations the cluster can issue per cycle.  When
        omitted it defaults to the total number of functional units.
    n_registers:
        Size of the cluster's register file, or None for an unconstrained
        file (the paper's setting).  When set, the correctness checker
        bounds the number of simultaneously live values in the cluster.
    """

    fu_counts: Mapping[FuKind, int]
    issue_width: int = 0
    n_registers: Optional[int] = None

    def __post_init__(self) -> None:
        counts = dict(self.fu_counts)
        for kind, count in counts.items():
            if count < 0:
                raise ValueError(f"negative functional unit count for {kind}")
        object.__setattr__(self, "fu_counts", counts)
        if self.issue_width <= 0:
            object.__setattr__(self, "issue_width", sum(counts.values()))
        if self.issue_width <= 0:
            raise ValueError("cluster has no issue capacity")
        if self.n_registers is not None and self.n_registers < 1:
            raise ValueError("a register-file constraint needs at least one register")

    def fu_count(self, kind: FuKind) -> int:
        """Number of functional units of *kind* in this cluster."""
        return self.fu_counts.get(kind, 0)

    @property
    def total_fus(self) -> int:
        return sum(self.fu_counts.values())

    def supports(self, kind: FuKind) -> bool:
        return self.fu_count(kind) > 0

    @staticmethod
    def uniform(
        count_per_kind: int = 1,
        issue_width: int = 0,
        n_registers: Optional[int] = None,
    ) -> "ClusterConfig":
        """A cluster with *count_per_kind* units of every kind."""
        return ClusterConfig(
            fu_counts={kind: count_per_kind for kind in FuKind},
            issue_width=issue_width,
            n_registers=n_registers,
        )

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        parts = ", ".join(f"{k.value}={v}" for k, v in sorted(self.fu_counts.items(), key=lambda kv: kv[0].value))
        return f"Cluster(issue={self.issue_width}, {parts})"
