"""Inter-cluster interconnect models.

The paper's evaluation uses a small number of shared register buses; the
scenario matrix generalises that to a family of interconnect *topologies*
sharing one abstract contention model.  Every topology is reduced to three
scalars for a given cluster count — an effective copy latency, a per-transfer
channel occupancy and a number of concurrently usable channels — so every
scheduler, deduction rule and the correctness checker consume the same
model through :class:`repro.machine.machine.ClusteredMachine` and stay
topology-agnostic:

* ``bus`` — ``count`` shared broadcast buses; a transfer takes ``latency``
  cycles and (when non-pipelined) holds its bus for the whole transfer.
  This is exactly the paper's interconnect.
* ``ring`` — a bidirectional ring with ``count`` channels per link and a
  per-hop latency of ``latency``.  The model is conservative and uniform:
  every transfer is charged the worst-case hop distance (``n_clusters //
  2``), and the channel pool is the single-link capacity, so any schedule
  valid under the model is valid for every placement of the transfer.
* ``p2p`` — a non-blocking point-to-point fabric (full crossbar) with
  direct single-hop links: latency is ``latency`` regardless of distance
  and up to ``count * n_clusters`` transfers may be in flight machine-wide
  (``count`` slots contributed per cluster).  Unlike the ring model this
  reduction is optimistic, not conservative: per-cluster port contention
  is *not* modelled — the cap is a single machine-wide pool, so a
  schedule may concentrate more simultaneous copies in one cluster than
  a ``count``-port implementation would allow.
"""

from __future__ import annotations

from dataclasses import dataclass

#: The topologies the scenario matrix enumerates.
TOPOLOGIES = ("bus", "ring", "p2p")


@dataclass(frozen=True)
class InterconnectConfig:
    """One inter-cluster interconnect.

    Parameters
    ----------
    topology:
        One of :data:`TOPOLOGIES`.
    count:
        Channel multiplicity: number of buses (``bus``), channels per link
        (``ring``) or machine-wide transfer slots per cluster (``p2p``;
        pooled, not per-port — see the module docstring).
    latency:
        Cycles per hop between issuing a copy and the value being available
        in the destination register file (single-hop for ``bus``/``p2p``,
        per-link for ``ring``).
    pipelined:
        Whether a new transfer may start on a channel every cycle.  The
        paper's 4-cluster / 2-cycle configuration explicitly uses a
        non-pipelined bus ("the bus is not a pipelined resource"), so a
        2-cycle copy holds the bus for both cycles.
    """

    topology: str = "bus"
    count: int = 1
    latency: int = 1
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown interconnect topology {self.topology!r}; "
                f"known: {', '.join(TOPOLOGIES)}"
            )
        if self.count < 0:
            raise ValueError("channel count must be non-negative")
        if self.latency < 1:
            raise ValueError("interconnect latency must be at least one cycle")

    # ------------------------------------------------------------------ #
    # the abstract contention model
    # ------------------------------------------------------------------ #
    def hop_count(self, n_clusters: int) -> int:
        """Worst-case number of links a transfer traverses."""
        if self.topology == "ring":
            return max(1, n_clusters // 2)
        return 1

    def effective_latency(self, n_clusters: int) -> int:
        """Cycles every transfer is modelled to take on this machine."""
        return self.latency * self.hop_count(n_clusters)

    def effective_occupancy(self, n_clusters: int) -> int:
        """Cycles one transfer keeps its channel busy on this machine."""
        return 1 if self.pipelined else self.effective_latency(n_clusters)

    def channel_count(self, n_clusters: int) -> int:
        """Transfers that may occupy the interconnect simultaneously."""
        if self.topology == "p2p":
            return self.count * n_clusters
        return self.count

    @property
    def occupancy(self) -> int:
        """Single-hop occupancy (cluster-count independent)."""
        return 1 if self.pipelined else self.latency

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pipe = "pipelined" if self.pipelined else "non-pipelined"
        return (
            f"Interconnect({self.topology}, count={self.count}, "
            f"latency={self.latency}, {pipe})"
        )


def BusConfig(count: int = 1, latency: int = 1, pipelined: bool = True) -> InterconnectConfig:
    """A set of identical shared buses (the paper's interconnect)."""
    return InterconnectConfig("bus", count, latency, pipelined)


def RingConfig(count: int = 1, latency: int = 1, pipelined: bool = True) -> InterconnectConfig:
    """A bidirectional ring with *count* channels per link."""
    return InterconnectConfig("ring", count, latency, pipelined)


def PointToPointConfig(
    count: int = 1, latency: int = 1, pipelined: bool = True
) -> InterconnectConfig:
    """A non-blocking point-to-point fabric (pooled machine-wide capacity
    of ``count * n_clusters``; per-cluster ports are not modelled)."""
    return InterconnectConfig("p2p", count, latency, pipelined)
