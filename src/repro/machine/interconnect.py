"""Inter-cluster interconnect (register buses)."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class BusConfig:
    """A set of identical buses used by inter-cluster copy operations.

    Parameters
    ----------
    count:
        Number of buses; at most this many copies can *start* (pipelined) or
        be *in flight* (non-pipelined) per cycle.
    latency:
        Cycles between issuing the copy and the value being available in the
        destination register file.
    pipelined:
        Whether a new transfer may start on a bus every cycle.  The paper's
        4-cluster / 2-cycle configuration explicitly uses a non-pipelined
        bus ("the bus is not a pipelined resource"), so a 2-cycle copy holds
        the bus for both cycles.
    """

    count: int = 1
    latency: int = 1
    pipelined: bool = True

    def __post_init__(self) -> None:
        if self.count < 0:
            raise ValueError("bus count must be non-negative")
        if self.latency < 1:
            raise ValueError("bus latency must be at least one cycle")

    @property
    def occupancy(self) -> int:
        """Number of cycles one transfer keeps a bus busy."""
        return 1 if self.pipelined else self.latency

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        pipe = "pipelined" if self.pipelined else "non-pipelined"
        return f"Bus(count={self.count}, latency={self.latency}, {pipe})"
