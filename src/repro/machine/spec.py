"""Declarative machine descriptions: the scenario matrix's machine axis.

A :class:`MachineSpec` is a picklable, JSON-round-trippable description of
one clustered VLIW configuration — cluster count, per-cluster functional
unit mix and issue width, interconnect topology/latency/bandwidth and
register-file constraints.  Specs are pure data: :meth:`MachineSpec.
to_machine` builds the :class:`~repro.machine.machine.ClusteredMachine`
the schedulers consume, and :meth:`to_dict`/:meth:`from_dict` round-trip
through plain dictionaries so scenario definitions can live in reports,
job payloads and config files instead of code.

The hard-coded presets of :mod:`repro.machine.presets` are re-expressed on
top of this module (see :mod:`repro.machine.families`) and build
byte-identical machines.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Mapping, Optional, Tuple

from repro.machine.cluster import ClusterConfig
from repro.machine.interconnect import TOPOLOGIES, InterconnectConfig
from repro.machine.machine import ClusteredMachine
from repro.machine.resources import FuKind


@dataclass(frozen=True)
class ClusterSpec:
    """Declarative description of one cluster.

    ``fu_counts`` is kept as a sorted tuple of ``(kind-name, count)`` pairs
    so the spec stays hashable and its dict form is stable.
    """

    fu_counts: Tuple[Tuple[str, int], ...] = (
        ("branch", 1),
        ("fp", 1),
        ("int", 1),
        ("mem", 1),
    )
    issue_width: int = 0
    n_registers: Optional[int] = None

    def __post_init__(self) -> None:
        known = {kind.value for kind in FuKind}
        entries = tuple(self.fu_counts)
        counts = tuple(sorted(dict(entries).items()))
        if len(counts) != len(entries):
            kinds = [kind for kind, _ in entries]
            dupes = sorted({kind for kind in kinds if kinds.count(kind) > 1})
            raise ValueError(f"duplicate functional-unit kind(s) {dupes} in cluster spec")
        for kind, count in counts:
            if kind not in known:
                raise ValueError(f"unknown functional-unit kind {kind!r}; known: {sorted(known)}")
            if count < 0:
                raise ValueError(f"negative functional-unit count for {kind!r}")
        object.__setattr__(self, "fu_counts", counts)
        if self.n_registers is not None and self.n_registers < 1:
            raise ValueError("a register-file constraint needs at least one register")

    @staticmethod
    def uniform(
        count_per_kind: int = 1,
        issue_width: int = 0,
        n_registers: Optional[int] = None,
    ) -> "ClusterSpec":
        return ClusterSpec(
            fu_counts=tuple(sorted((kind.value, count_per_kind) for kind in FuKind)),
            issue_width=issue_width,
            n_registers=n_registers,
        )

    @staticmethod
    def of(
        counts: Mapping[str, int],
        issue_width: int = 0,
        n_registers: Optional[int] = None,
    ) -> "ClusterSpec":
        return ClusterSpec(
            fu_counts=tuple(sorted(counts.items())),
            issue_width=issue_width,
            n_registers=n_registers,
        )

    def to_config(self) -> ClusterConfig:
        return ClusterConfig(
            fu_counts={FuKind(kind): count for kind, count in self.fu_counts if count > 0},
            issue_width=self.issue_width,
            n_registers=self.n_registers,
        )

    def to_dict(self) -> dict:
        out: dict = {"fu_counts": {kind: count for kind, count in self.fu_counts}}
        if self.issue_width:
            out["issue_width"] = self.issue_width
        if self.n_registers is not None:
            out["n_registers"] = self.n_registers
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "ClusterSpec":
        return ClusterSpec(
            fu_counts=tuple(sorted(dict(data["fu_counts"]).items())),
            issue_width=int(data.get("issue_width", 0)),
            n_registers=data.get("n_registers"),
        )


@dataclass(frozen=True)
class MachineSpec:
    """Declarative description of one clustered VLIW machine."""

    name: str
    clusters: Tuple[ClusterSpec, ...] = (ClusterSpec(),)
    topology: str = "bus"
    channels: int = 1
    link_latency: int = 1
    pipelined: bool = True
    copies_use_issue: bool = False
    #: Free-form provenance notes ("paper Section 6.1", "ring sweep", …);
    #: excluded from equality so annotated and bare specs build the same
    #: machine and compare equal.
    notes: str = field(default="", compare=False)

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("a machine spec needs a name")
        if not self.clusters:
            raise ValueError("a machine spec needs at least one cluster")
        if self.topology not in TOPOLOGIES:
            raise ValueError(
                f"unknown interconnect topology {self.topology!r}; "
                f"known: {', '.join(TOPOLOGIES)}"
            )
        object.__setattr__(self, "clusters", tuple(self.clusters))

    # ------------------------------------------------------------------ #
    # structure
    # ------------------------------------------------------------------ #
    @property
    def n_clusters(self) -> int:
        return len(self.clusters)

    @property
    def interconnect(self) -> InterconnectConfig:
        return InterconnectConfig(
            topology=self.topology,
            count=self.channels,
            latency=self.link_latency,
            pipelined=self.pipelined,
        )

    def renamed(self, name: str) -> "MachineSpec":
        return replace(self, name=name)

    # ------------------------------------------------------------------ #
    # construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def uniform(
        name: str,
        n_clusters: int,
        fus_per_kind: int = 1,
        issue_width: int = 0,
        n_registers: Optional[int] = None,
        topology: str = "bus",
        channels: int = 1,
        link_latency: int = 1,
        pipelined: bool = True,
        notes: str = "",
    ) -> "MachineSpec":
        """A machine of *n_clusters* identical clusters."""
        cluster = ClusterSpec.uniform(
            count_per_kind=fus_per_kind,
            issue_width=issue_width,
            n_registers=n_registers,
        )
        return MachineSpec(
            name=name,
            clusters=tuple(cluster for _ in range(n_clusters)),
            topology=topology,
            channels=channels,
            link_latency=link_latency,
            pipelined=pipelined,
            notes=notes,
        )

    # ------------------------------------------------------------------ #
    # materialisation and round-trips
    # ------------------------------------------------------------------ #
    def to_machine(self) -> ClusteredMachine:
        """Build the machine the schedulers consume."""
        return ClusteredMachine(
            name=self.name,
            clusters=tuple(c.to_config() for c in self.clusters),
            bus=self.interconnect,
            copies_use_issue=self.copies_use_issue,
        )

    def to_dict(self) -> dict:
        out = {
            "name": self.name,
            "clusters": [c.to_dict() for c in self.clusters],
            "topology": self.topology,
            "channels": self.channels,
            "link_latency": self.link_latency,
            "pipelined": self.pipelined,
        }
        if self.copies_use_issue:
            out["copies_use_issue"] = True
        if self.notes:
            out["notes"] = self.notes
        return out

    @staticmethod
    def from_dict(data: Mapping) -> "MachineSpec":
        return MachineSpec(
            name=data["name"],
            clusters=tuple(ClusterSpec.from_dict(c) for c in data["clusters"]),
            topology=data.get("topology", "bus"),
            channels=int(data.get("channels", 1)),
            link_latency=int(data.get("link_latency", 1)),
            pipelined=bool(data.get("pipelined", True)),
            copies_use_issue=bool(data.get("copies_use_issue", False)),
            notes=data.get("notes", ""),
        )

    @staticmethod
    def from_machine(machine: ClusteredMachine) -> "MachineSpec":
        """The spec describing an existing machine (inverse of
        :meth:`to_machine` up to default issue widths)."""
        clusters = tuple(
            ClusterSpec(
                fu_counts=tuple(
                    sorted((kind.value, count) for kind, count in c.fu_counts.items())
                ),
                issue_width=c.issue_width,
                n_registers=c.n_registers,
            )
            for c in machine.clusters
        )
        return MachineSpec(
            name=machine.name,
            clusters=clusters,
            topology=machine.bus.topology,
            channels=machine.bus.count,
            link_latency=machine.bus.latency,
            pipelined=machine.bus.pipelined,
            copies_use_issue=machine.copies_use_issue,
        )

    def describe(self) -> str:
        """One-line human summary used by ``run_suite.py --list-machines``."""
        machine = self.to_machine()
        pipe = "" if self.pipelined else ", non-pipelined"
        regs = ""
        limits = {c.n_registers for c in self.clusters if c.n_registers is not None}
        if limits:
            regs = f", {min(limits)} regs"
        return (
            f"{self.n_clusters} clusters, issue {machine.total_issue_width}, "
            f"{self.topology} x{self.channels} lat {self.link_latency}{pipe}{regs}"
        )


def spec_index(specs) -> Dict[str, MachineSpec]:
    """Index *specs* by name, rejecting duplicates."""
    index: Dict[str, MachineSpec] = {}
    for spec in specs:
        if spec.name in index and index[spec.name] != spec:
            raise ValueError(f"conflicting machine specs named {spec.name!r}")
        index[spec.name] = spec
    return index
