"""Functional-unit kinds and the mapping from operation classes to them."""

from __future__ import annotations

import enum

from repro.ir.operation import OpClass


class FuKind(enum.Enum):
    """Kind of functional unit present in a cluster."""

    INT = "int"
    FP = "fp"
    MEM = "mem"
    BRANCH = "branch"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


#: Which functional-unit kind executes each operation class.  Copies do not
#: occupy a functional unit: they occupy a bus slot (and, optionally, an
#: issue slot in the source cluster — see ClusteredMachine.copies_use_issue).
_OP_CLASS_TO_FU = {
    OpClass.INT: FuKind.INT,
    OpClass.FP: FuKind.FP,
    OpClass.MEM: FuKind.MEM,
    OpClass.BRANCH: FuKind.BRANCH,
}


def fu_kind_for(op_class: OpClass) -> FuKind | None:
    """Functional-unit kind required by *op_class* (None for copies)."""
    return _OP_CLASS_TO_FU.get(op_class)
