"""Named machine families: the enumerated machine axis of the scenario
matrix.

A :class:`MachineFamily` is a named, ordered set of
:class:`~repro.machine.spec.MachineSpec`\\ s generated from a parameter
grid — cluster-count sweeps, interconnect latency/bandwidth sweeps, ring
and point-to-point topologies, heterogeneous functional-unit mixes and
register-file-constrained variants.  The paper's own three configurations
(and the worked-example machines) are the ``paper`` and ``examples``
families, so the presets of :mod:`repro.machine.presets` are just named
specs here and every consumer — ``run_suite.py --machine-family``, the
scenario-matrix driver, the gated bench sweep — enumerates machines from
one registry.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.machine.machine import ClusteredMachine
from repro.machine.spec import ClusterSpec, MachineSpec, spec_index


@dataclass(frozen=True)
class MachineFamily:
    """A named set of machine specs swept together."""

    name: str
    description: str
    specs: Tuple[MachineSpec, ...]

    def __post_init__(self) -> None:
        if not self.specs:
            raise ValueError(f"machine family {self.name!r} has no specs")
        spec_index(self.specs)  # reject duplicate names early

    def spec(self, name: str) -> MachineSpec:
        for spec in self.specs:
            if spec.name == name:
                return spec
        raise KeyError(f"machine family {self.name!r} has no spec {name!r}")

    def machines(self) -> List[ClusteredMachine]:
        return [spec.to_machine() for spec in self.specs]

    @property
    def spec_names(self) -> List[str]:
        return [spec.name for spec in self.specs]


# --------------------------------------------------------------------------- #
# family generators
# --------------------------------------------------------------------------- #
def _paper_family() -> MachineFamily:
    """Section 6.1's three configurations, re-expressed as specs."""
    return MachineFamily(
        name="paper",
        description="the paper's three evaluated configurations (Section 6.1)",
        specs=(
            MachineSpec.uniform(
                "2clust 1b 1lat", 2, link_latency=1, notes="2 clusters, 8-issue, 1-cycle bus"
            ),
            MachineSpec.uniform(
                "4clust 1b 1lat", 4, link_latency=1, notes="4 clusters, 16-issue, 1-cycle bus"
            ),
            MachineSpec.uniform(
                "4clust 1b 2lat",
                4,
                link_latency=2,
                pipelined=False,
                notes="4 clusters, 16-issue, 2-cycle non-pipelined bus",
            ),
        ),
    )


def _examples_family() -> MachineFamily:
    """The worked-example machines of Section 5 and Figure 4."""
    example_cluster = ClusterSpec.of({"int": 1, "branch": 1}, issue_width=2)
    fig4_cluster = ClusterSpec.of({"int": 2, "branch": 1}, issue_width=3)
    return MachineFamily(
        name="examples",
        description="the worked-example machines (Section 5 / Figure 4)",
        specs=(
            MachineSpec(
                name="example 2-cluster",
                clusters=(example_cluster, example_cluster),
                notes="Section 5 example: 1 INT + 1 BRANCH per cluster, 1-cycle bus",
            ),
            MachineSpec(
                name="example 1-cluster",
                clusters=(fig4_cluster,),
                notes="Figure 4 example: 2 non-branch + 1 branch per cycle",
            ),
        ),
    )


def _cluster_sweep_family() -> MachineFamily:
    """Cluster-count sweep at fixed interconnect (Figure 11's x-axis,
    extended past the paper's 2 and 4)."""
    return MachineFamily(
        name="cluster-sweep",
        description="1/2/4/8 clusters of 1 FU per kind on a 1-cycle bus",
        specs=tuple(
            MachineSpec.uniform(f"{n}c-bus1-lat1", n, notes="cluster-count sweep")
            for n in (1, 2, 4, 8)
        ),
    )


def _bus_sweep_family() -> MachineFamily:
    """Bus latency/bandwidth sweep on the paper's 4-cluster machine."""
    specs: List[MachineSpec] = []
    for channels in (1, 2):
        for latency in (1, 2, 3):
            for pipelined in (True, False):
                if latency == 1 and not pipelined:
                    continue  # occupancy 1 either way: identical machine
                suffix = "" if pipelined else "-np"
                specs.append(
                    MachineSpec.uniform(
                        f"4c-bus{channels}-lat{latency}{suffix}",
                        4,
                        channels=channels,
                        link_latency=latency,
                        pipelined=pipelined,
                        notes="bus latency/bandwidth sweep",
                    )
                )
    return MachineFamily(
        name="bus-sweep",
        description="4 clusters; bus latency 1-3, 1-2 buses, pipelined or not",
        specs=tuple(specs),
    )


def _ring_family() -> MachineFamily:
    """Bidirectional rings: latency grows with the worst-case hop count."""
    return MachineFamily(
        name="ring",
        description="bidirectional ring interconnect (worst-case-hop latency model)",
        specs=(
            MachineSpec.uniform("4c-ring-lat1", 4, topology="ring", notes="ring sweep"),
            MachineSpec.uniform(
                "4c-ring-lat1-x2", 4, topology="ring", channels=2, notes="ring sweep"
            ),
            MachineSpec.uniform("8c-ring-lat1", 8, topology="ring", notes="ring sweep"),
        ),
    )


def _p2p_family() -> MachineFamily:
    """Point-to-point fabrics: single-hop latency, pooled machine-wide
    capacity (see :mod:`repro.machine.interconnect` on the p2p model)."""
    return MachineFamily(
        name="p2p",
        description="non-blocking point-to-point interconnect (pooled capacity)",
        specs=(
            MachineSpec.uniform("2c-p2p-lat1", 2, topology="p2p", notes="p2p sweep"),
            MachineSpec.uniform("4c-p2p-lat1", 4, topology="p2p", notes="p2p sweep"),
            MachineSpec.uniform(
                "4c-p2p-lat2",
                4,
                topology="p2p",
                link_latency=2,
                pipelined=False,
                notes="p2p sweep",
            ),
        ),
    )


def _fu_mix_family() -> MachineFamily:
    """Uniform functional-unit mix variations on 4 clusters."""
    int_rich = ClusterSpec.of({"int": 2, "fp": 1, "mem": 1, "branch": 1})
    mem_rich = ClusterSpec.of({"int": 1, "fp": 1, "mem": 2, "branch": 1})
    wide = ClusterSpec.uniform(count_per_kind=2)
    return MachineFamily(
        name="fu-mix",
        description="4 clusters with int-rich / mem-rich / doubled FU mixes",
        specs=(
            MachineSpec(name="4c-int-rich", clusters=(int_rich,) * 4, notes="FU-mix sweep"),
            MachineSpec(name="4c-mem-rich", clusters=(mem_rich,) * 4, notes="FU-mix sweep"),
            MachineSpec(name="4c-wide", clusters=(wide,) * 4, notes="FU-mix sweep"),
        ),
    )


def _hetero_family() -> MachineFamily:
    """Heterogeneous clusters: capability differs per cluster.

    FP units exist only in even clusters and memory ports only in the
    first half — the shape accelerator-style clustered designs take.  The
    proposed technique's virtual-cluster mapping is capability-blind, so
    on these machines it relies on validation + fallback; the CARS
    baseline handles them natively (``can_execute``).
    """
    fp_cluster = ClusterSpec.of({"int": 1, "fp": 2, "mem": 1, "branch": 1})
    int_cluster = ClusterSpec.of({"int": 2, "mem": 1, "branch": 1})
    return MachineFamily(
        name="hetero",
        description="asymmetric clusters (FP only in even clusters)",
        specs=(
            MachineSpec(
                name="2c-hetero-fp0",
                clusters=(fp_cluster, int_cluster),
                notes="heterogeneous sweep",
            ),
            MachineSpec(
                name="4c-hetero-fp02",
                clusters=(fp_cluster, int_cluster, fp_cluster, int_cluster),
                notes="heterogeneous sweep",
            ),
        ),
    )


def _constrained_regs_family() -> MachineFamily:
    """Register-file-constrained variants of the paper machines."""
    return MachineFamily(
        name="constrained-regs",
        description="paper machines with finite per-cluster register files",
        specs=(
            MachineSpec.uniform("2c-bus1-r32", 2, n_registers=32, notes="register-file sweep"),
            MachineSpec.uniform("4c-bus1-r16", 4, n_registers=16, notes="register-file sweep"),
        ),
    )


#: Every registered family, in presentation order.
_FAMILY_BUILDERS = (
    _paper_family,
    _examples_family,
    _cluster_sweep_family,
    _bus_sweep_family,
    _ring_family,
    _p2p_family,
    _fu_mix_family,
    _hetero_family,
    _constrained_regs_family,
)


def machine_families() -> List[MachineFamily]:
    """Every registered machine family, in presentation order."""
    return [build() for build in _FAMILY_BUILDERS]


def machine_family(name: str) -> MachineFamily:
    """Look one family up by name (KeyError with the known names)."""
    for family in machine_families():
        if family.name == name:
            return family
    known = [family.name for family in machine_families()]
    raise KeyError(f"unknown machine family {name!r}; known: {known}")


def all_machine_specs() -> Dict[str, MachineSpec]:
    """Every spec of every family, indexed by machine name.

    Names are unique across families (enforced), so any machine anywhere
    in the matrix is addressable by its name alone."""
    return spec_index(spec for family in machine_families() for spec in family.specs)


def machine_by_name(name: str) -> ClusteredMachine:
    """Build one machine by its spec name (KeyError with the known names)."""
    specs = all_machine_specs()
    if name not in specs:
        raise KeyError(f"unknown machine {name!r}; known: {sorted(specs)}")
    return specs[name].to_machine()
