"""The composable decision-stage pipeline of the proposed scheduler.

The paper's technique is a fixed sequence of six decision stages driven
by the deduction process (Section 4): decide combinations, pin original
operations to cycles, eliminate out-edges, map virtual clusters onto
physical clusters, decide/pin the communications created along the way,
and finally extract the schedule.  Historically all six lived inside one
``VirtualClusterScheduler`` class; they are now independent
:class:`DecisionStage` objects sharing a :class:`StageContext`, composed
by a :class:`StagePipeline` whose order is a configuration value
(``VcsConfig.stage_order``) rather than a hard-wired branch.

Every stage body is a verbatim move of the corresponding scheduler
method: the default pipeline must reproduce the monolithic scheduler's
schedules and deterministic work counts byte for byte (the CI
perf-regression gate compares both).  Probing primitives — trail
checkpoint/rollback/redo probing and the legacy copy-based study — live
in :class:`ProbeEngine`, shared by all stages, so stage code never
touches the trail directly.

Per-stage wall times and call counts are accumulated in
``StageContext.timings`` and surfaced as
``ScheduleResult.stage_timings`` (reported, never gated: wall time is
host dependent).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Protocol,
    Sequence,
    Tuple,
)

from repro.deduction.consequence import (
    Change,
    ChooseCombination,
    Decision,
    DiscardCombination,
    ForbidCycle,
    FuseVCs,
    MarkVCsIncompatible,
    PinVCs,
    ScheduleInCycle,
    SetExitDeadlines,
)
from repro.deduction.engine import (
    BudgetExhausted,
    DeductionProcess,
    DeductionResult,
    WorkBudget,
)
from repro.deduction.state import SchedulingState
from repro.scheduler import candidates as cand
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.heuristics import state_score
from repro.scheduler.schedule import Schedule, ScheduledComm
from repro.sgraph.combination import pair_key
from repro.vcluster.mapping import map_virtual_to_physical

if TYPE_CHECKING:
    from repro.scheduler.policy import PolicyTracker

#: Canonical stage names, in the paper's order (extraction included: the
#: pipeline always ends by turning the final state into a schedule).
STAGE_COMBINATIONS = "combinations"
STAGE_FIX_CYCLES = "fix-cycles"
STAGE_ELIMINATE_OUTEDGES = "eliminate-outedges"
STAGE_FINAL_MAPPING = "final-mapping"
STAGE_FIX_COMMUNICATIONS = "fix-communications"
STAGE_EXTRACTION = "extraction"

DEFAULT_STAGE_ORDER: Tuple[str, ...] = (
    STAGE_COMBINATIONS,
    STAGE_FIX_CYCLES,
    STAGE_ELIMINATE_OUTEDGES,
    STAGE_FINAL_MAPPING,
    STAGE_FIX_COMMUNICATIONS,
    STAGE_EXTRACTION,
)

#: The A2 ablation: map virtual clusters eagerly after stage 1 instead of
#: postponing the mapping to the end.
EAGER_STAGE_ORDER: Tuple[str, ...] = (
    STAGE_COMBINATIONS,
    STAGE_ELIMINATE_OUTEDGES,
    STAGE_FINAL_MAPPING,
    STAGE_FIX_CYCLES,
    STAGE_FIX_COMMUNICATIONS,
    STAGE_EXTRACTION,
)


def new_probe_stats() -> Dict[str, int]:
    """Fresh probe/copy counters (the ``ScheduleResult.stats`` payload)."""
    return {
        "probes": 0,
        "copies": 0,
        "rollbacks": 0,
        "redos": 0,
        "copies_avoided": 0,
        "trail_entries_undone": 0,
        "probe_cache_hits": 0,
        "probe_cache_misses": 0,
        "candidates_pruned": 0,
        "early_cut_skips": 0,
    }


class PipelineConfig(Protocol):
    """The configuration surface the pipeline and its stages read.

    Structurally matched by :class:`repro.scheduler.vcs.VcsConfig` (a
    Protocol avoids the circular import); read-only properties so frozen
    or mutable config objects both conform."""

    @property
    def use_trail(self) -> bool: ...

    @property
    def stage1_max_decisions(self) -> int: ...

    @property
    def stage1_slack_limit(self) -> float: ...

    @property
    def cycle_candidates(self) -> int: ...

    @property
    def use_matching(self) -> bool: ...

    @property
    def prune_candidates(self) -> bool: ...

    @property
    def probe_early_cut(self) -> bool: ...


def canonical_decision(decision: Decision) -> tuple:
    """A normalized, hashable cache-key component for one decision.

    Two decisions that provably run the same deduction share a key:
    combination choices/discards are normalized to pair-key orientation —
    ``SchedulingState.choose_combination``/``discard_combination``
    themselves rewrite ``(u, v, d)`` to ``(v, u, -d)`` when the pair is
    reversed, so both spellings mutate identically.  VC fusions and
    incompatibilities keep their pair orientation (``VCsFused(u, v)``
    change events expose the field order, so reversed requests are *not*
    interchangeable).  The caller preserves sequence order: applying the
    same decisions in a different order is a different deduction."""
    if isinstance(decision, ScheduleInCycle):
        return ("sic", decision.op_id, decision.cycle)
    if isinstance(decision, ForbidCycle):
        return ("forbid", decision.op_id, decision.cycle)
    if isinstance(decision, (ChooseCombination, DiscardCombination)):
        key = pair_key(decision.u, decision.v)
        distance = decision.distance if key == (decision.u, decision.v) else -decision.distance
        tag = "choose" if isinstance(decision, ChooseCombination) else "discard"
        return (tag, key[0], key[1], distance)
    if isinstance(decision, FuseVCs):
        return ("fuse", decision.pairs)
    if isinstance(decision, MarkVCsIncompatible):
        return ("incompatible", decision.pairs)
    if isinstance(decision, SetExitDeadlines):
        # from_mapping already sorts the deadline items.
        return ("deadlines", decision.deadlines)
    if isinstance(decision, PinVCs):
        return ("pins", decision.pins)
    return (type(decision).__name__, decision)


def probe_cache_key(state: SchedulingState, decisions: Sequence[Decision]) -> tuple:
    """The shared probe-cache key: state epoch plus canonical decisions."""
    return (
        state.state_token(),
        tuple(canonical_decision(decision) for decision in decisions),
    )


@dataclass
class CachedDeduction:
    """One memoized deduction outcome.

    ``log`` is the redo log that replays the deduction's mutations byte for
    byte (``None`` for contradictions, whose partial mutations are never
    observed — every caller rolls back past them).  ``work`` is re-charged
    to the work budget on replay with :meth:`WorkBudget.charge_block`, and
    ``work_split`` (the per-rule-class share of ``work``) is added back to
    the engine's ``work_by_rule``, so both the deterministic compile-effort
    accounting and its reported breakdown are identical with and without
    the cache."""

    contradiction: Optional[str]
    work: int
    work_split: Dict[str, int]
    consequences: Tuple[Change, ...]
    log: Optional[List[tuple]]


class ProbeCache:
    """Memoized deductions keyed by ``(state token, decisions)``.

    The token (:meth:`SchedulingState.state_token`) identifies the state's
    exact content via its trail prefix, so invalidation is trail-aware by
    construction: any mutation — or rollback past the keyed position
    followed by a diverging mutation — changes the token and the entry can
    simply never match again.  Entries bind redo logs to the one state
    instance the cache was built for; the engine refuses other states.

    The dominant repeat in practice is the minAWCT tightening loop of
    :class:`~repro.scheduler.vcs.VirtualClusterScheduler`: exit deadlines
    probed from the pristine state are re-applied verbatim when the
    enumerator's first AWCT target equals the tightened bounds."""

    def __init__(self, state: SchedulingState, max_entries: int = 4096) -> None:
        self.state = state
        self.max_entries = max_entries
        self._entries: Dict[tuple, CachedDeduction] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def get(self, key: tuple) -> Optional[CachedDeduction]:
        return self._entries.get(key)

    def put(self, key: tuple, entry: CachedDeduction) -> None:
        entries = self._entries
        if len(entries) >= self.max_entries and key not in entries:
            # Evict, but retain entries keyed at the incoming entry's state
            # token: the cycle-pinning stage records every candidate of a
            # probe round at one token and replays the round's winner from
            # the cache, so those entries must survive a mid-round eviction
            # (replay_memo treats a missing winner as a hard error).
            token = key[0]
            survivors = {k: v for k, v in entries.items() if k[0] == token}
            entries.clear()
            entries.update(survivors)
        entries[key] = entry


class ProbeEngine:
    """Probing primitives shared by every decision stage.

    Wraps one candidate-evaluation strategy — in-place trail probing with
    rollback/redo (``use_trail=True``) or copy-based study — behind a
    uniform interface, keeps the probe counters, and enforces the
    wall-clock deadline.  Both strategies follow the same decision
    sequence and must produce byte-identical schedules.
    """

    def __init__(self, config: PipelineConfig, stats: Optional[Dict[str, int]] = None) -> None:
        self.config = config
        self.stats = stats if stats is not None else new_probe_stats()
        self.deadline: Optional[float] = None
        self._cache: Optional[ProbeCache] = None
        #: A successful memoized probe awaiting its rollback capture:
        #: ``(key, result, work_split, mark)`` — see :meth:`probe_memo`.
        self._pending: Optional[Tuple[tuple, DeductionResult, Dict[str, int], int]] = None
        #: Optional :class:`~repro.scheduler.policy.PolicyTracker`: counts
        #: probes (and can raise on probe-budget exhaustion) via
        #: :meth:`PolicyTracker.note_probe`.
        self.tracker: Optional["PolicyTracker"] = None
        #: When set (``finalize_partial`` policies in trail mode), a
        #: :class:`BudgetExhausted` raised mid-deduction rolls the state
        #: back to the sequence's entry checkpoint before propagating, so
        #: the exhaustion handler sees a consistent best-so-far state
        #: instead of a half-applied decision.
        self.recover_on_exhaustion = False

    def _note_probe(self) -> None:
        if self.tracker is not None:
            self.tracker.note_probe()

    @property
    def use_trail(self) -> bool:
        return self.config.use_trail

    def memoizes(self, state: SchedulingState) -> bool:
        """Whether probes on *state* go through the memoization cache."""
        cache = self._cache
        return cache is not None and cache.state is state

    def attach_cache(self, state: SchedulingState) -> None:
        """Enable probe memoization for in-place deductions on *state*.

        Only meaningful in trail mode on the scheduler's shared state: the
        cached redo logs bind to that state instance, and replays require
        the trail tokens to be comparable."""
        self._cache = ProbeCache(state)

    def check_time(self) -> None:
        if self.deadline is not None and time.perf_counter() > self.deadline:
            raise BudgetExhausted("wall-clock limit exceeded")

    def apply_sequence(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: Optional[WorkBudget],
    ) -> DeductionResult:
        """Apply *decisions* to *state* in place, accumulating consequences
        and work across the whole sequence (multi-decision studies report
        the total, not just the last decision's share).

        With :attr:`recover_on_exhaustion`, budget exhaustion mid-sequence
        rolls the state back to the entry checkpoint before re-raising —
        partial mutations of the aborted deduction never escape."""
        if self.recover_on_exhaustion:
            mark = state.checkpoint()
            try:
                return self._apply_sequence(dp, state, decisions, budget)
            except BudgetExhausted:
                state.rollback(mark)
                raise
        return self._apply_sequence(dp, state, decisions, budget)

    def _apply_sequence(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: Optional[WorkBudget],
    ) -> DeductionResult:
        consequences: List[Change] = []
        work = 0
        for decision in decisions:
            result = dp.apply(state, decision, budget=budget, in_place=True)
            consequences.extend(result.consequences)
            work += result.work
            if not result.ok:
                return DeductionResult(
                    state=state,
                    consequences=consequences,
                    contradiction=result.contradiction,
                    work=work,
                )
        return DeductionResult(state=state, consequences=consequences, work=work)

    def apply_decisions(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: Optional[WorkBudget],
        memoize: bool = True,
    ) -> DeductionResult:
        """In-place application with probe memoization.

        Identical to :meth:`apply_sequence` when no cache is attached (or
        *state* is not the cache's state).  With a cache, a completed
        deduction of the same decisions at the same state token is
        replayed: the memoized work is charged to the budget block-wise
        (same exhaustion semantics), successful outcomes re-apply their
        recorded mutations through the trail's redo, and contradictions
        return without mutating (their partial mutations are unobservable
        — every caller rolls back past them).  Deductions aborted by
        budget exhaustion are never memoized.

        ``memoize=False`` looks up but never stores: callers whose keys
        cannot recur (the AWCT driver applies each enumerated target once)
        skip the capture-and-redo cost of recording a replay log."""
        cache = self._cache
        if cache is None or cache.state is not state:
            return self.apply_sequence(dp, state, decisions, budget)
        key = probe_cache_key(state, decisions)
        entry = cache.get(key)
        if entry is not None:
            self.stats["probe_cache_hits"] += 1
            if budget is not None and entry.work:
                budget.charge_block(entry.work)
            work_by_rule = dp.work_by_rule
            for name, count in entry.work_split.items():
                work_by_rule[name] = work_by_rule.get(name, 0) + count
            if entry.log is not None:
                state.redo(entry.log)
            return DeductionResult(
                state=state,
                consequences=list(entry.consequences),
                contradiction=entry.contradiction,
                work=entry.work,
            )
        self.stats["probe_cache_misses"] += 1
        if not memoize:
            return self.apply_sequence(dp, state, decisions, budget)
        mark = state.checkpoint()
        split_before = dict(dp.work_by_rule)
        result = self.apply_sequence(dp, state, decisions, budget)
        work_split = {
            name: count - split_before.get(name, 0)
            for name, count in dp.work_by_rule.items()
            if count != split_before.get(name, 0)
        }
        if result.ok:
            # Capture the span and re-apply it immediately: the state ends
            # byte-identical, and the captured log becomes the replay.
            log = state.rollback_capture(mark)
            state.redo(log)
            cache.put(
                key,
                CachedDeduction(
                    contradiction=None,
                    work=result.work,
                    work_split=work_split,
                    consequences=tuple(result.consequences),
                    log=log,
                ),
            )
        else:
            cache.put(
                key,
                CachedDeduction(
                    contradiction=result.contradiction,
                    work=result.work,
                    work_split=work_split,
                    consequences=tuple(result.consequences),
                    log=None,
                ),
            )
        return result

    def study(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: WorkBudget,
    ) -> DeductionResult:
        """Copy mode: evaluate a sequence of decisions on a copy of *state*."""
        self._note_probe()
        self.stats["copies"] += 1
        return self.apply_sequence(dp, state.copy(), decisions, budget)

    def probe(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: WorkBudget,
    ) -> Tuple[int, DeductionResult]:
        """Trail mode: apply *decisions* in place on top of a checkpoint.

        The caller decides whether to keep the mutations or roll back to
        the returned mark."""
        self._note_probe()
        mark = state.checkpoint()
        self.stats["probes"] += 1
        self.stats["copies_avoided"] += 1
        return mark, self.apply_sequence(dp, state, decisions, budget)

    def probe_memo(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: WorkBudget,
    ) -> Tuple[int, DeductionResult]:
        """Trail probe with write-through memoization.

        Requires :meth:`memoizes` to hold for *state*.  A completed
        deduction of the same canonical decisions at the same state token
        is replayed instead of re-run: its work is charged to the budget
        block-wise (same exhaustion semantics as the live unit charges of
        a deterministic re-deduction) and its per-rule split re-added, so
        the compile-effort accounting is identical either way; successful
        outcomes re-apply their recorded mutations through the trail's
        redo.  On a miss the decisions run live: a success is held pending
        for the matching :meth:`rollback_memo` to capture (the redo log
        only exists once the span is rolled back), while a contradiction
        is stored immediately — its partial mutations are rolled back by
        the caller and never observed, so no log is needed."""
        cache = self._cache
        assert cache is not None and cache.state is state
        self._note_probe()
        self._pending = None
        key = probe_cache_key(state, decisions)
        mark = state.checkpoint()
        entry = cache.get(key)
        if entry is not None:
            self.stats["probe_cache_hits"] += 1
            if entry.work:
                budget.charge_block(entry.work)
            work_by_rule = dp.work_by_rule
            for name, count in entry.work_split.items():
                work_by_rule[name] = work_by_rule.get(name, 0) + count
            if entry.log is not None:
                state.redo(entry.log)
            return mark, DeductionResult(
                state=state,
                consequences=list(entry.consequences),
                contradiction=entry.contradiction,
                work=entry.work,
            )
        self.stats["probe_cache_misses"] += 1
        self.stats["probes"] += 1
        self.stats["copies_avoided"] += 1
        split_before = dict(dp.work_by_rule)
        result = self.apply_sequence(dp, state, decisions, budget)
        work_split = {
            name: count - split_before.get(name, 0)
            for name, count in dp.work_by_rule.items()
            if count != split_before.get(name, 0)
        }
        if result.ok:
            self._pending = (key, result, work_split, mark)
        else:
            cache.put(
                key,
                CachedDeduction(
                    contradiction=result.contradiction,
                    work=result.work,
                    work_split=work_split,
                    consequences=tuple(result.consequences),
                    log=None,
                ),
            )
        return mark, result

    def rollback_memo(self, state: SchedulingState, mark: int) -> None:
        """Roll a memoized probe back to *mark*.

        When the probe was a successful cache miss (held pending by
        :meth:`probe_memo`), the rollback captures the span's redo log and
        stores the completed entry — the state is back at the keyed token,
        so the log replays exactly there.  Hits and contradictions roll
        back plainly (their entries already exist or need no log)."""
        pending = self._pending
        if pending is not None and pending[3] == mark:
            self._pending = None
            key, result, work_split, _ = pending
            log = self.rollback_capture(state, mark)
            cache = self._cache
            assert cache is not None
            cache.put(
                key,
                CachedDeduction(
                    contradiction=None,
                    work=result.work,
                    work_split=work_split,
                    consequences=tuple(result.consequences),
                    log=log,
                ),
            )
            return
        self.rollback(state, mark)

    def replay_memo(self, state: SchedulingState, decisions: Sequence[Decision]) -> None:
        """Keep a probe-round winner by replaying its memoized redo log.

        No budget charge and no work-split re-add: the winner's work was
        charged when it was probed, exactly like the capture-based keep
        path (:meth:`redo`).  The entry is guaranteed present — every keep
        follows a probe of the same decisions at the same token, and cache
        eviction retains the current token's entries — so a miss means the
        keep would silently re-deduce and double-charge; raise loudly
        instead."""
        cache = self._cache
        assert cache is not None and cache.state is state
        entry = cache.get(probe_cache_key(state, decisions))
        if entry is None or entry.log is None:
            raise RuntimeError(
                "probe cache lost the winning candidate's entry; a memoized "
                "keep would re-run the deduction and skew the work accounting"
            )
        self.stats["probe_cache_hits"] += 1
        self.stats["redos"] += 1
        state.redo(entry.log)

    def rollback(self, state: SchedulingState, mark: int) -> None:
        self.stats["rollbacks"] += 1
        self.stats["trail_entries_undone"] += state.rollback(mark)

    def rollback_capture(self, state: SchedulingState, mark: int) -> List[tuple]:
        self.stats["rollbacks"] += 1
        log = state.rollback_capture(mark)
        self.stats["trail_entries_undone"] += len(log)
        return log

    def redo(self, state: SchedulingState, log: List[tuple]) -> None:
        """Keep a probed winner by re-applying its captured mutations —
        byte-exact and without re-running its deduction (the work was
        already charged when the candidate was probed)."""
        self.stats["redos"] += 1
        state.redo(log)

    def try_keep(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: WorkBudget,
    ) -> Optional[SchedulingState]:
        """Attempt *decisions*; on success return the resulting current
        state (mutated in place in trail mode, a studied copy otherwise),
        on contradiction return None with *state* unchanged."""
        if self.use_trail:
            mark, result = self.probe(dp, state, decisions, budget)
            if result.ok:
                return state
            self.rollback(state, mark)
            return None
        study = self.study(dp, state, decisions, budget)
        return study.state if study.ok else None


@dataclass
class StageContext:
    """Everything the decision stages share while scheduling one AWCT
    target: the deduction process, the work budget, the configuration,
    the probing engine (with its trail marks and stats), the per-stage
    timing accumulator and the extracted schedule."""

    dp: DeductionProcess
    budget: WorkBudget
    config: PipelineConfig
    engine: ProbeEngine
    #: Per-op cycle hints (e.g. from a CARS pre-pass in the hybrid
    #: backend); biases cycle-candidate selection in the pinning stages.
    cycle_hints: Dict[int, int] = field(default_factory=dict)
    #: Budget-policy runtime state (``None`` without a policy).  Stages
    #: consult :attr:`PolicyTracker.cheap` to pick full vs cheap mode.
    tracker: Optional["PolicyTracker"] = None
    #: Per-stage ``{"calls": n, "wall_time_s": t}``, accumulated across
    #: AWCT targets.
    timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Set by the extraction stage.
    schedule: Optional[Schedule] = None

    def record_timing(self, stage_name: str, elapsed: float) -> None:
        entry = self.timings.setdefault(stage_name, {"calls": 0, "wall_time_s": 0.0})
        entry["calls"] += 1
        entry["wall_time_s"] += elapsed


class DecisionStage(Protocol):
    """One decision stage of the proposed technique.

    A stage advances the scheduling state towards a complete schedule —
    making decisions through the deduction process via the context's
    probing engine — and returns the resulting state, or ``None`` when it
    proves no schedule exists for the current AWCT target."""

    name: str

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        ...


# --------------------------------------------------------------------------- #
# stage 1: combinations between original operations
# --------------------------------------------------------------------------- #
class CombinationsStage:
    """Decide combinations between original operations (Section 4.4.1.1)."""

    name = STAGE_COMBINATIONS

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        engine, config = ctx.engine, ctx.config
        decisions_made = 0
        while decisions_made < config.stage1_max_decisions:
            engine.check_time()
            pick = cand.most_constraining_pair(state)
            if pick is None:
                return state
            u, v, slack = pick
            forced = state.must_overlap(u, v)
            if not forced and slack > config.stage1_slack_limit:
                return state
            if not forced and ctx.tracker is not None and ctx.tracker.cheap:
                # Cheap mode (policy tier critical): optional pairs are no
                # longer studied — remaining budget goes to finishing the
                # mandatory decisions, not exploring.
                return state
            decisions_made += 1

            if config.use_trail:
                outcome = self._decide_pair_in_place(ctx, state, u, v)
                if outcome is None:
                    return None
                continue

            viable: List[Tuple[Tuple, int, SchedulingState]] = []
            for distance in list(state.remaining_combinations(u, v)):
                study = engine.study(
                    ctx.dp, state, [ChooseCombination(u, v, distance)], ctx.budget
                )
                if study.ok:
                    viable.append((state_score(study.state), distance, study.state))
                else:
                    # The deduction process proved this combination leads to
                    # no valid schedule: discarding it is mandatory.
                    committed = engine.study(
                        ctx.dp, state, [DiscardCombination(u, v, distance)], ctx.budget
                    )
                    if not committed.ok:
                        return None
                    state = committed.state

            if viable:
                viable.sort(key=lambda item: (item[0], item[1]))
                state = viable[0][2]
            elif not state.is_pair_decided(u, v):
                # The pair can neither be chosen nor discarded: no schedule
                # exists for this AWCT target.
                return None
        return state

    @staticmethod
    def _decide_pair_in_place(
        ctx: StageContext, state: SchedulingState, u: int, v: int
    ) -> Optional[SchedulingState]:
        """Trail-mode body of one stage-1 iteration.

        Probes every remaining combination of the pair (rolling each back
        with redo capture), commits the mandatory discards of contradictory
        combinations as they are found — later probes must see them, exactly
        like the copy-based loop — and finally keeps the winner by rolling
        back to the winner's probe point (undoing discards committed after
        it, which the winning lineage never saw) and redoing the captured
        mutations.  The result is byte-identical to the copy the copy-based
        scheduler would have kept, without re-running any deduction."""
        engine = ctx.engine
        best: Optional[Tuple[Tuple, int, int, List[tuple]]] = None  # (score, distance, mark, redo log)
        for distance in list(state.remaining_combinations(u, v)):
            mark, study = engine.probe(
                ctx.dp, state, [ChooseCombination(u, v, distance)], ctx.budget
            )
            if study.ok:
                score = state_score(state)
                log = engine.rollback_capture(state, mark)
                if best is None or (score, distance) < (best[0], best[1]):
                    best = (score, distance, mark, log)
            else:
                engine.rollback(state, mark)
                # Discarding the contradictory combination is mandatory.
                commit = engine.apply_sequence(
                    ctx.dp, state, [DiscardCombination(u, v, distance)], ctx.budget
                )
                if not commit.ok:
                    return None

        if best is not None:
            _, _, mark, log = best
            engine.rollback(state, mark)
            engine.redo(state, log)
            return state
        if not state.is_pair_decided(u, v):
            # The pair can neither be chosen nor discarded: no schedule
            # exists for this AWCT target.
            return None
        return state


# --------------------------------------------------------------------------- #
# stages 2 / 6: pin operations with slack to cycles
# --------------------------------------------------------------------------- #
class _FixCyclesBody:
    """Shared loop of the cycle-pinning stages (original operations in
    stage 2, communications in stage 6)."""

    @staticmethod
    def fix_cycles(
        ctx: StageContext, state: SchedulingState, communications: bool
    ) -> Optional[SchedulingState]:
        engine, config = ctx.engine, ctx.config
        use_trail = config.use_trail
        safety = 0
        limit = 8 * (len(state.all_ids) + 4)
        while True:
            safety += 1
            if safety > limit:
                return None
            engine.check_time()
            op_id = cand.lowest_slack_operation(state, communications=communications)
            if op_id is None:
                return state
            # Copies are few and bus contention is unforgiving (especially on
            # a non-pipelined bus), so more alternative cycles are studied
            # for them than for ordinary operations.
            n_candidates = (
                max(4, config.cycle_candidates)
                if communications
                else config.cycle_candidates
            )
            if ctx.tracker is not None and ctx.tracker.cheap:
                # Cheap mode (policy tier critical): one candidate cycle
                # per operation — the greedy earliest-feasible choice —
                # instead of a studied window.
                n_candidates = 1
            hint = None if communications else ctx.cycle_hints.get(op_id)
            cycles = cand.cycle_candidates(state, op_id, n_candidates, hint=hint)
            earliest_contradicts = False
            if use_trail:
                if config.prune_candidates:
                    # Opt-in: drop candidates whose probe provably
                    # contradicts on saturated resources (same winner,
                    # less dp_work — the skipped deductions change the
                    # work accounting, hence not default-on).
                    cycles, pruned = cand.prune_cycle_candidates(state, op_id, cycles)
                    engine.stats["candidates_pruned"] += pruned
                early_cut = config.probe_early_cut
                flc_floor = comp_base = 0.0
                estart_base = state.estart[op_id]
                if early_cut:
                    # Optimistic score floor for any candidate probed from
                    # this round's state: communications are only ever
                    # created or resolved during a deduction (never
                    # dropped — only unresolved PLCs are, at stage-6
                    # entry), so the fully-linked count is a floor on the
                    # score's n_communications; original estarts are
                    # monotone under deduction, so compactness is floored
                    # by the current sum plus this operation's own shift.
                    flc_floor = float(len(state.comms.fully_linked()))
                    comp_base = state.compactness()
                # Whether probes on this state go through the memoization
                # cache (trail mode on the scheduler's shared state with
                # probe_cache enabled): candidates then probe through
                # probe_memo and the winner replays from the cache instead
                # of carrying a captured redo log.
                memo = engine.memoizes(state)
                decision_of = {cycle: ScheduleInCycle(op_id, cycle) for cycle in cycles}
                best: Optional[Tuple[Tuple, int, Optional[List[tuple]]]] = None
                for index, cycle in enumerate(cycles):
                    if early_cut and best is not None:
                        bound_comp = (
                            comp_base if communications else comp_base + (cycle - estart_base)
                        )
                        if (flc_floor, bound_comp) > (best[0][0], best[0][1]):
                            # Every later candidate's floor is at least
                            # this one's (cycles ascend): no remaining
                            # cycle can beat the current (score, cycle)
                            # winner lexicographically.
                            engine.stats["early_cut_skips"] += len(cycles) - index
                            break
                    if memo:
                        mark, study = engine.probe_memo(
                            ctx.dp, state, [decision_of[cycle]], ctx.budget
                        )
                    else:
                        mark, study = engine.probe(
                            ctx.dp, state, [decision_of[cycle]], ctx.budget
                        )
                    if study.ok:
                        score = state_score(state)
                        if memo:
                            engine.rollback_memo(state, mark)
                            log: Optional[List[tuple]] = None
                        else:
                            log = engine.rollback_capture(state, mark)
                        if best is None or (score, cycle) < (best[0], best[1]):
                            best = (score, cycle, log)
                    else:
                        if memo:
                            engine.rollback_memo(state, mark)
                        else:
                            engine.rollback(state, mark)
                        if cycle == state.estart[op_id]:
                            earliest_contradicts = True
                if best is not None:
                    if memo:
                        engine.replay_memo(state, [decision_of[best[1]]])
                    else:
                        assert best[2] is not None
                        engine.redo(state, best[2])
                    continue
            else:
                viable: List[Tuple[Tuple, int, SchedulingState]] = []
                for cycle in cycles:
                    study = engine.study(
                        ctx.dp, state, [ScheduleInCycle(op_id, cycle)], ctx.budget
                    )
                    if study.ok:
                        viable.append((state_score(study.state), cycle, study.state))
                    elif cycle == state.estart[op_id]:
                        earliest_contradicts = True
                if viable:
                    viable.sort(key=lambda item: (item[0], item[1]))
                    state = viable[0][2]
                    continue
            if earliest_contradicts and state.slack(op_id) > 0:
                committed = engine.try_keep(
                    ctx.dp, state, [ForbidCycle(op_id, state.estart[op_id])], ctx.budget
                )
                if committed is None:
                    return None
                state = committed
                continue
            return None


class FixCyclesStage:
    """Pin original operations with remaining slack to cycles (stage 2)."""

    name = STAGE_FIX_CYCLES

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        return _FixCyclesBody.fix_cycles(ctx, state, communications=False)


class FixCommunicationsStage:
    """Decide and pin the communications created along the way (stages 5/6)."""

    name = STAGE_FIX_COMMUNICATIONS

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        engine = ctx.engine
        if ctx.config.use_trail:
            engine.stats["copies_avoided"] += 1
        else:
            state = state.copy()
            engine.stats["copies"] += 1
        state.drop_unresolved_plcs()
        return _FixCyclesBody.fix_cycles(ctx, state, communications=True)


# --------------------------------------------------------------------------- #
# stage 3: eliminate out-edges
# --------------------------------------------------------------------------- #
class EliminateOutedgesStage:
    """Fuse VCs selected by a maximum weight matching, or mark them
    incompatible, inserting communications (Section 4.4.2)."""

    name = STAGE_ELIMINATE_OUTEDGES

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        engine, config = ctx.engine, ctx.config
        safety = 0
        limit = 4 * len(state.original_ids) + 16
        while True:
            safety += 1
            if safety > limit:
                return None
            engine.check_time()
            if not state.outedges():
                return state

            if config.use_matching:
                pairs = cand.matching_candidates(state)
                if len(pairs) > 1:
                    kept = engine.try_keep(
                        ctx.dp, state, [FuseVCs(pairs=tuple(pairs))], ctx.budget
                    )
                    if kept is not None:
                        state = kept
                        continue
                    # A failed matching is not decomposed into per-pair
                    # discards (Section 4.4.2); fall through to the single
                    # highest-weight edge.

            pair = cand.highest_weight_pair(state)
            if pair is None:
                return state
            a, b = pair
            kept = engine.try_keep(ctx.dp, state, [FuseVCs.single(a, b)], ctx.budget)
            if kept is not None:
                state = kept
                continue
            kept = engine.try_keep(
                ctx.dp, state, [MarkVCsIncompatible.single(a, b)], ctx.budget
            )
            if kept is not None:
                state = kept
                continue
            return None


# --------------------------------------------------------------------------- #
# stage 4: final mapping of virtual clusters to physical clusters
# --------------------------------------------------------------------------- #
class FinalMappingStage:
    """Reduce and map virtual clusters onto physical clusters (stage 4)."""

    name = STAGE_FINAL_MAPPING

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        engine = ctx.engine
        n_clusters = state.machine.n_clusters
        safety = 0
        limit = 4 * len(state.original_ids) + 16
        while True:
            safety += 1
            if safety > limit:
                return None
            engine.check_time()
            if state.vcg.n_vcs <= n_clusters:
                mapping = map_virtual_to_physical(state.vcg, n_clusters, injective=True)
                if mapping is not None:
                    return state
            candidates = cand.fusion_candidates_for_mapping(state)
            if not candidates:
                return None
            progressed = False
            for a, b in candidates:
                kept = engine.try_keep(ctx.dp, state, [FuseVCs.single(a, b)], ctx.budget)
                if kept is not None:
                    state = kept
                    progressed = True
                    break
                kept = engine.try_keep(
                    ctx.dp, state, [MarkVCsIncompatible.single(a, b)], ctx.budget
                )
                if kept is not None:
                    state = kept
                    progressed = True
                    break
            if not progressed:
                return None


# --------------------------------------------------------------------------- #
# extraction: turn the final state into a validated schedule
# --------------------------------------------------------------------------- #
class ExtractionStage:
    """Extract the schedule from a fully-decided state and validate it.

    Stores the schedule on the context; returns ``None`` (abandoning the
    AWCT target) when the state cannot be turned into a complete, valid
    schedule."""

    name = STAGE_EXTRACTION

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        schedule = self.extract(state)
        if schedule is None:
            return None
        if not validate_schedule(schedule).ok:
            return None
        ctx.schedule = schedule
        return state

    @staticmethod
    def extract(state: SchedulingState) -> Optional[Schedule]:
        machine = state.machine
        mapping = map_virtual_to_physical(state.vcg, machine.n_clusters, injective=True)
        if mapping is None:
            mapping = map_virtual_to_physical(state.vcg, machine.n_clusters)
        if mapping is None:
            return None
        cycles: Dict[int, int] = {}
        clusters: Dict[int, int] = {}
        for op_id in state.original_ids:
            if not state.is_fixed(op_id):
                return None
            cycles[op_id] = state.estart[op_id]
            clusters[op_id] = mapping[state.vcg.vc_of(op_id)]
        comms: List[ScheduledComm] = []
        for comm in state.comms.fully_linked():
            if not state.is_fixed(comm.comm_id):
                return None
            producer = comm.producer
            src = clusters.get(producer, 0) if producer is not None else 0
            dst = clusters.get(comm.consumer) if comm.consumer is not None else None
            comms.append(
                ScheduledComm(
                    value=comm.value or f"comm{comm.comm_id}",
                    producer=comm.producer if comm.producer is not None else -1,
                    cycle=state.estart[comm.comm_id],
                    src_cluster=src,
                    dst_cluster=dst,
                )
            )
        return Schedule(
            block=state.block,
            machine=machine,
            cycles=cycles,
            clusters=clusters,
            comms=comms,
        )


#: Stage name -> constructor, in the paper's order.
STAGE_FACTORIES: Dict[str, Callable[[], DecisionStage]] = {
    STAGE_COMBINATIONS: CombinationsStage,
    STAGE_FIX_CYCLES: FixCyclesStage,
    STAGE_ELIMINATE_OUTEDGES: EliminateOutedgesStage,
    STAGE_FINAL_MAPPING: FinalMappingStage,
    STAGE_FIX_COMMUNICATIONS: FixCommunicationsStage,
    STAGE_EXTRACTION: ExtractionStage,
}


def available_stages() -> Tuple[str, ...]:
    """The registered stage names, in the paper's order."""
    return tuple(STAGE_FACTORIES)


class UnknownStageError(ValueError):
    """A stage name that is not in :data:`STAGE_FACTORIES`."""


def resolve_stage_order(config) -> Tuple[str, ...]:
    """The effective stage order of a configuration.

    ``config.stage_order`` wins when set; otherwise the order is the
    paper's, with the A2 ablation (``eager_mapping``) mapping virtual
    clusters right after stage 1.  The extraction stage is always
    appended when missing — every pipeline must end by producing a
    schedule."""
    order = getattr(config, "stage_order", None)
    if order is None:
        eager = getattr(config, "eager_mapping", False)
        order = EAGER_STAGE_ORDER if eager else DEFAULT_STAGE_ORDER
    order = tuple(order)
    for name in order:
        if name not in STAGE_FACTORIES:
            raise UnknownStageError(
                f"unknown stage {name!r}; known stages: {', '.join(STAGE_FACTORIES)}"
            )
    if STAGE_EXTRACTION in order[:-1]:
        # A premature extraction finds unfixed operations, abandons every
        # AWCT target and silently degrades the whole run to the fallback.
        raise UnknownStageError(
            f"stage {STAGE_EXTRACTION!r} must come last (it turns the fully-decided "
            "state into the schedule)"
        )
    if STAGE_EXTRACTION not in order:
        order = order + (STAGE_EXTRACTION,)
    return order


class StagePipeline:
    """An ordered composition of decision stages.

    Runs the stages in sequence on one scheduling state, recording each
    stage's wall time in the context.  A stage returning ``None`` (no
    schedule exists for this AWCT target) aborts the pipeline."""

    def __init__(self, stages: Sequence[DecisionStage]):
        self.stages: Tuple[DecisionStage, ...] = tuple(stages)

    @classmethod
    def from_config(cls, config) -> "StagePipeline":
        return cls(tuple(STAGE_FACTORIES[name]() for name in resolve_stage_order(config)))

    @property
    def stage_names(self) -> Tuple[str, ...]:
        return tuple(stage.name for stage in self.stages)

    def run(self, ctx: StageContext, state: SchedulingState) -> Optional[SchedulingState]:
        ctx.schedule = None
        current: Optional[SchedulingState] = state
        for stage in self.stages:
            ctx.engine.check_time()
            t0 = time.perf_counter()
            try:
                current = stage.run(ctx, current)
            finally:
                ctx.record_timing(stage.name, time.perf_counter() - t0)
            if current is None:
                return None
        return current
