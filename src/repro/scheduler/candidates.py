"""Candidate selection for the stages of the proposed algorithm.

Section 4.4.1 of the paper uses three selection methods: slack-based
selection for the instruction-scheduling stages (1, 2, 5, 6), a maximum
weight matching over virtual clusters for the out-edge elimination stage (3),
and a colouring-style ordering for the final mapping stage (4).  The helpers
here compute those candidates from a scheduling state.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import networkx as nx

from repro.deduction.state import SchedulingState


def most_constraining_pair(state: SchedulingState) -> Optional[Tuple[int, int, float]]:
    """The untreated pair with the least combination slack.

    Returns ``(u, v, slack)`` or None when every pair has been decided.
    The scan runs over the state's dirty-tracked undecided-pair set (kept
    up to date by the combination mutators) instead of re-deriving pair
    status from the combination lists on every stage iteration.
    """
    best: Optional[Tuple[int, int, float]] = None
    for u, v in state.untreated_pairs():
        slack = state.pair_slack(u, v)
        if best is None or slack < best[2] or (slack == best[2] and (u, v) < best[:2]):
            best = (u, v, slack)
    return best


def lowest_slack_operation(
    state: SchedulingState, communications: bool = False
) -> Optional[int]:
    """The unfixed operation with the smallest slack.

    With ``communications=True`` the search is over copy operations (stage
    6); otherwise over the block's original operations (stage 2).  For
    original operations the choice is restricted to *ready* ones — those
    whose dependence-graph predecessors are already pinned — so that pinning
    a consumer can never squeeze a producer that still has to be placed
    into an unschedulable corner."""
    unfixed = state.unfixed_ids(communications)
    if not unfixed:
        return None
    if not communications:
        # "Every predecessor fixed" is a zero check against the state's
        # unfixed-predecessor edge counts (maintained by the fix mutators),
        # replacing an O(preds) rescan per candidate per stage iteration.
        counts = state.unfixed_pred_counts()
        ready = [op_id for op_id in unfixed if counts[op_id] == 0]
        if ready:
            unfixed = ready
    return min(unfixed, key=lambda op_id: (state.slack(op_id), op_id))


def cycle_candidates(
    state: SchedulingState, op_id: int, count: int, hint: Optional[int] = None
) -> List[int]:
    """*count* candidate cycles from the operation's ``[estart, lstart]``
    window, earliest first.

    Without a hint these are simply the first *count* cycles of the
    window.  A *hint* (e.g. the cycle a CARS pre-pass placed the operation
    in — the hybrid backend's seeding) keeps ``estart`` and fills the
    remaining ``count - 1`` slots with the window cycles nearest the hint
    (earlier cycles win ties), returned in ascending order.  ``estart``
    always stays in the candidate set because the pinning stage's
    progress mechanism (``ForbidCycle`` on a contradicting earliest
    cycle) relies on the earliest cycle being probed; the deterministic
    ``(score, cycle)`` winner selection is unaffected by candidate
    order."""
    low = state.estart[op_id]
    high = int(state.lstart[op_id])
    if hint is None or hint <= low:
        return list(range(low, min(high, low + count - 1) + 1))
    # The count-1 nearest-to-hint cycles above estart all lie within
    # count-1 of the hint (clamped into the window), so only that band is
    # materialised — the window itself can be arbitrarily wide for
    # high-slack operations.
    centre = min(hint, high)
    band = range(max(low + 1, centre - count + 2), min(high, centre + count - 2) + 1)
    nearest = sorted(band, key=lambda cycle: (abs(cycle - hint), cycle))[: count - 1]
    return [low] + sorted(nearest)


def prune_cycle_candidates(
    state: SchedulingState, op_id: int, cycles: List[int]
) -> Tuple[List[int], int]:
    """Drop candidate cycles whose probe provably ends in a contradiction.

    A cycle where the operations already *fixed* saturate the machine's
    per-class capacity or total issue width (or, for a copy, where any
    cycle of its occupancy window already has every interconnect channel
    busy) is guaranteed to fail its probe through
    ``FixedCycleResourceRule`` — the newly fixed operation pushes the
    count past the frozen machine's limit, which that rule raises on.
    Probing such a cycle can therefore never change the winning
    ``(score, cycle)``, only the deduction work spent rediscovering the
    contradiction.

    The saturated cycles of the candidate band are collected into a
    bitmask keyed off the band's first cycle (resource limits come from
    the machine's precomputed :class:`~repro.machine.machine.
    CycleCapacityTable`), then the candidate list is filtered against it.
    The operation's estart always survives: the pinning stage's progress
    mechanism (``ForbidCycle`` on a contradicting earliest cycle) relies
    on the earliest candidate being probed.

    Returns ``(kept, n_pruned)``.  Opt-in via
    ``VcsConfig.prune_candidates``: skipping doomed probes changes
    dp_work accounting, never the schedule.
    """
    if len(cycles) <= 1:
        return cycles, 0
    table = state.machine.cycle_capacity_table
    op = state.op(op_id)
    base = cycles[0]
    saturated = 0
    if op.is_copy:
        channels = table.channels
        occupancy = table.occupancy
        for cycle in cycles:
            for probe in range(cycle, cycle + occupancy):
                if state.n_fixed_comms_in(probe - occupancy + 1, probe) >= channels:
                    saturated |= 1 << (cycle - base)
                    break
    else:
        capacity = table.class_capacity.get(op.op_class, 0)
        issue_width = table.issue_width
        for cycle in cycles:
            fixed = state.fixed_ops_at(cycle)
            if not fixed:
                continue
            same_class = 0
            non_copy = 0
            for other_id in fixed:
                other = state.op(other_id)
                if not other.is_copy:
                    non_copy += 1
                if other.op_class is op.op_class:
                    same_class += 1
            if same_class >= capacity or non_copy >= issue_width:
                saturated |= 1 << (cycle - base)
    if not saturated:
        return cycles, 0
    estart = state.estart[op_id]
    kept = [
        cycle
        for cycle in cycles
        if cycle == estart or not (saturated >> (cycle - base)) & 1
    ]
    return kept, len(cycles) - len(kept)


def outedge_weights(state: SchedulingState) -> Dict[Tuple[int, int], int]:
    """Number of out-edges between every pair of (compatible) VC roots."""
    weights: Dict[Tuple[int, int], int] = {}
    for producer, consumer, _value in state.outedges():
        a = state.vcg.vc_of(producer)
        b = state.vcg.vc_of(consumer)
        key = (a, b) if a < b else (b, a)
        weights[key] = weights.get(key, 0) + 1
    return weights


def matching_candidates(state: SchedulingState) -> List[Tuple[int, int]]:
    """VC pairs selected by a maximum weight matching over the matching graph.

    The matching graph has one node per VC and an edge for every pair of VCs
    with out-edges between them, weighted by the number of those out-edges
    (Section 4.4.1.2)."""
    weights = outedge_weights(state)
    if not weights:
        return []
    graph = nx.Graph()
    for (a, b), weight in weights.items():
        graph.add_edge(a, b, weight=weight)
    matching = nx.max_weight_matching(graph)
    pairs = [tuple(sorted(edge)) for edge in matching]
    return sorted(pairs)


def highest_weight_pair(state: SchedulingState) -> Optional[Tuple[int, int]]:
    """The VC pair with the most out-edges between them (E_highest_weight)."""
    weights = outedge_weights(state)
    if not weights:
        return None
    return max(sorted(weights), key=lambda key: weights[key])


def fusion_candidates_for_mapping(state: SchedulingState) -> List[Tuple[int, int]]:
    """Compatible VC pairs ordered for the final-mapping fusions (stage 4).

    Pairs sharing many incompatible neighbours are preferred (fusing them
    does not reduce the colourability of the VCG), mirroring the
    colouring-based ordering of Section 4.4.1.3."""
    roots = state.vcg.roots()
    scored: List[Tuple[Tuple[int, int, int, int], Tuple[int, int]]] = []
    for i, a in enumerate(roots):
        neighbours_a = set(state.vcg.incompatible_with(a))
        for b in roots[i + 1:]:
            if state.vcg.are_incompatible(a, b):
                continue
            neighbours_b = set(state.vcg.incompatible_with(b))
            shared = len(neighbours_a & neighbours_b)
            union = len(neighbours_a | neighbours_b)
            scored.append(((-shared, union, a, b), (a, b)))
    scored.sort()
    return [pair for _, pair in scored]
