"""Schedulers: the proposed virtual-cluster scheduler and the baselines.

* :class:`~repro.scheduler.vcs.VirtualClusterScheduler` — the paper's
  technique (scheduling graph + virtual clusters + deduction process,
  Section 4), its six decision stages composed from
  :mod:`repro.scheduler.pipeline`.
* :class:`~repro.scheduler.cars.CarsScheduler` — the CARS baseline (unified
  assign-and-schedule list scheduling, Kailas et al.), the comparison point
  of the paper's evaluation.
* :class:`~repro.scheduler.list_scheduler.ListScheduler` — a plain list
  scheduler with naive cluster assignment, useful as a sanity reference.
* :class:`~repro.scheduler.registry.HybridScheduler` — a CARS pre-pass
  seeding the VCS cycle-candidate windows.
* :class:`~repro.scheduler.policy.SchedulePolicy` — anytime-scheduling
  budget policies: spend limits with status tiers, graceful degradation
  on exhaustion (``finalize_partial``) and leftover-budget refinement.

All backends are registered by name in :mod:`repro.scheduler.registry`
(``create("vcs" | "cars" | "list" | "hybrid", ...)``) and produce a
:class:`~repro.scheduler.schedule.Schedule` that can be checked with
:func:`~repro.scheduler.correctness.validate_schedule` and scored with
the AWCT metric.
"""

from repro.scheduler.schedule import Schedule, ScheduledComm, ScheduleResult
from repro.scheduler.correctness import ScheduleError, ValidationReport, validate_schedule
from repro.scheduler.list_scheduler import ListScheduler
from repro.scheduler.cars import CarsScheduler
from repro.scheduler.heuristics import state_score, compare_states
from repro.scheduler.pipeline import (
    DecisionStage,
    ProbeEngine,
    StageContext,
    StagePipeline,
    UnknownStageError,
    available_stages,
    resolve_stage_order,
)
from repro.scheduler.policy import (
    TIERS,
    PolicyTracker,
    SchedulePolicy,
    cheap_extraction,
    partial_cluster_hints,
)
from repro.scheduler.fingerprint import (
    CODE_SALT,
    block_digest,
    machine_digest,
    schedule_cache_key,
    spec_digest,
)
from repro.scheduler.vcs import VcsConfig, VirtualClusterScheduler
from repro.scheduler.registry import (
    BackendInfo,
    BackendSpec,
    HybridScheduler,
    SchedulerBackend,
    UnknownBackendError,
    available_backends,
    backend_info,
    create,
    register_backend,
)

__all__ = [
    "Schedule",
    "ScheduledComm",
    "ScheduleResult",
    "ScheduleError",
    "ValidationReport",
    "validate_schedule",
    "ListScheduler",
    "CarsScheduler",
    "state_score",
    "compare_states",
    "DecisionStage",
    "ProbeEngine",
    "StageContext",
    "StagePipeline",
    "UnknownStageError",
    "available_stages",
    "resolve_stage_order",
    "TIERS",
    "PolicyTracker",
    "SchedulePolicy",
    "cheap_extraction",
    "partial_cluster_hints",
    "CODE_SALT",
    "block_digest",
    "machine_digest",
    "schedule_cache_key",
    "spec_digest",
    "VcsConfig",
    "VirtualClusterScheduler",
    "BackendInfo",
    "BackendSpec",
    "HybridScheduler",
    "SchedulerBackend",
    "UnknownBackendError",
    "available_backends",
    "backend_info",
    "create",
    "register_backend",
]
