"""Schedulers: the proposed virtual-cluster scheduler and the baselines.

* :class:`~repro.scheduler.vcs.VirtualClusterScheduler` — the paper's
  technique (scheduling graph + virtual clusters + deduction process,
  Section 4).
* :class:`~repro.scheduler.cars.CarsScheduler` — the CARS baseline (unified
  assign-and-schedule list scheduling, Kailas et al.), the comparison point
  of the paper's evaluation.
* :class:`~repro.scheduler.list_scheduler.ListScheduler` — a plain list
  scheduler with naive cluster assignment, useful as a sanity reference.

All schedulers produce a :class:`~repro.scheduler.schedule.Schedule` that can
be checked with :func:`~repro.scheduler.correctness.validate_schedule` and
scored with the AWCT metric.
"""

from repro.scheduler.schedule import Schedule, ScheduledComm, ScheduleResult
from repro.scheduler.correctness import ScheduleError, ValidationReport, validate_schedule
from repro.scheduler.list_scheduler import ListScheduler
from repro.scheduler.cars import CarsScheduler
from repro.scheduler.heuristics import state_score, compare_states
from repro.scheduler.vcs import VcsConfig, VirtualClusterScheduler

__all__ = [
    "Schedule",
    "ScheduledComm",
    "ScheduleResult",
    "ScheduleError",
    "ValidationReport",
    "validate_schedule",
    "ListScheduler",
    "CarsScheduler",
    "state_score",
    "compare_states",
    "VcsConfig",
    "VirtualClusterScheduler",
]
