"""Anytime scheduling: budget policies with status tiers and graceful
degradation.

The paper's only answer to budget exhaustion is the timeout fallback to
CARS, which discards every deduction the VCS engine already paid for.  A
:class:`SchedulePolicy` replaces that binary with a quality dial: it
tracks the three compile-effort resources — deterministic ``dp_work``
(deduction rule firings), wall time and probe count — against
configurable limits, exposes a status *tier* as they fill up, and
defines what happens when one runs out:

========== =============================================================
tier       action
========== =============================================================
healthy    full pipeline, nothing recorded beyond the spend counters
warning    tier transition recorded (service-level signal, no behaviour
           change)
critical   stages switch to *cheap mode*: the cycle-pinning stages study
           a single candidate cycle per operation and stage 1 stops
           studying optional pairs, so the remaining budget is spent
           finishing the attempt instead of exploring it
exhausted  ``exhaustion_mode`` decides: ``"fail"`` reproduces the
           paper's behaviour (abandon the attempt, fall back to the
           fallback backend), ``"finalize_partial"`` freezes the
           best-so-far valid decision set and finalizes it cheaply (see
           below), so the work already spent still shapes the output
========== =============================================================

``finalize_partial`` finalization runs a list-scheduling extraction over
the partially-fixed scheduling graph: the virtual-cluster structure the
deduction process has committed so far is mapped onto physical clusters
and handed to the CARS machinery as per-operation cluster hints
(:func:`cheap_extraction`), producing a complete schedule that still
passes :func:`~repro.scheduler.correctness.validate_schedule`.  The
scheduler emits the better of that extraction and the plain fallback
schedule, so the partial-finalize output is never worse than the paper's
timeout mechanism and usually better — the paid-for cluster decisions
survive.

A policy with leftover budget after a *successful* run can spend it
improving the schedule: ``refine_rounds`` enables the randomized-restart
/ large-neighborhood re-probing loop of
:meth:`~repro.scheduler.vcs.VirtualClusterScheduler` (release the
worst-slack region of the current best schedule, re-run the pipeline
under the remaining budget, keep strict improvements), during which
every intermediate output is a complete validated schedule — the anytime
property.

The shape (exhaustion modes ``fail`` vs ``finalize_partial``; status
tiers healthy/warning/critical/exhausted with per-tier actions) follows
the error-budget policy engines of service-reliability tooling; here the
"error budget" is compile effort.

The default configuration — ``VcsConfig.policy = None`` — is
fail-equivalent and leaves every scheduler code path byte-identical to
the policy-free implementation; the CI perf-regression gate holds that
invariant.
"""

from __future__ import annotations

import math
import time
import zlib
from dataclasses import dataclass, fields
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.deduction.engine import BudgetExhausted, WorkBudget
from repro.deduction.state import SchedulingState
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.scheduler.cars import CarsScheduler
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.schedule import ScheduleResult
from repro.vcluster.mapping import map_virtual_to_physical

# --------------------------------------------------------------------------- #
# tiers and modes
# --------------------------------------------------------------------------- #
TIER_HEALTHY = "healthy"
TIER_WARNING = "warning"
TIER_CRITICAL = "critical"
TIER_EXHAUSTED = "exhausted"

#: Escalation order; a tracker's tier only ever moves rightward.
TIERS: Tuple[str, ...] = (TIER_HEALTHY, TIER_WARNING, TIER_CRITICAL, TIER_EXHAUSTED)

MODE_FAIL = "fail"
MODE_FINALIZE_PARTIAL = "finalize_partial"
EXHAUSTION_MODES: Tuple[str, ...] = (MODE_FAIL, MODE_FINALIZE_PARTIAL)

_BOOL_TRUE = ("1", "true", "yes", "on")
_BOOL_FALSE = ("0", "false", "no", "off")


@dataclass(frozen=True)
class SchedulePolicy:
    """Budget limits, tier thresholds and exhaustion behaviour of one run.

    Pure data: picklable (it travels inside
    :class:`~repro.scheduler.vcs.VcsConfig` to runner workers), hashable,
    and round-trips through :meth:`to_dict` / :meth:`from_dict`;
    :meth:`parse` reads the compact ``key=value,key=value`` spelling of
    the ``REPRO_VCS_POLICY`` environment override.  The runtime state
    lives in :class:`PolicyTracker`, created per :meth:`schedule` call.
    """

    #: What exhaustion does: ``"fail"`` (the paper's fallback) or
    #: ``"finalize_partial"`` (freeze + cheap finalize, see module doc).
    exhaustion_mode: str = MODE_FAIL
    #: Deterministic dp_work ceiling; combined with
    #: ``VcsConfig.work_budget`` by taking the minimum.  None = unlimited.
    max_dp_work: Optional[int] = None
    #: Wall-clock ceiling in seconds; combined with
    #: ``VcsConfig.time_limit`` by taking the minimum.  None = unlimited.
    max_wall_s: Optional[float] = None
    #: Probe-count ceiling (trail probes / copy studies); None = unlimited.
    max_probes: Optional[int] = None
    #: Tier thresholds as fractions of the tightest limit: the tracker is
    #: ``warning`` once any resource fraction reaches ``warning_at`` and
    #: ``critical`` at ``critical_at``.
    warning_at: float = 0.5
    critical_at: float = 0.85
    #: Leftover-budget refinement rounds after a successful run (0 = off).
    #: Each round frees the worst-slack region of the best schedule and
    #: re-runs the pipeline under the remaining dp_work budget, keeping
    #: strict AWCT improvements only.
    refine_rounds: int = 0
    #: Operations released per refinement round (the "large neighborhood").
    refine_neighborhood: int = 4
    #: Seed of the deterministic refinement RNG (mixed with the block name).
    refine_seed: int = 0

    def __post_init__(self) -> None:
        if self.exhaustion_mode not in EXHAUSTION_MODES:
            raise ValueError(
                f"unknown exhaustion mode {self.exhaustion_mode!r}; "
                f"known modes: {', '.join(EXHAUSTION_MODES)}"
            )
        if not (0.0 < self.warning_at <= self.critical_at <= 1.0):
            raise ValueError(
                "tier thresholds must satisfy 0 < warning_at <= critical_at <= 1 "
                f"(got warning_at={self.warning_at}, critical_at={self.critical_at})"
            )

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-serialisable description (inverse of :meth:`from_dict`)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, data: Mapping) -> "SchedulePolicy":
        """Build a policy from a mapping, coercing string values (JSON or
        environment sources); unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ValueError(
                f"unknown SchedulePolicy keys {sorted(unknown)}; known: {sorted(known)}"
            )
        return cls(**{key: cls._coerce(key, value) for key, value in data.items()})

    @classmethod
    def parse(cls, text: str) -> "SchedulePolicy":
        """Parse the compact ``REPRO_VCS_POLICY`` spelling.

        Either a bare mode (``"fail"`` / ``"finalize_partial"``) or a
        comma-separated ``key=value`` list, e.g.
        ``"mode=finalize_partial,max_dp_work=20000,refine_rounds=2"``
        (``mode`` is shorthand for ``exhaustion_mode``)."""
        text = text.strip()
        if not text:
            return cls()
        if "=" not in text:
            return cls(exhaustion_mode=text)
        data: Dict[str, str] = {}
        for item in text.split(","):
            item = item.strip()
            if not item:
                continue
            if "=" not in item:
                raise ValueError(f"invalid policy item {item!r} (expected key=value)")
            key, value = item.split("=", 1)
            key = key.strip()
            data["exhaustion_mode" if key == "mode" else key] = value.strip()
        return cls.from_dict(data)

    @staticmethod
    def _coerce(key: str, value):
        if value is None:
            return None
        if key == "exhaustion_mode":
            return str(value).strip().lower()
        if key in ("max_dp_work", "max_probes", "refine_rounds", "refine_neighborhood", "refine_seed"):
            try:
                return int(value)
            except (TypeError, ValueError):
                raise ValueError(f"invalid integer {value!r} for SchedulePolicy.{key}") from None
        if key in ("max_wall_s", "warning_at", "critical_at"):
            try:
                return float(value)
            except (TypeError, ValueError):
                raise ValueError(f"invalid number {value!r} for SchedulePolicy.{key}") from None
        if isinstance(value, str):
            text = value.strip().lower()
            if text in _BOOL_TRUE:
                return True
            if text in _BOOL_FALSE:
                return False
            raise ValueError(f"invalid value {value!r} for SchedulePolicy.{key}")
        return value

    # ------------------------------------------------------------------ #
    # convenience
    # ------------------------------------------------------------------ #
    @property
    def finalizes_partial(self) -> bool:
        return self.exhaustion_mode == MODE_FINALIZE_PARTIAL

    def refine_rng_seed(self, block_name: str) -> int:
        """The deterministic per-block seed of the refinement RNG."""
        return (self.refine_seed << 16) ^ zlib.crc32(block_name.encode("utf-8"))


class PolicyTracker:
    """Runtime spend tracking of one :class:`SchedulePolicy`.

    Created per :meth:`~repro.scheduler.vcs.VirtualClusterScheduler.schedule`
    call; observes the run's :class:`WorkBudget` (tier-transition marks on
    ``charge``/``charge_block``), counts probes through
    :meth:`note_probe`, and records every tier transition with the spend
    coordinates at which it happened.  The tier never de-escalates:
    resource fractions only grow within a run.
    """

    def __init__(
        self,
        policy: SchedulePolicy,
        budget: WorkBudget,
        started: Optional[float] = None,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        self.policy = policy
        self.budget = budget
        self.clock = clock
        self.started = clock() if started is None else started
        self.probes = 0
        self.tier = TIER_HEALTHY
        #: ``{"tier", "dp_work", "probes", "wall_s"}`` per transition, in
        #: escalation order (the initial healthy entry included so the
        #: trace always starts at the origin).
        self.transitions: List[Dict[str, object]] = []
        self.exhausted_reason: Optional[str] = None
        #: Filled by the refine phase: one entry per round.
        self.refine_history: List[Dict[str, object]] = []
        #: The effective dp_work ceiling (set by :meth:`attach`).
        self.dp_limit: Optional[int] = None
        self._record(TIER_HEALTHY)

    # ------------------------------------------------------------------ #
    # wiring
    # ------------------------------------------------------------------ #
    def attach(self, budget: WorkBudget) -> None:
        """Install the policy's dp_work ceiling and tier marks on *budget*.

        The effective limit is the minimum of the budget's existing limit
        (``VcsConfig.work_budget``) and the policy's ``max_dp_work``; the
        observer fires exactly at the spend values where a tier threshold
        is crossed, so tier transitions cost nothing in between."""
        limits = [l for l in (budget.limit, self.policy.max_dp_work) if l is not None]
        budget.limit = min(limits) if limits else None
        self.dp_limit = budget.limit
        budget.observer = self._on_budget
        budget.notify_at = self._next_dp_mark()

    def _on_budget(self, budget: WorkBudget) -> None:
        self.refresh()

    def _next_dp_mark(self) -> Optional[int]:
        """The next ``spent`` value at which the tier can change."""
        if self.dp_limit is None:
            return None
        index = TIERS.index(self.tier)
        if index < TIERS.index(TIER_WARNING):
            fraction = self.policy.warning_at
        elif index < TIERS.index(TIER_CRITICAL):
            fraction = self.policy.critical_at
        else:
            return None
        # The first integer spend at/above the threshold.
        return max(1, math.ceil(fraction * self.dp_limit))

    # ------------------------------------------------------------------ #
    # spend accounting
    # ------------------------------------------------------------------ #
    def note_probe(self) -> None:
        """Count one candidate probe; raises on probe-budget exhaustion."""
        self.probes += 1
        limit = self.policy.max_probes
        if limit is not None and self.probes > limit:
            message = f"probe budget of {limit} probes exhausted ({self.probes} spent)"
            raise BudgetExhausted(message)
        self.refresh()

    def wall_s(self) -> float:
        return self.clock() - self.started

    def fractions(self) -> Dict[str, float]:
        """How full each limited resource is (absent = unlimited)."""
        out: Dict[str, float] = {}
        if self.dp_limit:
            out["dp_work"] = self.budget.spent / self.dp_limit
        if self.policy.max_probes:
            out["probes"] = self.probes / self.policy.max_probes
        if self.policy.max_wall_s:
            out["wall"] = self.wall_s() / self.policy.max_wall_s
        return out

    def refresh(self) -> str:
        """Recompute the tier from the current spend; record transitions."""
        if self.tier == TIER_EXHAUSTED:
            return self.tier
        fractions = self.fractions()
        fraction = max(fractions.values(), default=0.0)
        if fraction >= self.policy.critical_at:
            target = TIER_CRITICAL
        elif fraction >= self.policy.warning_at:
            target = TIER_WARNING
        else:
            target = TIER_HEALTHY
        if TIERS.index(target) > TIERS.index(self.tier):
            self.tier = target
            self._record(target)
            self.budget.notify_at = self._next_dp_mark()
        return self.tier

    def mark_exhausted(self, reason: str) -> None:
        """Record the terminal transition (called by the scheduler's
        exhaustion handler, whatever resource raised)."""
        if self.tier != TIER_EXHAUSTED:
            self.tier = TIER_EXHAUSTED
            self._record(TIER_EXHAUSTED)
            self.budget.notify_at = None
        self.exhausted_reason = reason

    def _record(self, tier: str) -> None:
        self.transitions.append(
            {
                "tier": tier,
                "dp_work": self.budget.spent,
                "probes": self.probes,
                "wall_s": self.wall_s(),
            }
        )

    # ------------------------------------------------------------------ #
    # per-tier actions
    # ------------------------------------------------------------------ #
    @property
    def cheap(self) -> bool:
        """Whether stages should run in cheap mode (critical or worse)."""
        return self.tier in (TIER_CRITICAL, TIER_EXHAUSTED)

    # ------------------------------------------------------------------ #
    # reporting
    # ------------------------------------------------------------------ #
    def summary(self, partial: bool, source: str) -> Dict[str, object]:
        """The ``ScheduleResult.policy`` payload.

        ``partial`` says whether the result was finalized from a
        partially-decided state; ``source`` names what produced the
        emitted schedule (``"vcs"``, ``"partial-extraction"``,
        ``"fallback"``).  Wall readings ride along for reporting; the
        fingerprint provenance uses only the deterministic fields."""
        return {
            "mode": self.policy.exhaustion_mode,
            "tier": self.tier,
            "partial_finalize": partial,
            "source": source,
            "transitions": [dict(t) for t in self.transitions],
            "probes": self.probes,
            "dp_limit": self.dp_limit,
            "dp_spent": self.budget.spent,
            "exhausted_reason": self.exhausted_reason,
            "refine": [dict(r) for r in self.refine_history],
        }


# --------------------------------------------------------------------------- #
# cheap finalization of a partially-decided state
# --------------------------------------------------------------------------- #
def partial_cluster_hints(state: SchedulingState) -> Dict[int, int]:
    """Per-operation cluster hints from a partially-decided state.

    Maps the virtual-cluster structure the deduction process has committed
    so far onto physical clusters (injective first, like the extraction
    stage) and reads each original operation's cluster off the mapping.
    Empty when the VCG cannot be mapped — the extraction then degrades to
    plain CARS."""
    n_clusters = state.machine.n_clusters
    mapping = map_virtual_to_physical(state.vcg, n_clusters, injective=True)
    if mapping is None:
        mapping = map_virtual_to_physical(state.vcg, n_clusters)
    if mapping is None:
        return {}
    return {op_id: mapping[state.vcg.vc_of(op_id)] for op_id in state.original_ids}


def cheap_extraction(
    block: Superblock,
    machine: ClusteredMachine,
    state: Optional[SchedulingState],
) -> Optional[ScheduleResult]:
    """List-scheduling extraction over the partially-fixed scheduling graph.

    Runs the CARS machinery with the partial state's cluster decisions as
    hints (see :class:`~repro.scheduler.cars.CarsScheduler`): dependences,
    per-cycle resources and interconnect occupancy are enforced by the
    list scheduler, so the result is a complete schedule by construction;
    it is validated anyway and ``None`` is returned when anything is off
    (the caller then falls back)."""
    hints = partial_cluster_hints(state) if state is not None else {}
    extractor = CarsScheduler(cluster_hints=hints or None)
    try:
        result = extractor.schedule(block, machine)
    except RuntimeError:  # exceeded max_cycles: treat as "no extraction"
        return None
    if result.schedule is None or not validate_schedule(result.schedule).ok:
        return None
    return result
