"""The scheduler-backend registry: named, composable scheduler backends.

A *backend* is anything with a ``name`` and a
``schedule(block, machine) -> ScheduleResult`` method
(:class:`SchedulerBackend`).  The registry maps stable names to backend
factories so every layer above the schedulers — the parallel runner's
:class:`~repro.runner.ScheduleJob`, the experiment drivers, the
benchmarks and the ``run_suite.py`` CLI — selects schedulers by name
instead of hard-coding classes, and new backends (alternative
heuristics, hybrids, backend-vs-backend experiments) plug in without
touching the hot path.

Built-in backends:

* ``"vcs"`` — the paper's technique
  (:class:`~repro.scheduler.vcs.VirtualClusterScheduler`), composed with
  the ``"cars"`` backend as its budget-exhaustion fallback;
* ``"cars"`` — the CARS baseline (unified assign-and-schedule list
  scheduling);
* ``"list"`` — a plain list scheduler with naive cluster assignment;
* ``"hybrid"`` — a CARS pre-pass whose placement seeds the VCS
  cycle-candidate windows (:class:`HybridScheduler`).

Configuration travels as a picklable :class:`BackendSpec` (backend name
+ :class:`~repro.scheduler.vcs.VcsConfig` + backend-specific options)
with ``from_dict``/``to_dict`` round-tripping and environment overrides,
so heterogeneous-backend batches shard across worker processes like any
other job.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, List, Mapping, Optional, Protocol, Tuple

from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.scheduler.cars import CarsScheduler
from repro.scheduler.list_scheduler import ListScheduler
from repro.scheduler.schedule import ScheduleResult
from repro.scheduler.vcs import VcsConfig, VirtualClusterScheduler

#: Environment variables of :meth:`BackendSpec.from_env`.
SCHEDULER_ENV_VAR = "REPRO_SCHEDULER"
VCS_ENV_PREFIX = "REPRO_VCS_"


class SchedulerBackend(Protocol):
    """What the runner, experiments and CLI require of a scheduler."""

    name: str

    def schedule(self, block: Superblock, machine: ClusteredMachine) -> ScheduleResult:
        ...


class UnknownBackendError(ValueError):
    """A backend name that is not registered."""

    def __init__(self, name: str):
        super().__init__(
            f"unknown scheduler backend {name!r}; registered: {', '.join(available_backends())}"
        )
        self.name = name


@dataclass(frozen=True)
class BackendInfo:
    """One registry entry."""

    name: str
    factory: Callable[..., SchedulerBackend]
    description: str = ""
    #: Whether the backend's factory accepts a ``vcs_config`` argument
    #: (the experiment drivers only thread the VCS knobs into backends
    #: that consume them).
    uses_vcs_config: bool = False


_REGISTRY: Dict[str, BackendInfo] = {}


def register_backend(
    name: str,
    factory: Callable[..., SchedulerBackend],
    description: str = "",
    uses_vcs_config: bool = False,
) -> None:
    """Register (or replace) a backend factory under *name*.

    The factory is called as ``factory(vcs_config=..., **options)`` when
    ``uses_vcs_config`` is set and ``factory(**options)`` otherwise.

    For a custom backend to run inside the parallel runner's worker
    processes, register it at import time of a module the workers also
    import (jobs carry backend *names*; each worker re-creates the
    backend from its own registry — the same module-level requirement
    multiprocessing puts on the worker function itself).  A backend
    registered only in an interactive ``__main__`` works serially and
    under fork, but not under a spawn context."""
    _REGISTRY[name] = BackendInfo(
        name=name, factory=factory, description=description, uses_vcs_config=uses_vcs_config
    )


def available_backends() -> List[str]:
    """The registered backend names, in registration order."""
    return list(_REGISTRY)


def backend_info(name: str) -> BackendInfo:
    try:
        return _REGISTRY[name]
    except KeyError:
        raise UnknownBackendError(name) from None


def create(
    name: str, vcs_config: Optional[VcsConfig] = None, **options: Any
) -> SchedulerBackend:
    """Instantiate the backend registered under *name*.

    ``vcs_config`` is forwarded only to backends that consume it, so
    callers can thread one config through a heterogeneous backend list."""
    info = backend_info(name)
    if info.uses_vcs_config:
        return info.factory(vcs_config=vcs_config, **options)
    return info.factory(**options)


# --------------------------------------------------------------------------- #
# the picklable backend spec (the unified config layer)
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class BackendSpec:
    """A fully-serialisable description of one scheduler backend.

    ``name`` selects the registry entry, ``vcs`` carries the
    :class:`VcsConfig` for VCS-derived backends, and ``options`` holds
    backend-specific constructor keywords as a sorted tuple of pairs (so
    the spec stays hashable and picklable).  Round-trips through
    :meth:`to_dict` / :meth:`from_dict`; :meth:`from_env` applies
    ``REPRO_SCHEDULER`` and ``REPRO_VCS_<FIELD>`` overrides."""

    name: str = "vcs"
    vcs: Optional[VcsConfig] = None
    options: Tuple[Tuple[str, Any], ...] = ()

    def __post_init__(self) -> None:
        if self.name not in _REGISTRY:
            raise UnknownBackendError(self.name)

    def create(self) -> SchedulerBackend:
        """Instantiate the described backend."""
        return create(self.name, vcs_config=self.vcs, **dict(self.options))

    # ------------------------------------------------------------------ #
    # serialisation
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        out: dict = {"name": self.name}
        if self.vcs is not None:
            out["vcs"] = self.vcs.to_dict()
        if self.options:
            out["options"] = dict(self.options)
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "BackendSpec":
        unknown = set(data) - {"name", "vcs", "options"}
        if unknown:
            raise ValueError(
                f"unknown BackendSpec keys {sorted(unknown)}; known: ['name', 'options', 'vcs']"
            )
        vcs = data.get("vcs")
        if isinstance(vcs, Mapping):
            vcs = VcsConfig.from_dict(vcs)
        options = data.get("options") or {}
        return cls(
            name=data.get("name", "vcs"),
            vcs=vcs,
            options=tuple(sorted(options.items())),
        )

    @classmethod
    def from_env(
        cls, base: Optional["BackendSpec"] = None, env: Optional[Mapping[str, str]] = None
    ) -> "BackendSpec":
        """Apply environment overrides on top of *base*.

        ``REPRO_SCHEDULER`` selects the backend name;
        ``REPRO_VCS_<FIELD>`` (e.g. ``REPRO_VCS_WORK_BUDGET=20000``,
        ``REPRO_VCS_USE_TRAIL=0``) overrides individual
        :class:`VcsConfig` fields."""
        spec = base or cls()
        env = os.environ if env is None else env
        name = env.get(SCHEDULER_ENV_VAR)
        if name:
            spec = replace(spec, name=name)
        prefix_len = len(VCS_ENV_PREFIX)
        vcs_overrides = {
            key[prefix_len:].lower(): value
            for key, value in env.items()
            if key.startswith(VCS_ENV_PREFIX)
        }
        if vcs_overrides:
            merged = (spec.vcs or VcsConfig()).to_dict()
            merged.update(vcs_overrides)
            spec = replace(spec, vcs=VcsConfig.from_dict(merged))
        return spec


# --------------------------------------------------------------------------- #
# the hybrid backend: CARS pre-pass seeding the VCS candidate windows
# --------------------------------------------------------------------------- #
@dataclass
class _PrecomputedFallback:
    """A backend that replays an already-computed result.

    The hybrid backend hands this to the inner VCS as its
    budget-exhaustion fallback so the pre-pass schedule is reused instead
    of re-running the seeder on the same block."""

    result: ScheduleResult

    name = "precomputed"

    def schedule(self, block: Superblock, machine: ClusteredMachine) -> ScheduleResult:
        return self.result


@dataclass
class HybridScheduler:
    """VCS seeded by a CARS pre-pass.

    The seeder (CARS by default) schedules the block first; the cycle it
    assigned to each operation becomes a *hint* in the
    :class:`VcsConfig`, re-centring the cycle-candidate windows of the
    pinning stage on the CARS placement (see
    :func:`repro.scheduler.candidates.cycle_candidates`).  The deduction
    process still validates every decision, so the hints only steer which
    candidates are studied — the result is a valid schedule either way,
    and the whole composition is deterministic (both parts are).

    The reported ``work`` counts the pre-pass exactly once — also on
    budget exhaustion, where the pre-pass schedule itself is reused as
    the fallback (its work arrives through the fallback accounting) — so
    compile-effort comparisons against pure backends stay honest."""

    config: VcsConfig = field(default_factory=VcsConfig)
    seeder: Any = None

    name = "HYBRID"

    def schedule(self, block: Superblock, machine: ClusteredMachine) -> ScheduleResult:
        start = time.perf_counter()
        seeder = self.seeder if self.seeder is not None else create("cars")
        pre = seeder.schedule(block, machine)
        hints: Tuple[Tuple[int, int], ...] = ()
        if pre.schedule is not None:
            hints = tuple(sorted(pre.schedule.cycles.items()))
        seeded = replace(self.config, cycle_hints=hints)
        inner = VirtualClusterScheduler(seeded, fallback=_PrecomputedFallback(pre))
        result = inner.schedule(block, machine)
        result.scheduler = self.name
        if not result.fallback_used:
            # The fallback path already charged pre.work via fallback
            # accounting (work = budget.spent + fallback.work).
            result.work += pre.work
        result.wall_time = time.perf_counter() - start
        return result


def _make_hybrid(vcs_config: Optional[VcsConfig] = None, **options: Any) -> HybridScheduler:
    return HybridScheduler(config=vcs_config or VcsConfig(), **options)


def _make_vcs(vcs_config: Optional[VcsConfig] = None, **options: Any) -> VirtualClusterScheduler:
    # The paper's budget-exhaustion fallback, expressed as composition:
    # the "vcs" backend embeds the "cars" backend rather than hard-wiring
    # the class inside the scheduler.
    options.setdefault("fallback", create("cars"))
    return VirtualClusterScheduler(vcs_config, **options)


register_backend(
    "cars",
    CarsScheduler,
    description="CARS baseline: unified assign-and-schedule list scheduling",
)
register_backend(
    "vcs",
    _make_vcs,
    description="the paper's virtual cluster scheduling (CARS fallback composed in)",
    uses_vcs_config=True,
)
register_backend(
    "list",
    ListScheduler,
    description="plain list scheduler with naive cluster assignment",
)
register_backend(
    "hybrid",
    _make_hybrid,
    description="CARS pre-pass seeding the VCS cycle-candidate windows",
    uses_vcs_config=True,
)
