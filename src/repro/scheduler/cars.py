"""The CARS baseline: unified assign-and-schedule list scheduling.

CARS (Kailas, Ebcioglu, Agrawala, HPCA 2001) schedules and cluster-assigns
each instruction in a single pass: instructions become ready when their
predecessors have been scheduled, are considered in priority order cycle by
cycle, and each one is placed in the cluster that minimises the copies it
needs and the load imbalance, inserting the required inter-cluster copies on
demand.  This is the state-of-the-art comparison point of the paper's
evaluation; its defining property (and weakness the proposed technique
attacks) is that every assignment decision only sees the partial schedule
built so far.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.ir.operation import OpClass, Operation
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.scheduler.schedule import Schedule, ScheduledComm, ScheduleResult


@dataclass
class _PlannedCopy:
    """A copy the current placement attempt would have to insert."""

    value: str
    producer: int
    cycle: int
    src_cluster: int


class CarsScheduler:
    """Unified assign-and-schedule list scheduler for clustered VLIWs.

    Parameters
    ----------
    cluster_policy:
        ``"cars"`` (default) ranks candidate clusters by the number of new
        copies required, then load, then index; ``"naive"`` takes the first
        cluster with free resources (used by :class:`ListScheduler`).
    max_cycles:
        Safety bound on schedule length.
    cluster_hints:
        Optional per-operation preferred clusters.  A hinted operation's
        candidate ranking is prefixed with "is this the hinted cluster?",
        so the hint wins whenever it is feasible while resource conflicts
        still override it.  This is how the policy layer's
        ``finalize_partial`` extraction replays the virtual-cluster
        decisions of a partially-deduced state through the list scheduler
        (see :mod:`repro.scheduler.policy`).  ``None`` (the default)
        leaves the ranking untouched.
    """

    name = "CARS"

    def __init__(
        self,
        cluster_policy: str = "cars",
        max_cycles: int = 10_000,
        cluster_hints: Optional[Dict[int, int]] = None,
    ) -> None:
        if cluster_policy not in ("cars", "naive"):
            raise ValueError(f"unknown cluster policy {cluster_policy!r}")
        self.cluster_policy = cluster_policy
        self.max_cycles = max_cycles
        self.cluster_hints = cluster_hints

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def schedule(self, block: Superblock, machine: ClusteredMachine) -> ScheduleResult:
        """Schedule *block* on *machine* and return the result."""
        start = time.perf_counter()
        cycles: Dict[int, int] = {}
        clusters: Dict[int, int] = {}
        comms: List[ScheduledComm] = []
        comm_cycle_by_value: Dict[str, int] = {}
        usage: Dict[Tuple[int, int, OpClass], int] = {}
        issue: Dict[Tuple[int, int], int] = {}
        bus_busy: Dict[int, int] = {}
        work = 0

        priority = self._priorities(block)
        unscheduled = set(block.op_ids)

        cycle = 0
        while unscheduled:
            if cycle > self.max_cycles:
                raise RuntimeError(
                    f"CARS exceeded {self.max_cycles} cycles on {block.name}"
                )
            ready = self._ready_ops(block, unscheduled, cycles, cycle)
            ready.sort(key=lambda op_id: (-priority[op_id], op_id))
            for op_id in ready:
                op = block.op(op_id)
                best: Optional[Tuple[Tuple, int, List[_PlannedCopy]]] = None
                for cluster in machine.cluster_ids:
                    work += 1
                    plan = self._try_place(
                        block,
                        machine,
                        op,
                        cluster,
                        cycle,
                        cycles,
                        clusters,
                        comm_cycle_by_value,
                        usage,
                        issue,
                        bus_busy,
                    )
                    if plan is None:
                        continue
                    copies = plan
                    load = sum(1 for c in clusters.values() if c == cluster)
                    if self.cluster_policy == "naive":
                        cost = (cluster,)
                    else:
                        cost = (len(copies), load, cluster)
                        hint = None if self.cluster_hints is None else self.cluster_hints.get(op_id)
                        if hint is not None:
                            cost = ((0 if cluster == hint else 1),) + cost
                    if best is None or cost < best[0]:
                        best = (cost, cluster, copies)
                if best is None:
                    continue
                _, cluster, copies = best
                self._commit(
                    block,
                    machine,
                    op,
                    cluster,
                    cycle,
                    copies,
                    cycles,
                    clusters,
                    comms,
                    comm_cycle_by_value,
                    usage,
                    issue,
                    bus_busy,
                )
                unscheduled.discard(op_id)
            cycle += 1

        schedule = Schedule(block=block, machine=machine, cycles=cycles, clusters=clusters, comms=comms)
        return ScheduleResult(
            scheduler=self.name,
            block=block,
            machine=machine,
            schedule=schedule,
            work=work,
            wall_time=time.perf_counter() - start,
        )

    # ------------------------------------------------------------------ #
    # internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _priorities(block: Superblock) -> Dict[int, float]:
        """Critical-path height of every operation, biased by exit weight."""
        graph = block.graph
        height: Dict[int, float] = {}
        for op_id in reversed(graph.topological_order()):
            op = block.op(op_id)
            base = float(op.latency)
            if op.is_exit:
                base += 2.0 * op.exit_prob
            succ_part = max(
                (edge.latency + height[edge.dst] for edge in graph.successors(op_id)),
                default=0.0,
            )
            height[op_id] = base + succ_part
        return height

    @staticmethod
    def _ready_ops(
        block: Superblock,
        unscheduled: set,
        cycles: Dict[int, int],
        cycle: int,
    ) -> List[int]:
        """Operations whose predecessors are scheduled and whose non-register
        dependences are satisfied at *cycle* (register timing is checked per
        candidate cluster)."""
        ready = []
        for op_id in unscheduled:
            ok = True
            for edge in block.graph.predecessors(op_id):
                if edge.src not in cycles:
                    ok = False
                    break
                if not edge.is_register_edge and cycle < cycles[edge.src] + edge.latency:
                    ok = False
                    break
            if ok:
                ready.append(op_id)
        return ready

    def _try_place(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        op: Operation,
        cluster: int,
        cycle: int,
        cycles: Dict[int, int],
        clusters: Dict[int, int],
        comm_cycle_by_value: Dict[str, int],
        usage: Dict[Tuple[int, int, OpClass], int],
        issue: Dict[Tuple[int, int], int],
        bus_busy: Dict[int, int],
    ) -> Optional[List[_PlannedCopy]]:
        """Check whether *op* fits in (*cycle*, *cluster*); return the copies
        that would have to be inserted, or None when placement is impossible."""
        if not machine.can_execute(cluster, op):
            return None
        if usage.get((cycle, cluster, op.op_class), 0) >= machine.fu_count(cluster, op.op_class):
            return None
        if issue.get((cycle, cluster), 0) + 1 > machine.cluster(cluster).issue_width:
            return None

        bus_latency = machine.copy_latency
        occupancy = machine.copy_occupancy
        planned: List[_PlannedCopy] = []
        planned_bus: Dict[int, int] = {}

        for edge in block.graph.predecessors(op.op_id):
            if not edge.is_register_edge:
                continue
            producer = edge.src
            producer_cycle = cycles[producer]
            producer_cluster = clusters[producer]
            ready_local = producer_cycle + block.op(producer).latency
            if producer_cluster == cluster:
                if cycle < ready_local:
                    return None
                continue
            # The value must arrive over the bus.
            existing = comm_cycle_by_value.get(edge.value)
            if existing is not None:
                if cycle < existing + bus_latency:
                    return None
                continue
            already = next((p for p in planned if p.value == edge.value), None)
            if already is not None:
                if cycle < already.cycle + bus_latency:
                    return None
                continue
            # Insert a new copy: earliest bus slot after the producer finishes
            # that still arrives in time.
            slot = None
            for candidate in range(ready_local, cycle - bus_latency + 1):
                free = all(
                    bus_busy.get(candidate + k, 0) + planned_bus.get(candidate + k, 0)
                    < machine.channel_count
                    for k in range(occupancy)
                )
                if free:
                    slot = candidate
                    break
            if slot is None:
                return None
            planned.append(
                _PlannedCopy(
                    value=edge.value,
                    producer=producer,
                    cycle=slot,
                    src_cluster=producer_cluster,
                )
            )
            for k in range(occupancy):
                planned_bus[slot + k] = planned_bus.get(slot + k, 0) + 1

        if machine.copies_use_issue:
            same_cycle_copies = sum(
                1 for p in planned if p.cycle == cycle and p.src_cluster == cluster
            )
            if (
                issue.get((cycle, cluster), 0) + 1 + same_cycle_copies
                > machine.cluster(cluster).issue_width
            ):
                return None
        return planned

    def _commit(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        op: Operation,
        cluster: int,
        cycle: int,
        copies: List[_PlannedCopy],
        cycles: Dict[int, int],
        clusters: Dict[int, int],
        comms: List[ScheduledComm],
        comm_cycle_by_value: Dict[str, int],
        usage: Dict[Tuple[int, int, OpClass], int],
        issue: Dict[Tuple[int, int], int],
        bus_busy: Dict[int, int],
    ) -> None:
        cycles[op.op_id] = cycle
        clusters[op.op_id] = cluster
        usage[(cycle, cluster, op.op_class)] = usage.get((cycle, cluster, op.op_class), 0) + 1
        issue[(cycle, cluster)] = issue.get((cycle, cluster), 0) + 1
        occupancy = machine.copy_occupancy
        for copy in copies:
            comms.append(
                ScheduledComm(
                    value=copy.value,
                    producer=copy.producer,
                    cycle=copy.cycle,
                    src_cluster=copy.src_cluster,
                    dst_cluster=cluster,
                )
            )
            comm_cycle_by_value[copy.value] = copy.cycle
            for k in range(occupancy):
                bus_busy[copy.cycle + k] = bus_busy.get(copy.cycle + k, 0) + 1
            if machine.copies_use_issue:
                issue[(copy.cycle, copy.src_cluster)] = (
                    issue.get((copy.cycle, copy.src_cluster), 0) + 1
                )
