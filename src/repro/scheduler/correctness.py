"""Schedule validity checking (Section 4.5 of the paper, generalised).

A schedule is valid when every operation is placed in a cycle and a cluster
that can execute it, all dependences are honoured (crossing-cluster register
values through a scheduled copy with the bus latency), no cycle
over-subscribes a cluster's functional units or issue width, and no cycle
over-subscribes the bus.  The same checker is applied to the output of every
scheduler in the repository, so the comparison between the proposed
technique and the baselines is on equal, machine-checked footing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.ir.operation import OpClass
from repro.scheduler.schedule import Schedule


class ScheduleError(Exception):
    """A schedule violates a validity condition."""


@dataclass
class ValidationReport:
    """Outcome of validating one schedule."""

    errors: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.errors

    def raise_if_invalid(self) -> None:
        if self.errors:
            raise ScheduleError("; ".join(self.errors))

    def __bool__(self) -> bool:
        return self.ok


def validate_schedule(schedule: Schedule, max_errors: int = 50) -> ValidationReport:
    """Check *schedule* against every validity condition."""
    report = ValidationReport()
    block, machine = schedule.block, schedule.machine

    def note(message: str) -> None:
        if len(report.errors) < max_errors:
            report.errors.append(message)

    # ------------------------------------------------------------------ #
    # completeness and well-formedness
    # ------------------------------------------------------------------ #
    for op in block.operations:
        if op.op_id not in schedule.cycles:
            note(f"operation {op.op_id} ({op.name}) has no cycle")
            continue
        if schedule.cycles[op.op_id] < 0:
            note(f"operation {op.op_id} scheduled in negative cycle")
        if op.op_id not in schedule.clusters:
            note(f"operation {op.op_id} ({op.name}) has no cluster")
            continue
        cluster = schedule.clusters[op.op_id]
        if cluster not in machine.cluster_ids:
            note(f"operation {op.op_id} assigned to unknown cluster {cluster}")
            continue
        if not machine.can_execute(cluster, op):
            note(
                f"cluster {cluster} has no {op.op_class} unit for operation {op.op_id}"
            )

    if report.errors:
        return report

    # ------------------------------------------------------------------ #
    # dependences (including inter-cluster communication timing)
    # ------------------------------------------------------------------ #
    bus_latency = machine.copy_latency
    for edge in block.graph.edges():
        src_cycle = schedule.cycles[edge.src]
        dst_cycle = schedule.cycles[edge.dst]
        crosses = (
            edge.is_register_edge
            and schedule.clusters[edge.src] != schedule.clusters[edge.dst]
        )
        if not crosses:
            if dst_cycle < src_cycle + edge.latency:
                note(
                    f"dependence {edge.src}->{edge.dst} violated: "
                    f"{dst_cycle} < {src_cycle} + {edge.latency}"
                )
            continue
        comm = schedule.comm_for_value(edge.value)
        if comm is None:
            note(
                f"value {edge.value!r} crosses clusters "
                f"({edge.src}@{schedule.clusters[edge.src]} -> "
                f"{edge.dst}@{schedule.clusters[edge.dst]}) without a copy"
            )
            continue
        if comm.cycle < src_cycle + block.op(edge.src).latency:
            note(
                f"copy of {edge.value!r} issued in cycle {comm.cycle}, before the "
                f"producer's result is ready in cycle {src_cycle + block.op(edge.src).latency}"
            )
        if dst_cycle < comm.cycle + bus_latency:
            note(
                f"consumer {edge.dst} of {edge.value!r} issues in cycle {dst_cycle}, before "
                f"the copy completes in cycle {comm.cycle + bus_latency}"
            )

    for comm in schedule.comms:
        if comm.producer in schedule.clusters and comm.src_cluster != schedule.clusters[comm.producer]:
            note(
                f"copy of {comm.value!r} reads from cluster {comm.src_cluster} but its "
                f"producer {comm.producer} is in cluster {schedule.clusters[comm.producer]}"
            )

    # ------------------------------------------------------------------ #
    # per-cycle, per-cluster resources
    # ------------------------------------------------------------------ #
    usage: Dict[Tuple[int, int, OpClass], int] = {}
    issue: Dict[Tuple[int, int], int] = {}
    for op in block.operations:
        cycle = schedule.cycles[op.op_id]
        cluster = schedule.clusters[op.op_id]
        usage[(cycle, cluster, op.op_class)] = usage.get((cycle, cluster, op.op_class), 0) + 1
        issue[(cycle, cluster)] = issue.get((cycle, cluster), 0) + 1
    if machine.copies_use_issue:
        for comm in schedule.comms:
            issue[(comm.cycle, comm.src_cluster)] = issue.get((comm.cycle, comm.src_cluster), 0) + 1

    for (cycle, cluster, op_class), count in sorted(
        usage.items(), key=lambda item: (item[0][0], item[0][1], item[0][2].value)
    ):
        capacity = machine.fu_count(cluster, op_class)
        if count > capacity:
            note(
                f"cycle {cycle}, cluster {cluster}: {count} {op_class} operations, "
                f"only {capacity} unit(s)"
            )
    for (cycle, cluster), count in sorted(issue.items()):
        width = machine.cluster(cluster).issue_width
        if count > width:
            note(
                f"cycle {cycle}, cluster {cluster}: {count} operations issued, "
                f"issue width is {width}"
            )

    # ------------------------------------------------------------------ #
    # interconnect occupancy
    # ------------------------------------------------------------------ #
    if schedule.comms:
        occupancy = machine.copy_occupancy
        channels = machine.channel_count
        last_cycle = max(c.cycle for c in schedule.comms) + occupancy
        for cycle in range(last_cycle + 1):
            busy = sum(1 for c in schedule.comms if c.occupies(cycle, occupancy))
            if busy > channels:
                note(f"cycle {cycle}: {busy} transfers on {channels} channel(s)")

    # ------------------------------------------------------------------ #
    # register-file pressure (only for machines that constrain it)
    # ------------------------------------------------------------------ #
    if any(c.n_registers is not None for c in machine.clusters):
        for cluster, live in _peak_live_values(schedule).items():
            limit = machine.cluster(cluster).n_registers
            if limit is not None and live > limit:
                note(
                    f"cluster {cluster}: {live} values live at once, register "
                    f"file holds {limit}"
                )

    return report


def _peak_live_values(schedule: Schedule) -> Dict[int, int]:
    """Peak number of simultaneously live values per cluster.

    A value is live in a cluster from the cycle it becomes available there
    — its producing operation completing, the delivering copy arriving, or
    cycle 0 for block live-ins — until its last local read: the latest
    same-cluster consumer issue, or the issue cycle of a copy reading it
    out of the cluster.  Live-out values stay live until the schedule's
    last cycle.  This over-approximates neither re-use nor
    rematerialisation — it is the demand a register allocator would face.
    """
    block, machine = schedule.block, schedule.machine
    length = schedule.length
    # (cluster, value) -> [first_live_cycle, last_live_cycle]
    ranges: Dict[Tuple[int, str], List[int]] = {}

    def extend(cluster: int, value: str, start: int, end: int) -> None:
        slot = ranges.setdefault((cluster, value), [start, end])
        slot[0] = min(slot[0], start)
        slot[1] = max(slot[1], end)

    # A copy reads its value from the source cluster's register file when it
    # issues, and delivers it to the destination's.
    copy_reads: Dict[Tuple[int, str], int] = {}
    for comm in schedule.comms:
        key = (comm.src_cluster, comm.value)
        copy_reads[key] = max(copy_reads.get(key, -1), comm.cycle)

    def last_local_use(cluster: int, value: str, available: int) -> int:
        end = available
        if value in block.live_outs:
            end = length
        for consumer in block.graph.consumers_of(value):
            if schedule.clusters[consumer] == cluster:
                end = max(end, schedule.cycles[consumer])
        return max(end, copy_reads.get((cluster, value), end))

    for op in block.operations:
        cluster = schedule.clusters[op.op_id]
        ready = schedule.cycles[op.op_id] + op.latency
        for value in op.dests:
            extend(cluster, value, ready, last_local_use(cluster, value, ready))
    # Block live-ins occupy a register from cycle 0 in every cluster that
    # reads them directly (our model gives each consuming cluster its own
    # incoming copy of the value).
    produced = {value for op in block.operations for value in op.dests}
    for op in block.operations:
        for edge in block.graph.predecessors(op.op_id):
            if not edge.is_register_edge or edge.value in produced:
                continue
            cluster = schedule.clusters[op.op_id]
            extend(cluster, edge.value, 0, last_local_use(cluster, edge.value, 0))
    for comm in schedule.comms:
        if comm.dst_cluster is None:
            continue
        arrival = comm.cycle + machine.copy_latency
        end = arrival
        for consumer in block.graph.consumers_of(comm.value):
            if schedule.clusters[consumer] == comm.dst_cluster:
                end = max(end, schedule.cycles[consumer])
        extend(comm.dst_cluster, comm.value, arrival, end)

    peak: Dict[int, int] = {c: 0 for c in machine.cluster_ids}
    events: Dict[int, Dict[int, int]] = {c: {} for c in machine.cluster_ids}
    for (cluster, _value), (start, end) in ranges.items():
        per_cluster = events[cluster]
        per_cluster[start] = per_cluster.get(start, 0) + 1
        per_cluster[end + 1] = per_cluster.get(end + 1, 0) - 1
    for cluster, per_cluster in events.items():
        live = 0
        for cycle in sorted(per_cluster):
            live += per_cluster[cycle]
            peak[cluster] = max(peak[cluster], live)
    return peak
