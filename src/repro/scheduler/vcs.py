"""The proposed technique: virtual cluster scheduling through the scheduling
graph (Section 4 of the paper).

The driver iterates over target AWCT values from an enhanced lower bound
upwards; for each target it initialises a scheduling state through the
deduction process and runs the six decision stages:

1. decide combinations between original operations,
2. pin original operations with remaining slack to cycles,
3. eliminate out-edges (fuse VCs selected by a maximum weight matching, or
   mark them incompatible, inserting communications),
4. reduce and map virtual clusters onto physical clusters,
5. / 6. decide and pin the communications created along the way.

Whenever the deduction process proves that a candidate can neither be chosen
nor discarded, the target AWCT is abandoned and the next one is tried.  A
work budget (the compile-time proxy) or wall-clock limit aborts the whole
attempt, in which case the scheduler falls back to the CARS baseline for the
block — exactly the paper's threshold mechanism.

Hot-path design
---------------
Candidate decisions are *probed in place* using the scheduling state's
mutation trail (``checkpoint``/``rollback``) instead of deep-copying the
state per candidate: a probe applies the decision through the deduction
process, records the resulting score, and rolls the state back.  When one
of several scored candidates wins, its (deterministic) deduction is
replayed once on the live state without re-charging the work budget, so the
compile-effort accounting matches the copy-based scheme decision for
decision.  A single pristine state is built per block and rolled back
between AWCT targets and minAWCT probes, so the global estart computation
runs once and bound deltas propagate only from changed nodes.

``VcsConfig.use_trail=False`` restores copy-based probing (one full state
copy per candidate); the two modes follow the same control flow and must
produce byte-identical schedules, which the determinism tests assert.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bounds.awct import min_exit_cycles
from repro.bounds.enumeration import ExitBoundEnumerator, ExitBoundStep
from repro.deduction.consequence import (
    Change,
    ChooseCombination,
    Decision,
    DiscardCombination,
    ForbidCycle,
    FuseVCs,
    MarkVCsIncompatible,
    ScheduleInCycle,
    SetExitDeadlines,
)
from repro.deduction.engine import (
    BudgetExhausted,
    DeductionProcess,
    DeductionResult,
    WorkBudget,
)
from repro.deduction.rules import default_rules
from repro.deduction.state import SchedulingState
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.scheduler import candidates as cand
from repro.scheduler.cars import CarsScheduler
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.heuristics import state_score
from repro.scheduler.schedule import Schedule, ScheduledComm, ScheduleResult
from repro.sgraph.scheduling_graph import SchedulingGraph
from repro.vcluster.mapping import map_virtual_to_physical


@dataclass
class VcsConfig:
    """Tunable knobs of the proposed scheduler.

    The defaults correspond to the configuration used for the main results;
    the ablation benchmarks flip individual flags.
    """

    #: Deterministic compile-effort limit (deduction rule firings); None = unlimited.
    work_budget: Optional[int] = None
    #: Wall-clock limit in seconds; None = unlimited.
    time_limit: Optional[float] = None
    #: Maximum number of AWCT targets tried before giving up.
    max_awct_steps: int = 48
    #: Stage 1 only studies pairs whose combination slack is at most this
    #: value (pairs forced to overlap are always studied); the remaining
    #: pairs are decided implicitly by the cycle-pinning stage.  The default
    #: of -1 restricts stage 1 to pairs that are forced to overlap: electing
    #: to rigidly link two operations that could also be kept apart turned
    #: out to over-constrain the schedule more often than it helped.
    stage1_slack_limit: float = -1.0
    #: Hard cap on stage-1 decisions per AWCT target.
    stage1_max_decisions: int = 64
    #: Number of cycles studied per operation in stages 2 and 6.
    cycle_candidates: int = 2
    #: Enable the partially-linked-communication rules (ablation A1).
    enable_plc: bool = True
    #: Map virtual clusters eagerly after stage 1 instead of postponing the
    #: mapping to the end (ablation A2).
    eager_mapping: bool = False
    #: Use the maximum weight matching in stage 3 (ablation A3); when off,
    #: out-edges are eliminated one highest-weight pair at a time.
    use_matching: bool = True
    #: Fall back to CARS when the budget is exhausted (the paper's timeout
    #: mechanism).  When False the scheduler raises instead.
    fallback_to_cars: bool = True
    #: Probe candidate decisions in place via the mutation trail (rollback
    #: on contradiction) instead of deep-copying the state per candidate.
    #: Both modes follow the same decision sequence; False exists for the
    #: determinism tests and the perf harness.
    use_trail: bool = True


def _new_stats() -> Dict[str, int]:
    return {
        "probes": 0,
        "copies": 0,
        "rollbacks": 0,
        "redos": 0,
        "copies_avoided": 0,
        "trail_entries_undone": 0,
    }


class VirtualClusterScheduler:
    """Scheduler implementing the paper's technique."""

    name = "VCS"

    def __init__(self, config: Optional[VcsConfig] = None) -> None:
        self.config = config or VcsConfig()
        self._deadline: Optional[float] = None
        #: Probe/copy counters of the most recent :meth:`schedule` call.
        self.stats: Dict[str, int] = _new_stats()

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def schedule(self, block: Superblock, machine: ClusteredMachine) -> ScheduleResult:
        """Schedule *block* on *machine*; never returns without a schedule
        (falls back to CARS on budget exhaustion unless configured not to)."""
        start = time.perf_counter()
        self._deadline = (
            start + self.config.time_limit if self.config.time_limit is not None else None
        )
        self.stats = _new_stats()
        dp = DeductionProcess(rules=default_rules(enable_plc=self.config.enable_plc))
        budget = WorkBudget(self.config.work_budget)
        sgraph = SchedulingGraph(block, machine)

        # Trail mode reuses one pristine state for every minAWCT probe and
        # AWCT target (rolled back in between); copy mode rebuilds it.
        shared: Optional[SchedulingState] = None
        pristine = 0
        if self.config.use_trail:
            shared = SchedulingState(block, machine, sgraph)
            pristine = shared.checkpoint()

        steps_tried = 0
        timed_out = False
        try:
            initial = self._tighten_exit_bounds(
                block, machine, sgraph, dp, budget, shared=shared, pristine=pristine
            )
            enumerator = ExitBoundEnumerator(block, machine, initial_cycles=initial)
            for target in enumerator:
                steps_tried += 1
                if steps_tried > self.config.max_awct_steps:
                    break
                self._check_time()
                if shared is not None:
                    self._rollback(shared, pristine)
                state = self._try_target(
                    block, machine, sgraph, dp, target, budget, shared
                )
                if state is None:
                    continue
                schedule = self._extract(state, machine)
                if schedule is None:
                    continue
                if not validate_schedule(schedule).ok:
                    continue
                return ScheduleResult(
                    scheduler=self.name,
                    block=block,
                    machine=machine,
                    schedule=schedule,
                    work=budget.spent,
                    wall_time=time.perf_counter() - start,
                    awct_target_steps=steps_tried,
                    stats=dict(self.stats),
                )
        except BudgetExhausted:
            timed_out = True

        if not self.config.fallback_to_cars:
            return ScheduleResult(
                scheduler=self.name,
                block=block,
                machine=machine,
                schedule=None,
                work=budget.spent,
                wall_time=time.perf_counter() - start,
                timed_out=timed_out,
                awct_target_steps=steps_tried,
                stats=dict(self.stats),
            )
        fallback = CarsScheduler().schedule(block, machine)
        return ScheduleResult(
            scheduler=self.name,
            block=block,
            machine=machine,
            schedule=fallback.schedule,
            work=budget.spent + fallback.work,
            wall_time=time.perf_counter() - start,
            timed_out=timed_out,
            awct_target_steps=steps_tried,
            fallback_used=True,
            stats=dict(self.stats),
        )

    # ------------------------------------------------------------------ #
    # probing primitives
    # ------------------------------------------------------------------ #
    def _check_time(self) -> None:
        if self._deadline is not None and time.perf_counter() > self._deadline:
            raise BudgetExhausted("wall-clock limit exceeded")

    def _apply_sequence(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: Optional[WorkBudget],
    ) -> DeductionResult:
        """Apply *decisions* to *state* in place, accumulating consequences
        and work across the whole sequence (multi-decision studies report
        the total, not just the last decision's share)."""
        consequences: List[Change] = []
        work = 0
        for decision in decisions:
            result = dp.apply(state, decision, budget=budget, in_place=True)
            consequences.extend(result.consequences)
            work += result.work
            if not result.ok:
                return DeductionResult(
                    state=state,
                    consequences=consequences,
                    contradiction=result.contradiction,
                    work=work,
                )
        return DeductionResult(state=state, consequences=consequences, work=work)

    def _study(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: WorkBudget,
    ) -> DeductionResult:
        """Copy mode: evaluate a sequence of decisions on a copy of *state*."""
        self.stats["copies"] += 1
        return self._apply_sequence(dp, state.copy(), decisions, budget)

    def _probe(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: WorkBudget,
    ) -> Tuple[int, DeductionResult]:
        """Trail mode: apply *decisions* in place on top of a checkpoint.

        The caller decides whether to keep the mutations or roll back to the
        returned mark."""
        mark = state.checkpoint()
        self.stats["probes"] += 1
        self.stats["copies_avoided"] += 1
        return mark, self._apply_sequence(dp, state, decisions, budget)

    def _rollback(self, state: SchedulingState, mark: int) -> None:
        self.stats["rollbacks"] += 1
        self.stats["trail_entries_undone"] += state.rollback(mark)

    def _rollback_capture(self, state: SchedulingState, mark: int) -> List[tuple]:
        self.stats["rollbacks"] += 1
        log = state.rollback_capture(mark)
        self.stats["trail_entries_undone"] += len(log)
        return log

    def _redo(self, state: SchedulingState, log: List[tuple]) -> None:
        """Keep a probed winner by re-applying its captured mutations —
        byte-exact and without re-running its deduction (the work was
        already charged when the candidate was probed)."""
        self.stats["redos"] += 1
        state.redo(log)

    def _try_keep(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        decisions: Sequence[Decision],
        budget: WorkBudget,
    ) -> Optional[SchedulingState]:
        """Attempt *decisions*; on success return the resulting current
        state (mutated in place in trail mode, a studied copy otherwise),
        on contradiction return None with *state* unchanged."""
        if self.config.use_trail:
            mark, result = self._probe(dp, state, decisions, budget)
            if result.ok:
                return state
            self._rollback(state, mark)
            return None
        study = self._study(dp, state, decisions, budget)
        return study.state if study.ok else None

    def _tighten_exit_bounds(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        sgraph: SchedulingGraph,
        dp: DeductionProcess,
        budget: WorkBudget,
        max_probe: int = 6,
        shared: Optional[SchedulingState] = None,
        pristine: int = 0,
    ) -> Dict[int, int]:
        """Enhanced minAWCT (Section 4.2): probe each exit's earliest cycle
        through the deduction process and push it up when the DP proves it
        impossible."""
        base = min_exit_cycles(block, machine)
        tightened: Dict[int, int] = {}
        for exit_id, cycle in base.items():
            chosen = cycle
            for attempt in range(max_probe):
                self._check_time()
                if shared is not None:
                    self._rollback(shared, pristine)
                    self.stats["copies_avoided"] += 1
                    probe = shared
                else:
                    probe = SchedulingState(block, machine, sgraph)
                result = dp.apply(
                    probe,
                    SetExitDeadlines.from_mapping({exit_id: chosen}),
                    budget=budget,
                    in_place=True,
                )
                if result.ok:
                    break
                chosen += 1
            tightened[exit_id] = chosen
        if shared is not None:
            self._rollback(shared, pristine)
        return tightened

    # ------------------------------------------------------------------ #
    # per-target scheduling
    # ------------------------------------------------------------------ #
    def _try_target(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        sgraph: SchedulingGraph,
        dp: DeductionProcess,
        target: ExitBoundStep,
        budget: WorkBudget,
        shared: Optional[SchedulingState] = None,
    ) -> Optional[SchedulingState]:
        if shared is not None:
            state = shared  # already rolled back to pristine by the caller
            self.stats["copies_avoided"] += 1
        else:
            state = SchedulingState(block, machine, sgraph)
        result = dp.apply(
            state,
            SetExitDeadlines.from_mapping(target.exit_cycles),
            budget=budget,
            in_place=True,
        )
        if not result.ok:
            return None
        state = result.state

        if self.config.eager_mapping:
            stages = [
                self._stage_combinations,
                self._stage_eliminate_outedges,
                self._stage_final_mapping,
                self._stage_fix_cycles,
                self._stage_fix_communications,
            ]
        else:
            stages = [
                self._stage_combinations,
                self._stage_fix_cycles,
                self._stage_eliminate_outedges,
                self._stage_final_mapping,
                self._stage_fix_communications,
            ]
        for stage in stages:
            self._check_time()
            state = stage(dp, state, budget)
            if state is None:
                return None
        return state

    # ------------------------------------------------------------------ #
    # stage 1: combinations between original operations
    # ------------------------------------------------------------------ #
    def _stage_combinations(
        self, dp: DeductionProcess, state: SchedulingState, budget: WorkBudget
    ) -> Optional[SchedulingState]:
        decisions_made = 0
        while decisions_made < self.config.stage1_max_decisions:
            self._check_time()
            pick = cand.most_constraining_pair(state)
            if pick is None:
                return state
            u, v, slack = pick
            forced = state.must_overlap(u, v)
            if not forced and slack > self.config.stage1_slack_limit:
                return state
            decisions_made += 1

            if self.config.use_trail:
                outcome = self._decide_pair_in_place(dp, state, u, v, budget)
                if outcome is None:
                    return None
                continue

            viable: List[Tuple[Tuple, int, SchedulingState]] = []
            for distance in list(state.remaining_combinations(u, v)):
                study = self._study(dp, state, [ChooseCombination(u, v, distance)], budget)
                if study.ok:
                    viable.append((state_score(study.state), distance, study.state))
                else:
                    # The deduction process proved this combination leads to
                    # no valid schedule: discarding it is mandatory.
                    committed = self._study(
                        dp, state, [DiscardCombination(u, v, distance)], budget
                    )
                    if not committed.ok:
                        return None
                    state = committed.state

            if viable:
                viable.sort(key=lambda item: (item[0], item[1]))
                state = viable[0][2]
            elif not state.is_pair_decided(u, v):
                # The pair can neither be chosen nor discarded: no schedule
                # exists for this AWCT target.
                return None
        return state

    def _decide_pair_in_place(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        u: int,
        v: int,
        budget: WorkBudget,
    ) -> Optional[SchedulingState]:
        """Trail-mode body of one stage-1 iteration.

        Probes every remaining combination of the pair (rolling each back
        with redo capture), commits the mandatory discards of contradictory
        combinations as they are found — later probes must see them, exactly
        like the copy-based loop — and finally keeps the winner by rolling
        back to the winner's probe point (undoing discards committed after
        it, which the winning lineage never saw) and redoing the captured
        mutations.  The result is byte-identical to the copy the copy-based
        scheduler would have kept, without re-running any deduction."""
        best: Optional[Tuple[Tuple, int, int, List[tuple]]] = None  # (score, distance, mark, redo log)
        for distance in list(state.remaining_combinations(u, v)):
            mark, study = self._probe(dp, state, [ChooseCombination(u, v, distance)], budget)
            if study.ok:
                score = state_score(state)
                log = self._rollback_capture(state, mark)
                if best is None or (score, distance) < (best[0], best[1]):
                    best = (score, distance, mark, log)
            else:
                self._rollback(state, mark)
                # Discarding the contradictory combination is mandatory.
                commit = self._apply_sequence(
                    dp, state, [DiscardCombination(u, v, distance)], budget
                )
                if not commit.ok:
                    return None

        if best is not None:
            _, _, mark, log = best
            self._rollback(state, mark)
            self._redo(state, log)
            return state
        if not state.is_pair_decided(u, v):
            # The pair can neither be chosen nor discarded: no schedule
            # exists for this AWCT target.
            return None
        return state

    # ------------------------------------------------------------------ #
    # stage 2 / 6: pin operations with slack to cycles
    # ------------------------------------------------------------------ #
    def _fix_cycles(
        self,
        dp: DeductionProcess,
        state: SchedulingState,
        budget: WorkBudget,
        communications: bool,
    ) -> Optional[SchedulingState]:
        use_trail = self.config.use_trail
        safety = 0
        limit = 8 * (len(state.all_ids) + 4)
        while True:
            safety += 1
            if safety > limit:
                return None
            self._check_time()
            op_id = cand.lowest_slack_operation(state, communications=communications)
            if op_id is None:
                return state
            # Copies are few and bus contention is unforgiving (especially on
            # a non-pipelined bus), so more alternative cycles are studied
            # for them than for ordinary operations.
            n_candidates = (
                max(4, self.config.cycle_candidates)
                if communications
                else self.config.cycle_candidates
            )
            cycles = cand.cycle_candidates(state, op_id, n_candidates)
            earliest_contradicts = False
            if use_trail:
                best: Optional[Tuple[Tuple, int, List[tuple]]] = None  # (score, cycle, redo log)
                for cycle in cycles:
                    mark, study = self._probe(dp, state, [ScheduleInCycle(op_id, cycle)], budget)
                    if study.ok:
                        score = state_score(state)
                        log = self._rollback_capture(state, mark)
                        if best is None or (score, cycle) < (best[0], best[1]):
                            best = (score, cycle, log)
                    else:
                        self._rollback(state, mark)
                        if cycle == state.estart[op_id]:
                            earliest_contradicts = True
                if best is not None:
                    self._redo(state, best[2])
                    continue
            else:
                viable: List[Tuple[Tuple, int, SchedulingState]] = []
                for cycle in cycles:
                    study = self._study(dp, state, [ScheduleInCycle(op_id, cycle)], budget)
                    if study.ok:
                        viable.append((state_score(study.state), cycle, study.state))
                    elif cycle == state.estart[op_id]:
                        earliest_contradicts = True
                if viable:
                    viable.sort(key=lambda item: (item[0], item[1]))
                    state = viable[0][2]
                    continue
            if earliest_contradicts and state.slack(op_id) > 0:
                committed = self._try_keep(
                    dp, state, [ForbidCycle(op_id, state.estart[op_id])], budget
                )
                if committed is None:
                    return None
                state = committed
                continue
            return None

    def _stage_fix_cycles(
        self, dp: DeductionProcess, state: SchedulingState, budget: WorkBudget
    ) -> Optional[SchedulingState]:
        return self._fix_cycles(dp, state, budget, communications=False)

    def _stage_fix_communications(
        self, dp: DeductionProcess, state: SchedulingState, budget: WorkBudget
    ) -> Optional[SchedulingState]:
        if self.config.use_trail:
            self.stats["copies_avoided"] += 1
        else:
            state = state.copy()
            self.stats["copies"] += 1
        state.drop_unresolved_plcs()
        return self._fix_cycles(dp, state, budget, communications=True)

    # ------------------------------------------------------------------ #
    # stage 3: eliminate out-edges
    # ------------------------------------------------------------------ #
    def _stage_eliminate_outedges(
        self, dp: DeductionProcess, state: SchedulingState, budget: WorkBudget
    ) -> Optional[SchedulingState]:
        safety = 0
        limit = 4 * len(state.original_ids) + 16
        while True:
            safety += 1
            if safety > limit:
                return None
            self._check_time()
            if not state.outedges():
                return state

            if self.config.use_matching:
                pairs = cand.matching_candidates(state)
                if len(pairs) > 1:
                    kept = self._try_keep(dp, state, [FuseVCs(pairs=tuple(pairs))], budget)
                    if kept is not None:
                        state = kept
                        continue
                    # A failed matching is not decomposed into per-pair
                    # discards (Section 4.4.2); fall through to the single
                    # highest-weight edge.

            pair = cand.highest_weight_pair(state)
            if pair is None:
                return state
            a, b = pair
            kept = self._try_keep(dp, state, [FuseVCs.single(a, b)], budget)
            if kept is not None:
                state = kept
                continue
            kept = self._try_keep(dp, state, [MarkVCsIncompatible.single(a, b)], budget)
            if kept is not None:
                state = kept
                continue
            return None

    # ------------------------------------------------------------------ #
    # stage 4: final mapping of virtual clusters to physical clusters
    # ------------------------------------------------------------------ #
    def _stage_final_mapping(
        self, dp: DeductionProcess, state: SchedulingState, budget: WorkBudget
    ) -> Optional[SchedulingState]:
        n_clusters = state.machine.n_clusters
        safety = 0
        limit = 4 * len(state.original_ids) + 16
        while True:
            safety += 1
            if safety > limit:
                return None
            self._check_time()
            if state.vcg.n_vcs <= n_clusters:
                mapping = map_virtual_to_physical(state.vcg, n_clusters, injective=True)
                if mapping is not None:
                    return state
            candidates = cand.fusion_candidates_for_mapping(state)
            if not candidates:
                return None
            progressed = False
            for a, b in candidates:
                kept = self._try_keep(dp, state, [FuseVCs.single(a, b)], budget)
                if kept is not None:
                    state = kept
                    progressed = True
                    break
                kept = self._try_keep(dp, state, [MarkVCsIncompatible.single(a, b)], budget)
                if kept is not None:
                    state = kept
                    progressed = True
                    break
            if not progressed:
                return None

    # ------------------------------------------------------------------ #
    # schedule extraction
    # ------------------------------------------------------------------ #
    @staticmethod
    def _extract(state: SchedulingState, machine: ClusteredMachine) -> Optional[Schedule]:
        mapping = map_virtual_to_physical(state.vcg, machine.n_clusters, injective=True)
        if mapping is None:
            mapping = map_virtual_to_physical(state.vcg, machine.n_clusters)
        if mapping is None:
            return None
        cycles: Dict[int, int] = {}
        clusters: Dict[int, int] = {}
        for op_id in state.original_ids:
            if not state.is_fixed(op_id):
                return None
            cycles[op_id] = state.estart[op_id]
            clusters[op_id] = mapping[state.vcg.vc_of(op_id)]
        comms: List[ScheduledComm] = []
        for comm in state.comms.fully_linked():
            if not state.is_fixed(comm.comm_id):
                return None
            src = clusters.get(comm.producer, 0)
            dst = clusters.get(comm.consumer) if comm.consumer is not None else None
            comms.append(
                ScheduledComm(
                    value=comm.value or f"comm{comm.comm_id}",
                    producer=comm.producer if comm.producer is not None else -1,
                    cycle=state.estart[comm.comm_id],
                    src_cluster=src,
                    dst_cluster=dst,
                )
            )
        return Schedule(
            block=state.block,
            machine=machine,
            cycles=cycles,
            clusters=clusters,
            comms=comms,
        )
