"""The proposed technique: virtual cluster scheduling through the scheduling
graph (Section 4 of the paper).

The driver iterates over target AWCT values from an enhanced lower bound
upwards; for each target it initialises a scheduling state through the
deduction process and runs the paper's six decision stages — now a
composable :class:`~repro.scheduler.pipeline.StagePipeline` of independent
:class:`~repro.scheduler.pipeline.DecisionStage` objects (combinations,
fix-cycles, eliminate-outedges, final-mapping, fix-communications,
extraction) sharing a :class:`~repro.scheduler.pipeline.StageContext`.
The stage order is configuration (``VcsConfig.stage_order``), with the
paper's order as the default and the A2 eager-mapping ablation as a
reordering rather than a separate code path.

Whenever the deduction process proves that a candidate can neither be chosen
nor discarded, the target AWCT is abandoned and the next one is tried.  A
work budget (the compile-time proxy) or wall-clock limit aborts the whole
attempt, in which case the scheduler falls back to its ``fallback`` backend
for the block — CARS by default, exactly the paper's threshold mechanism,
but expressed as backend composition (any registered scheduler backend can
stand in).

Hot-path design
---------------
Candidate decisions are *probed in place* using the scheduling state's
mutation trail (``checkpoint``/``rollback``) instead of deep-copying the
state per candidate: a probe applies the decision through the deduction
process, records the resulting score, and rolls the state back.  When one
of several scored candidates wins, its (deterministic) deduction is
replayed once on the live state without re-charging the work budget, so the
compile-effort accounting matches the copy-based scheme decision for
decision.  A single pristine state is built per block and rolled back
between AWCT targets and minAWCT probes, so the global estart computation
runs once and bound deltas propagate only from changed nodes.

``VcsConfig.use_trail=False`` restores copy-based probing (one full state
copy per candidate); the two modes follow the same control flow and must
produce byte-identical schedules, which the determinism tests assert.
The probing primitives live in
:class:`~repro.scheduler.pipeline.ProbeEngine`, shared by all stages.
"""

from __future__ import annotations

import dataclasses
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Tuple

from repro.bounds.awct import min_exit_cycles
from repro.bounds.enumeration import ExitBoundEnumerator, ExitBoundStep
from repro.deduction.consequence import SetExitDeadlines
from repro.deduction.engine import BudgetExhausted, DeductionProcess, WorkBudget
from repro.deduction.queue import QUEUE_MODES
from repro.deduction.rules import default_rules
from repro.deduction.state import SchedulingState
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.scheduler.correctness import validate_schedule
from repro.scheduler.pipeline import (
    ProbeEngine,
    StageContext,
    StagePipeline,
    new_probe_stats,
)
from repro.scheduler.policy import PolicyTracker, SchedulePolicy, cheap_extraction
from repro.scheduler.schedule import Schedule, ScheduleResult
from repro.sgraph.scheduling_graph import SchedulingGraph

#: ``VcsConfig`` fields coerced from strings by :meth:`VcsConfig.from_dict`
#: (environment overrides arrive as text).
_BOOL_TRUE = ("1", "true", "yes", "on")
_BOOL_FALSE = ("0", "false", "no", "off")


@dataclass
class VcsConfig:
    """Tunable knobs of the proposed scheduler.

    The defaults correspond to the configuration used for the main results;
    the ablation benchmarks flip individual flags.  The whole object is
    picklable — it travels inside :class:`repro.runner.ScheduleJob` to
    worker processes — and round-trips through :meth:`to_dict` /
    :meth:`from_dict` (the JSON/CLI/environment configuration surface).
    """

    #: Deterministic compile-effort limit (deduction rule firings); None = unlimited.
    work_budget: Optional[int] = None
    #: Wall-clock limit in seconds; None = unlimited.
    time_limit: Optional[float] = None
    #: Maximum number of AWCT targets tried before giving up.
    max_awct_steps: int = 48
    #: Stage 1 only studies pairs whose combination slack is at most this
    #: value (pairs forced to overlap are always studied); the remaining
    #: pairs are decided implicitly by the cycle-pinning stage.  The default
    #: of -1 restricts stage 1 to pairs that are forced to overlap: electing
    #: to rigidly link two operations that could also be kept apart turned
    #: out to over-constrain the schedule more often than it helped.
    stage1_slack_limit: float = -1.0
    #: Hard cap on stage-1 decisions per AWCT target.
    stage1_max_decisions: int = 64
    #: Number of cycles studied per operation in stages 2 and 6.
    cycle_candidates: int = 2
    #: Enable the partially-linked-communication rules (ablation A1).
    enable_plc: bool = True
    #: Map virtual clusters eagerly after stage 1 instead of postponing the
    #: mapping to the end (ablation A2).  Shorthand for the corresponding
    #: ``stage_order``.
    eager_mapping: bool = False
    #: Use the maximum weight matching in stage 3 (ablation A3); when off,
    #: out-edges are eliminated one highest-weight pair at a time.
    use_matching: bool = True
    #: Fall back to the fallback backend (CARS by default) when the budget
    #: is exhausted — the paper's timeout mechanism.  When False the
    #: scheduler returns a schedule-less result instead.
    fallback_to_cars: bool = True
    #: Probe candidate decisions in place via the mutation trail (rollback
    #: on contradiction) instead of deep-copying the state per candidate.
    #: Both modes follow the same decision sequence; False exists for the
    #: determinism tests and the perf harness.
    use_trail: bool = True
    #: Explicit decision-stage order (names from
    #: :func:`repro.scheduler.pipeline.available_stages`); None selects the
    #: paper's order (or the eager-mapping variant).
    stage_order: Optional[Tuple[str, ...]] = None
    #: Per-operation cycle hints ``((op_id, cycle), ...)`` biasing the
    #: cycle-candidate windows of stage 2 — the hybrid backend seeds these
    #: from a CARS pre-pass.  A tuple of pairs so the config stays
    #: picklable and comparable.
    cycle_hints: Optional[Tuple[Tuple[int, int], ...]] = None
    #: Propagation-queue discipline of the deduction process: ``"fifo"``
    #: (the paper's flat worklist, the byte-identity oracle gated in CI) or
    #: ``"tiered"`` (cheap bound events drain first, identical pending
    #: changes coalesce — same fixed point, fewer rule firings, so
    #: ``dp_work`` differs and the mode is opt-in).
    queue_mode: str = "fifo"
    #: Memoize completed in-place deductions keyed by (decision, state
    #: epoch) and replay them — identical work accounting and byte-identical
    #: state mutations — when the same decision is re-probed at the same
    #: state (the minAWCT tightening loop).  Trail mode only; copy mode
    #: ignores the flag, keeping the copy oracle cache-free.
    probe_cache: bool = True
    #: Drop cycle-pinning candidates whose probe provably contradicts on
    #: saturated per-cycle resources before probing them (see
    #: :func:`repro.scheduler.candidates.prune_cycle_candidates`).  The
    #: winning ``(score, cycle)`` is unchanged, but the skipped probes'
    #: deductions no longer charge the work budget, so ``dp_work`` differs
    #: from the gated oracle — opt-in, like ``queue_mode="tiered"``.
    prune_candidates: bool = False
    #: Stop probing a cycle-pinning round as soon as an optimistic score
    #: bound proves that no remaining candidate cycle can beat the current
    #: ``(score, cycle)`` winner.  Same winner, fewer probes — changes
    #: ``dp_work``, hence opt-in.
    probe_early_cut: bool = False
    #: Budget policy (:class:`~repro.scheduler.policy.SchedulePolicy`):
    #: limits on dp_work/wall/probes with status tiers, graceful
    #: degradation on exhaustion (``finalize_partial``) and leftover-budget
    #: refinement.  ``None`` (the default) is fail-equivalent and leaves
    #: every code path byte-identical to the policy-free scheduler.
    #: Environment form (``REPRO_VCS_POLICY``):
    #: ``"mode=finalize_partial,max_dp_work=20000"``.
    policy: Optional[SchedulePolicy] = None

    # ------------------------------------------------------------------ #
    # serialisation (CLI / JSON / environment configuration surface)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict:
        """A JSON-serialisable description (inverse of :meth:`from_dict`)."""
        out = dataclasses.asdict(self)
        if out["stage_order"] is not None:
            out["stage_order"] = list(out["stage_order"])
        if out["cycle_hints"] is not None:
            out["cycle_hints"] = [list(pair) for pair in out["cycle_hints"]]
        # asdict already recursed into the nested SchedulePolicy dataclass.
        return out

    @classmethod
    def from_dict(cls, data: Mapping) -> "VcsConfig":
        """Build a config from a mapping, coercing string values (JSON or
        environment sources); unknown keys are rejected."""
        fields = {f.name: f for f in dataclasses.fields(cls)}
        unknown = set(data) - set(fields)
        if unknown:
            raise ValueError(
                f"unknown VcsConfig keys {sorted(unknown)}; known: {sorted(fields)}"
            )
        kwargs = {}
        for key, value in data.items():
            kwargs[key] = cls._coerce(key, value)
        return cls(**kwargs)

    @staticmethod
    def _coerce(key: str, value):
        if value is None:
            return None
        if key == "policy":
            if isinstance(value, SchedulePolicy):
                return value
            if isinstance(value, str):
                # Environment/CLI form: "mode=...,max_dp_work=...".
                return SchedulePolicy.parse(value)
            if isinstance(value, Mapping):
                return SchedulePolicy.from_dict(value)
            raise ValueError(f"invalid policy {value!r} for VcsConfig.policy")
        if key == "stage_order":
            # Environment/CLI sources deliver a comma-separated string.
            if isinstance(value, str):
                value = [name.strip() for name in value.split(",") if name.strip()]
            return tuple(str(name) for name in value)
        if key == "cycle_hints":
            # String form: "op:cycle,op:cycle".
            if isinstance(value, str):
                value = [pair.split(":") for pair in value.split(",") if pair.strip()]
            return tuple((int(op), int(cycle)) for op, cycle in value)
        if key == "queue_mode":
            text = str(value).strip().lower()
            if text not in QUEUE_MODES:
                raise ValueError(
                    f"invalid queue mode {value!r} for VcsConfig.queue_mode; "
                    f"known modes: {', '.join(QUEUE_MODES)}"
                )
            return text
        if key in ("work_budget", "max_awct_steps", "stage1_max_decisions", "cycle_candidates"):
            try:
                return int(value)
            except (TypeError, ValueError):
                raise ValueError(f"invalid integer {value!r} for VcsConfig.{key}") from None
        if key in ("time_limit", "stage1_slack_limit"):
            try:
                return float(value)
            except (TypeError, ValueError):
                raise ValueError(f"invalid number {value!r} for VcsConfig.{key}") from None
        # Booleans: accept real bools and the usual textual spellings.
        if isinstance(value, str):
            text = value.strip().lower()
            if text in _BOOL_TRUE:
                return True
            if text in _BOOL_FALSE:
                return False
            raise ValueError(f"invalid boolean {value!r} for VcsConfig.{key}")
        return bool(value)

    def hints_mapping(self) -> Dict[int, int]:
        """The cycle hints as a dict (empty when unset)."""
        return dict(self.cycle_hints or ())


class VirtualClusterScheduler:
    """Scheduler implementing the paper's technique.

    Parameters
    ----------
    config:
        The :class:`VcsConfig` knobs; defaults to the main-results
        configuration.
    fallback:
        The scheduler backend used when the work budget or wall-clock
        limit is exhausted (``config.fallback_to_cars``).  Any object with
        a ``schedule(block, machine) -> ScheduleResult`` method works —
        the registry composes the default CARS baseline in, and tests can
        substitute other backends.  ``None`` builds a
        :class:`~repro.scheduler.cars.CarsScheduler` lazily.
    """

    name = "VCS"

    def __init__(self, config: Optional[VcsConfig] = None, fallback=None) -> None:
        self.config = config or VcsConfig()
        self._fallback = fallback
        self._pipeline = StagePipeline.from_config(self.config)
        #: Probe/copy counters of the most recent :meth:`schedule` call.
        self.stats: Dict[str, int] = new_probe_stats()
        #: Per-stage call counts and wall times of the most recent call.
        self.stage_timings: Dict[str, Dict[str, float]] = {}

    @property
    def stage_order(self) -> Tuple[str, ...]:
        """The effective decision-stage order of this scheduler."""
        return self._pipeline.stage_names

    def _fallback_backend(self):
        if self._fallback is None:
            from repro.scheduler.cars import CarsScheduler

            self._fallback = CarsScheduler()
        return self._fallback

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def schedule(self, block: Superblock, machine: ClusteredMachine) -> ScheduleResult:
        """Schedule *block* on *machine*; never returns without a schedule
        (falls back to the fallback backend on budget exhaustion unless
        configured not to)."""
        start = time.perf_counter()
        self.stats = new_probe_stats()
        engine = ProbeEngine(self.config, self.stats)
        dp = DeductionProcess(
            rules=default_rules(enable_plc=self.config.enable_plc),
            queue_mode=self.config.queue_mode,
        )
        budget = WorkBudget(self.config.work_budget)
        policy = self.config.policy
        tracker: Optional[PolicyTracker] = None
        if policy is not None:
            tracker = PolicyTracker(policy, budget, started=start)
            tracker.attach(budget)
            engine.tracker = tracker
            # Exhaustion recovery (rollback to the sequence entry) only
            # matters when a partially-decided state will be finalized, and
            # only trail mode has one shared state to keep consistent.
            engine.recover_on_exhaustion = policy.finalizes_partial and self.config.use_trail
        wall_limits = [
            limit
            for limit in (self.config.time_limit, policy.max_wall_s if policy else None)
            if limit is not None
        ]
        if wall_limits:
            engine.deadline = start + min(wall_limits)
        sgraph = SchedulingGraph(block, machine)
        ctx = StageContext(
            dp=dp,
            budget=budget,
            config=self.config,
            engine=engine,
            cycle_hints=self.config.hints_mapping(),
            tracker=tracker,
        )
        self.stage_timings = ctx.timings

        # Trail mode reuses one pristine state for every minAWCT probe and
        # AWCT target (rolled back in between); copy mode rebuilds it.
        shared: Optional[SchedulingState] = None
        pristine = 0
        if self.config.use_trail:
            shared = SchedulingState(block, machine, sgraph)
            pristine = shared.checkpoint()
            if self.config.probe_cache:
                engine.attach_cache(shared)

        steps_tried = 0
        timed_out = False
        try:
            initial = self._tighten_exit_bounds(
                block, machine, sgraph, ctx, shared=shared, pristine=pristine
            )
            enumerator = ExitBoundEnumerator(block, machine, initial_cycles=initial)
            for target in enumerator:
                steps_tried += 1
                if steps_tried > self.config.max_awct_steps:
                    break
                engine.check_time()
                if shared is not None:
                    engine.rollback(shared, pristine)
                state = self._try_target(block, machine, sgraph, ctx, target, shared)
                if state is None or ctx.schedule is None:
                    continue
                result = ScheduleResult(
                    scheduler=self.name,
                    block=block,
                    machine=machine,
                    schedule=ctx.schedule,
                    work=budget.spent,
                    wall_time=time.perf_counter() - start,
                    awct_target_steps=steps_tried,
                    stats=self._result_stats(dp),
                    stage_timings={k: dict(v) for k, v in ctx.timings.items()},
                )
                if tracker is not None:
                    self._refine(block, result, budget, tracker)
                    result.policy = tracker.summary(partial=False, source="vcs")
                    result.wall_time = time.perf_counter() - start
                return result
        except BudgetExhausted as exc:
            timed_out = True
            if tracker is not None:
                tracker.mark_exhausted(str(exc))

        if tracker is not None and timed_out and tracker.policy.finalizes_partial:
            return self._finalize_partial(
                block, machine, shared, budget, tracker, steps_tried, dp, ctx, start
            )

        if not self.config.fallback_to_cars:
            result = ScheduleResult(
                scheduler=self.name,
                block=block,
                machine=machine,
                schedule=None,
                work=budget.spent,
                wall_time=time.perf_counter() - start,
                timed_out=timed_out,
                awct_target_steps=steps_tried,
                stats=self._result_stats(dp),
                stage_timings={k: dict(v) for k, v in ctx.timings.items()},
            )
            if tracker is not None:
                result.policy = tracker.summary(partial=False, source="none")
            return result
        fallback = self._fallback_backend().schedule(block, machine)
        result = ScheduleResult(
            scheduler=self.name,
            block=block,
            machine=machine,
            schedule=fallback.schedule,
            work=budget.spent + fallback.work,
            wall_time=time.perf_counter() - start,
            timed_out=timed_out,
            awct_target_steps=steps_tried,
            fallback_used=True,
            stats=self._result_stats(dp),
            stage_timings={k: dict(v) for k, v in ctx.timings.items()},
        )
        if tracker is not None:
            result.policy = tracker.summary(partial=False, source="fallback")
        return result

    def _result_stats(self, dp: DeductionProcess) -> Dict[str, int]:
        """The probe counters plus the deduction engine's per-rule-class
        work split and worklist counters (all reported, never gated)."""
        stats = dict(self.stats)
        for name in sorted(dp.work_by_rule):
            stats[f"dp_rule_{name}"] = dp.work_by_rule[name]
        stats.update(dp.queue_stats)
        return stats

    # ------------------------------------------------------------------ #
    # budget-policy phases: partial finalization and refinement
    # ------------------------------------------------------------------ #
    def _finalize_partial(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        shared: Optional[SchedulingState],
        budget: WorkBudget,
        tracker: PolicyTracker,
        steps_tried: int,
        dp: DeductionProcess,
        ctx: StageContext,
        start: float,
    ) -> ScheduleResult:
        """Exhaustion under a ``finalize_partial`` policy.

        The shared trail state holds the best-so-far valid decision set
        (exhaustion recovery rolled back the aborted deduction, so it is
        consistent); freeze it and finalize cheaply — a list-scheduling
        extraction over the partially-fixed scheduling graph
        (:func:`~repro.scheduler.policy.cheap_extraction`) — then emit the
        better of that extraction and the plain fallback schedule, so the
        output is never worse than the paper's timeout mechanism.  Copy
        mode has no shared partial state; the extraction degrades to plain
        CARS there."""
        extraction = cheap_extraction(block, machine, shared)
        chosen: Optional[Schedule] = None
        source = "none"
        extra_work = 0
        if extraction is not None and extraction.schedule is not None:
            chosen, source = extraction.schedule, "partial-extraction"
            extra_work += extraction.work
        if self.config.fallback_to_cars:
            fallback = self._fallback_backend().schedule(block, machine)
            extra_work += fallback.work
            if fallback.schedule is not None and (
                chosen is None or fallback.schedule.awct < chosen.awct
            ):
                # Strict improvement only: ties keep the extraction, whose
                # cluster decisions came from the paid-for deduction.
                chosen, source = fallback.schedule, "fallback"
        if chosen is not None:
            chosen.provenance = {"policy": "finalize_partial", "source": source}
        result = ScheduleResult(
            scheduler=self.name,
            block=block,
            machine=machine,
            schedule=chosen,
            work=budget.spent + extra_work,
            wall_time=time.perf_counter() - start,
            timed_out=True,
            awct_target_steps=steps_tried,
            fallback_used=(source == "fallback"),
            stats=self._result_stats(dp),
            stage_timings={k: dict(v) for k, v in ctx.timings.items()},
        )
        result.policy = tracker.summary(partial=True, source=source)
        return result

    def _refine(
        self,
        block: Superblock,
        result: ScheduleResult,
        budget: WorkBudget,
        tracker: PolicyTracker,
    ) -> None:
        """Spend leftover budget improving a successful schedule.

        Randomized-restart / large-neighborhood re-probing: each round
        frees the worst-slack region of the current best schedule — the
        operations completing latest, which bound the AWCT — keeps every
        other operation hinted at its current cycle, and re-runs the full
        pipeline under the remaining dp_work budget.  Strict AWCT
        improvements (validated) replace the best schedule; anything else
        is discarded, so AWCT is monotone non-increasing across rounds and
        every intermediate output is a complete valid schedule — the
        anytime property.  The round RNG is seeded from the policy seed
        and the block name (:meth:`SchedulePolicy.refine_rng_seed`), never
        from process state, so refinement is deterministic.  Requires a
        dp_work limit (the "remaining budget" that bounds each round)."""
        policy = tracker.policy
        if policy.refine_rounds <= 0 or result.schedule is None or budget.limit is None:
            return
        best = result.schedule
        rng = random.Random(policy.refine_rng_seed(block.name))
        for round_no in range(policy.refine_rounds):
            remaining = budget.limit - budget.spent
            if remaining <= 0:
                break
            hints, freed = self._neighborhood_hints(best, rng, policy.refine_neighborhood)
            config = dataclasses.replace(
                self.config,
                policy=None,
                cycle_hints=hints,
                work_budget=remaining,
                time_limit=None,
                fallback_to_cars=False,
            )
            attempt = VirtualClusterScheduler(config).schedule(block, best.machine)
            entry: Dict[str, object] = {
                "round": round_no,
                "freed_ops": sorted(freed),
                "work": attempt.work,
                "awct": attempt.schedule.awct if attempt.schedule is not None else None,
            }
            try:
                budget.charge_block(attempt.work)
            except BudgetExhausted as exc:
                tracker.mark_exhausted(str(exc))
                entry["accepted"] = False
                tracker.refine_history.append(entry)
                break
            accepted = (
                attempt.schedule is not None
                and attempt.schedule.awct < best.awct
                and validate_schedule(attempt.schedule).ok
            )
            if accepted:
                best = attempt.schedule
                assert best is not None
                best.provenance = {"policy": "refine", "round": str(round_no)}
            entry["accepted"] = accepted
            entry["best_awct"] = best.awct
            tracker.refine_history.append(entry)
            tracker.refresh()
        result.schedule = best
        result.work = budget.spent

    @staticmethod
    def _neighborhood_hints(
        schedule: Schedule, rng: random.Random, neighborhood: int
    ) -> Tuple[Tuple[Tuple[int, int], ...], List[int]]:
        """One refinement round's cycle hints.

        Samples the freed region from the operations completing latest
        (twice the neighborhood size as the pool) and hints every other
        operation at its current cycle; returns ``(hints, freed_ops)``."""
        block = schedule.block
        completion = {
            op_id: cycle + block.op(op_id).latency
            for op_id, cycle in schedule.cycles.items()
        }
        ordered = sorted(completion, key=lambda op_id: (-completion[op_id], op_id))
        pool = ordered[: max(2 * neighborhood, 1)]
        k = min(len(pool), max(1, neighborhood))
        freed = set(rng.sample(pool, k))
        hints = tuple(
            sorted(
                (op_id, cycle)
                for op_id, cycle in schedule.cycles.items()
                if op_id not in freed
            )
        )
        return hints, sorted(freed)

    # ------------------------------------------------------------------ #
    # minAWCT tightening (Section 4.2)
    # ------------------------------------------------------------------ #
    def _tighten_exit_bounds(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        sgraph: SchedulingGraph,
        ctx: StageContext,
        max_probe: int = 6,
        shared: Optional[SchedulingState] = None,
        pristine: int = 0,
    ) -> Dict[int, int]:
        """Enhanced minAWCT (Section 4.2): probe each exit's earliest cycle
        through the deduction process and push it up when the DP proves it
        impossible."""
        engine = ctx.engine
        base = min_exit_cycles(block, machine)
        tightened: Dict[int, int] = {}
        # A tightening probe's key can only recur as the first AWCT target,
        # and that target keys on the *full* exit mapping — so recording a
        # replay log (capture + redo of the whole span) pays off only for
        # single-exit blocks.  Multi-exit probes stay lookup-only.
        memoize = len(base) == 1
        for exit_id, cycle in base.items():
            chosen = cycle
            for attempt in range(max_probe):
                engine.check_time()
                if shared is not None:
                    engine.rollback(shared, pristine)
                    engine.stats["copies_avoided"] += 1
                    probe = shared
                else:
                    probe = SchedulingState(block, machine, sgraph)
                result = engine.apply_decisions(
                    ctx.dp,
                    probe,
                    [SetExitDeadlines.from_mapping({exit_id: chosen})],
                    ctx.budget,
                    memoize=memoize,
                )
                if result.ok:
                    break
                chosen += 1
            tightened[exit_id] = chosen
        if shared is not None:
            engine.rollback(shared, pristine)
        return tightened

    # ------------------------------------------------------------------ #
    # per-target scheduling: run the stage pipeline
    # ------------------------------------------------------------------ #
    def _try_target(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        sgraph: SchedulingGraph,
        ctx: StageContext,
        target: ExitBoundStep,
        shared: Optional[SchedulingState] = None,
    ) -> Optional[SchedulingState]:
        if shared is not None:
            state = shared  # already rolled back to pristine by the caller
            ctx.engine.stats["copies_avoided"] += 1
        else:
            state = SchedulingState(block, machine, sgraph)
        result = ctx.engine.apply_decisions(
            ctx.dp,
            state,
            [SetExitDeadlines.from_mapping(target.exit_cycles)],
            ctx.budget,
            # Each enumerated target is applied once (the enumerator's
            # visited set), so this deduction's key cannot recur: look up
            # (the tightening loop may have memoized the same deadlines)
            # but do not pay for recording a replay log.
            memoize=False,
        )
        if not result.ok:
            return None
        return self._pipeline.run(ctx, result.state)
