"""A plain list scheduler with naive cluster assignment.

Useful as a sanity reference: it uses the same cycle-driven machinery as the
CARS baseline but picks the first cluster with free resources, ignoring
communication cost and load balance.  On a single-cluster machine it is an
ordinary critical-path list scheduler.
"""

from __future__ import annotations

from repro.scheduler.cars import CarsScheduler


class ListScheduler(CarsScheduler):
    """Critical-path list scheduling with first-fit cluster assignment."""

    name = "ListScheduler"

    def __init__(self, max_cycles: int = 10_000) -> None:
        super().__init__(cluster_policy="naive", max_cycles=max_cycles)
