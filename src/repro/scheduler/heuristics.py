"""Heuristic comparison of candidate scheduling states (Section 4.4.3).

After the deduction process has produced the future state of every candidate
decision, the best one is selected with the paper's three criteria, in order:

1. fewer communications,
2. more compact code,
3. a smaller ratio of out-edges to virtual clusters ("it is usually better
   to have more VCs and fewer outedges").

Ties are broken by the total remaining slack (a more constrained state has
less freedom left to go wrong) and deterministically by nothing else — the
caller supplies its own final tie-break (usually the candidate's identity).
"""

from __future__ import annotations

from typing import Tuple

from repro.deduction.state import SchedulingState


def state_score(state: SchedulingState) -> Tuple[float, float, float, float]:
    """Score of a candidate state; lexicographically smaller is better."""
    return (
        float(state.n_communications()),
        state.compactness(),
        state.outedge_vc_ratio(),
        state.total_slack(),
    )


def compare_states(first: SchedulingState, second: SchedulingState) -> int:
    """Return -1/0/+1 when *first* is better/equal/worse than *second*."""
    a, b = state_score(first), state_score(second)
    if a < b:
        return -1
    if a > b:
        return 1
    return 0
