"""Final schedules and scheduler results."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.bounds.awct import awct_from_schedule_cycles
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine


@dataclass(frozen=True)
class ScheduledComm:
    """One inter-cluster copy in a final schedule.

    The interconnect is modelled as a broadcast bus: a single transfer makes
    the value available in every other cluster ``bus.latency`` cycles after
    it is issued, which matches the paper's assumption that each value is
    communicated at most once.
    """

    value: str
    producer: int
    cycle: int
    src_cluster: int
    dst_cluster: Optional[int] = None

    def occupies(self, cycle: int, occupancy: int) -> bool:
        """Whether this transfer holds a bus in *cycle* given the occupancy."""
        return self.cycle <= cycle <= self.cycle + occupancy - 1


@dataclass
class Schedule:
    """A complete schedule of one superblock on one machine."""

    block: Superblock
    machine: ClusteredMachine
    cycles: Dict[int, int]
    clusters: Dict[int, int]
    comms: List[ScheduledComm] = field(default_factory=list)
    #: How the schedule was produced when it was not the plain pipeline
    #: output — e.g. ``{"policy": "finalize_partial", "source":
    #: "partial-extraction"}`` from the budget-policy layer.  ``None`` (the
    #: default) keeps :meth:`fingerprint` byte-identical to schedules that
    #: predate the field.
    provenance: Optional[Dict[str, str]] = None

    # ------------------------------------------------------------------ #
    # metrics
    # ------------------------------------------------------------------ #
    @property
    def awct(self) -> float:
        """Average weighted completion time of this schedule."""
        return awct_from_schedule_cycles(self.block, self.cycles)

    @property
    def total_cycles(self) -> float:
        """Contribution TC(S) = AWCT(S) * T(S) of the block."""
        return self.awct * self.block.execution_count

    @property
    def length(self) -> int:
        """Number of cycles from entry to the completion of the last operation."""
        last = 0
        for op_id, cycle in self.cycles.items():
            last = max(last, cycle + self.block.op(op_id).latency)
        for comm in self.comms:
            last = max(last, comm.cycle + self.machine.copy_latency)
        return last

    @property
    def n_communications(self) -> int:
        return len(self.comms)

    def cluster_load(self) -> Dict[int, int]:
        """Number of operations assigned to each cluster."""
        load = {c: 0 for c in self.machine.cluster_ids}
        for cluster in self.clusters.values():
            load[cluster] = load.get(cluster, 0) + 1
        return load

    def comm_for_value(self, value: str) -> Optional[ScheduledComm]:
        for comm in self.comms:
            if comm.value == value:
                return comm
        return None

    def fingerprint(self) -> list:
        """A canonical, JSON-serialisable description of the schedule.

        Two schedules compare equal iff their fingerprints do: the block
        name plus sorted cycle, cluster and communication assignments.
        Used by the parallel runner's determinism checks and the CI
        perf-regression gate.  Provenance (set only by the budget-policy
        layer) is appended when present, so policy-shaped schedules are
        distinguishable while plain ones keep the historical fingerprint.
        """
        fp = [
            self.block.name,
            sorted(self.cycles.items()),
            sorted(self.clusters.items()),
            sorted(
                (c.value, c.producer, c.cycle, c.src_cluster, c.dst_cluster if c.dst_cluster is not None else -1)
                for c in self.comms
            ),
        ]
        if self.provenance is not None:
            fp.append(sorted(self.provenance.items()))
        return fp

    # ------------------------------------------------------------------ #
    # presentation
    # ------------------------------------------------------------------ #
    def as_table(self) -> str:
        """Human-readable cycle-by-cycle view of the schedule."""
        if not self.cycles:
            return "(empty schedule)"
        n_cycles = max(self.cycles.values()) + 1
        lines = [f"Schedule of {self.block.name} on {self.machine.name} (AWCT={self.awct:.2f})"]
        for cycle in range(n_cycles):
            per_cluster = []
            for cluster in self.machine.cluster_ids:
                ops = [
                    self.block.op(op_id).name
                    for op_id, c in sorted(self.cycles.items())
                    if c == cycle and self.clusters.get(op_id) == cluster
                ]
                per_cluster.append(",".join(ops) if ops else "-")
            comm_names = [
                f"copy({c.value})" for c in self.comms if c.cycle == cycle
            ]
            bus = ",".join(comm_names) if comm_names else "-"
            lines.append(f"  cycle {cycle:3d}: " + " | ".join(per_cluster) + f" || bus: {bus}")
        return "\n".join(lines)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"Schedule({self.block.name}: AWCT={self.awct:.2f}, "
            f"{len(self.comms)} comms, length={self.length})"
        )


@dataclass
class ScheduleResult:
    """Outcome of running a scheduler on one superblock.

    ``work`` counts deterministic effort units (deduction rule firings for
    the proposed technique, placement attempts for the list schedulers) and
    is the compile-time proxy used by the Figure 10 experiment; ``wall_time``
    records real seconds for reference.
    """

    scheduler: str
    block: Superblock
    machine: ClusteredMachine
    schedule: Optional[Schedule]
    work: int = 0
    wall_time: float = 0.0
    timed_out: bool = False
    awct_target_steps: int = 0
    fallback_used: bool = False
    #: Hot-path probe counters (trail probes, rollbacks, copies avoided, …).
    stats: Dict[str, int] = field(default_factory=dict)
    #: Per-decision-stage ``{"calls": n, "wall_time_s": t}`` accumulated
    #: across AWCT targets (pipeline schedulers only).  Wall times are
    #: reported by the bench harness but never gated, and the field is
    #: deliberately excluded from :meth:`fingerprint`.
    stage_timings: Dict[str, Dict[str, float]] = field(default_factory=dict)
    #: Budget-policy summary (``PolicyTracker.summary()``): exhaustion
    #: mode, final tier, tier transitions, probe counts, refine history.
    #: ``None`` without a policy; only the deterministic mode/partial/
    #: source fields enter :meth:`fingerprint` (transitions carry wall
    #: readings).
    policy: Optional[Dict[str, object]] = None

    @property
    def ok(self) -> bool:
        return self.schedule is not None

    @property
    def awct(self) -> float:
        if self.schedule is None:
            raise ValueError(f"{self.scheduler} produced no schedule for {self.block.name}")
        return self.schedule.awct

    @property
    def total_cycles(self) -> float:
        return self.awct * self.block.execution_count

    def fingerprint(self) -> list:
        """Canonical description of the outcome (see
        :meth:`Schedule.fingerprint`), including the deterministic work
        counter and the fallback flag.  ``ScheduleResult`` is the value
        the parallel runner ships between processes; the fingerprint is
        what its determinism guarantee is stated over."""
        fp = [
            self.scheduler,
            self.block.name,
            self.machine.name,
            self.work,
            self.fallback_used,
            self.schedule.fingerprint() if self.schedule is not None else None,
        ]
        if self.policy is not None:
            fp.append(
                [
                    "policy",
                    self.policy.get("mode"),
                    bool(self.policy.get("partial_finalize")),
                    self.policy.get("source"),
                ]
            )
        return fp
