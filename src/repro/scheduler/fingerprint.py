"""Content digests of scheduling-job inputs: the result-cache key material.

A :class:`~repro.scheduler.schedule.ScheduleResult` is a pure function of
three inputs — the superblock, the machine and the backend configuration
— plus the code that interprets them.  This module canonicalises each
input into a JSON-stable structure and hashes it, so the disk-backed
result cache (:mod:`repro.runner.cache`) can key stored results by
*content* rather than by object identity or name:

* :func:`block_digest` — operations (id, opcode, class, latency,
  registers, exit probability, speculation) plus dependence edges,
  execution count and live-in/out sets, prefixed by the block name (two
  identically-named blocks with different bodies never collide, and two
  identical bodies under different names stay distinct because the name
  is part of every :meth:`Schedule.fingerprint`).
* :func:`machine_digest` — the declarative
  :class:`~repro.machine.spec.MachineSpec` dict of the machine (clusters,
  functional-unit mixes, interconnect topology/latency/channels,
  register-file limits).  Also the key under which warm pool workers
  intern reconstructed machines (:mod:`repro.runner.pool`).
* :func:`spec_digest` / :func:`schedule_cache_key` — the
  :class:`~repro.scheduler.registry.BackendSpec` dict (backend name,
  full ``VcsConfig`` including any budget policy, backend options)
  folded together with the block and machine digests and a
  code-version salt into the final cache key.

The salt (:data:`CODE_SALT`) names the behaviour revision of the
scheduler: bump it whenever a change legitimately moves ``dp_work`` or
schedule digests, and every previously cached result is invalidated at
once (old entries simply live under a different prefix).
"""

from __future__ import annotations

import hashlib
import json
from typing import Mapping, Optional

from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.machine.spec import MachineSpec

#: Code-version salt of the cached-result format: the scheduler behaviour
#: revision.  Bump on any change that moves dp_work or schedule digests
#: (the same changes that regenerate BENCH_vcs.json) so stale cache
#: entries can never masquerade as fresh results.
CODE_SALT = "2026.08-pr8"


def canonical_json(payload: object) -> str:
    """The canonical JSON text of *payload* (sorted keys, no whitespace)."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def _sha256(payload: object) -> str:
    return hashlib.sha256(canonical_json(payload).encode("utf-8")).hexdigest()


def block_fingerprint(block: Superblock) -> list:
    """A JSON-stable structural description of one superblock."""
    ops = [
        [
            op.op_id,
            op.opcode,
            op.op_class.value,
            op.latency,
            list(op.dests),
            list(op.srcs),
            op.is_exit,
            op.exit_prob,
            op.speculative,
        ]
        for op in block.operations
    ]
    edges = sorted(
        [edge.src, edge.dst, edge.kind.value, edge.latency, edge.value or ""]
        for edge in block.graph.edges()
    )
    return [
        block.name,
        ops,
        edges,
        block.execution_count,
        sorted(block.live_ins),
        sorted(block.live_outs),
    ]


def block_digest(block: Superblock) -> str:
    """SHA-256 digest of :func:`block_fingerprint`."""
    return _sha256(block_fingerprint(block))


def machine_fingerprint(machine: ClusteredMachine) -> dict:
    """The declarative spec dict describing *machine* (JSON-stable)."""
    return MachineSpec.from_machine(machine).to_dict()


def machine_digest(machine: ClusteredMachine) -> str:
    """SHA-256 digest of the machine's declarative spec."""
    return _sha256(machine_fingerprint(machine))


def spec_digest(spec_dict: Mapping) -> str:
    """SHA-256 digest of a backend-spec dict (``BackendSpec.to_dict()``)."""
    return _sha256(spec_dict)


def schedule_cache_key(
    block: Superblock,
    machine: ClusteredMachine,
    spec_dict: Mapping,
    salt: str = CODE_SALT,
    extra: Optional[Mapping] = None,
) -> str:
    """The content-addressed cache key of one scheduling job.

    Folds the block digest, the machine digest, the backend-spec dict and
    the code-version *salt* (plus any *extra* caller-provided coordinates)
    into one SHA-256 hex key.  Everything a
    :class:`~repro.scheduler.schedule.ScheduleResult` depends on is in the
    key; nothing host- or wall-clock-dependent is.
    """
    payload = {
        "salt": salt,
        "block": block_digest(block),
        "machine": machine_digest(machine),
        "backend": dict(spec_dict),
    }
    if extra:
        payload["extra"] = dict(extra)
    return _sha256(payload)
