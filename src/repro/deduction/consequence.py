"""Changes, decisions and contradictions exchanged with the deduction engine.

A *decision* is an action the scheduler wants to evaluate (Section 3,
"a decision may be one of the following actions ...").  A *change* is an
elementary modification of the scheduling state; decisions expand into one or
more changes, and rules react to changes by producing further changes
("consequences of consequences").  A *contradiction* proves that the state
reached after the decision admits no valid schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Mapping, Tuple


class Contradiction(Exception):
    """No valid schedule exists for the current scheduling state."""

    def __init__(self, reason: str) -> None:
        super().__init__(reason)
        self.reason = reason


# --------------------------------------------------------------------------- #
# change events
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Change:
    """Base class for elementary state changes."""


@dataclass(frozen=True)
class BoundChange(Change):
    """estart or lstart of an operation (or communication) moved."""

    op_id: int
    which: str  # "estart" or "lstart"
    value: int

    def __post_init__(self) -> None:
        if self.which not in ("estart", "lstart"):
            raise ValueError(f"unknown bound kind {self.which!r}")


@dataclass(frozen=True)
class CycleFixed(Change):
    """An operation's estart and lstart collapsed to a single cycle."""

    op_id: int
    cycle: int


@dataclass(frozen=True)
class CombinationChosen(Change):
    """A combination was selected for a pair (cycle(v) - cycle(u) = distance)."""

    u: int
    v: int
    distance: int


@dataclass(frozen=True)
class CombinationDiscarded(Change):
    """One combination of a pair was ruled out."""

    u: int
    v: int
    distance: int


@dataclass(frozen=True)
class VCsFused(Change):
    """The virtual clusters of two operations were merged."""

    u: int
    v: int


@dataclass(frozen=True)
class VCsIncompatible(Change):
    """The virtual clusters of two operations must map to different PCs."""

    u: int
    v: int


@dataclass(frozen=True)
class CommCreated(Change):
    """A communication (full or partial) was added to the state."""

    comm_id: int


@dataclass(frozen=True)
class CommResolved(Change):
    """A partially linked communication became fully linked."""

    comm_id: int


# --------------------------------------------------------------------------- #
# decisions
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class Decision:
    """Base class for decisions submitted to the deduction process."""

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return repr(self)


@dataclass(frozen=True)
class ChooseCombination(Decision):
    """Fix the relative distance of a pair: cycle(v) - cycle(u) = distance."""

    u: int
    v: int
    distance: int


@dataclass(frozen=True)
class DiscardCombination(Decision):
    """Rule out one relative distance for a pair."""

    u: int
    v: int
    distance: int


@dataclass(frozen=True)
class ScheduleInCycle(Decision):
    """Pin an operation (or communication) to a specific cycle."""

    op_id: int
    cycle: int


@dataclass(frozen=True)
class ForbidCycle(Decision):
    """Disallow scheduling an operation in a specific cycle.

    Only representable when the cycle is at the boundary of the operation's
    current window (the window is kept as an interval)."""

    op_id: int
    cycle: int


@dataclass(frozen=True)
class FuseVCs(Decision):
    """Force one or more operation pairs into shared virtual clusters."""

    pairs: Tuple[Tuple[int, int], ...]

    @staticmethod
    def single(u: int, v: int) -> "FuseVCs":
        return FuseVCs(pairs=((u, v),))


@dataclass(frozen=True)
class MarkVCsIncompatible(Decision):
    """Force one or more operation pairs into different physical clusters."""

    pairs: Tuple[Tuple[int, int], ...]

    @staticmethod
    def single(u: int, v: int) -> "MarkVCsIncompatible":
        return MarkVCsIncompatible(pairs=((u, v),))


@dataclass(frozen=True)
class SetExitDeadlines(Decision):
    """Install the per-exit deadline cycles of the current AWCT target."""

    deadlines: Tuple[Tuple[int, int], ...]

    @staticmethod
    def from_mapping(deadlines: Mapping[int, int]) -> "SetExitDeadlines":
        return SetExitDeadlines(tuple(sorted(deadlines.items())))

    def as_dict(self) -> Dict[int, int]:
        return dict(self.deadlines)


@dataclass(frozen=True)
class PinVCs(Decision):
    """Pin operations' virtual clusters to physical clusters."""

    pins: Tuple[Tuple[int, int], ...]  # (op_id, physical_cluster)
