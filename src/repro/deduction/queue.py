"""Propagation queues of the deduction engine.

The engine drains a worklist of :class:`~repro.deduction.consequence.Change`
events.  Two draining disciplines are provided:

* :class:`FifoPropagationQueue` — the paper's flat first-in-first-out
  worklist.  This is the default and the byte-identity oracle: the CI
  perf-regression gate pins the default configuration's deterministic
  ``dp_work`` and schedule digests to it.

* :class:`TieredPropagationQueue` — changes carry a *priority class* (tier)
  so cheap bound-tightening events (``BoundChange``/``CycleFixed``, the
  triggers of the :mod:`repro.deduction.rules.bounds` rules) drain before
  combination events, which drain before the expensive cluster/resource/
  communication events.  Pending bound events additionally *coalesce*: a
  ``BoundChange`` for an ``(operation, side)`` that already has one waiting
  is dropped, because every rule reads the *current* bounds from the state
  (never the event's recorded value) — the waiting event will be processed
  against the newer, tighter bound anyway.  A bound tightened several times
  while queued is therefore shown to the rules once, not once per step.
  Other change kinds are emitted at most once per value by the state
  mutators (bounds only tighten, combination/VC sets only grow), so they
  never coalesce.  Selected with ``VcsConfig.queue_mode="tiered"`` /
  ``DeductionProcess(queue_mode=...)``.

The deduction rules are monotonic (bounds only tighten, combination and
incompatibility sets only grow), so both disciplines reach the same fixed
point on the core state — the Hypothesis suite asserts this on random
superblocks — but along different trajectories: rule-firing counts (and
therefore ``dp_work``) differ, which is why the tiered queue is opt-in
rather than the default.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Iterable, List, Optional, Set, Type

from repro.deduction.consequence import (
    BoundChange,
    Change,
    CombinationChosen,
    CombinationDiscarded,
    CommCreated,
    CommResolved,
    CycleFixed,
    VCsFused,
    VCsIncompatible,
)

#: Queue-discipline names accepted by the engine and ``VcsConfig``.
QUEUE_MODES = ("fifo", "tiered")

#: Priority class per change type: lower tiers drain first.  Bound
#: tightening is the cheapest to process and the most likely to prune work
#: downstream (an empty window discards combinations before their rules
#: ever fire), so it goes first; structural cluster/communication events,
#: whose rules scan members and register edges, go last.
DEFAULT_TIERS: Dict[Type[Change], int] = {
    BoundChange: 0,
    CycleFixed: 0,
    CombinationChosen: 1,
    CombinationDiscarded: 1,
    VCsFused: 2,
    VCsIncompatible: 2,
    CommCreated: 2,
    CommResolved: 2,
}

#: Tier used for change types missing from the tier map.
DEFAULT_TIER = 2


def new_queue_stats() -> Dict[str, int]:
    """Fresh queue counters (merged into ``ScheduleResult.stats``)."""
    return {
        "queue_pushed": 0,
        "queue_coalesced": 0,
    }


class FifoPropagationQueue:
    """The paper's flat FIFO worklist (the byte-identity oracle).

    Keeps no counters: the engine's default path bypasses this class for a
    bare deque anyway (see ``DeductionProcess.apply``), and the FIFO
    discipline neither coalesces nor reorders, so there is nothing to
    count.  The class exists so both disciplines share one interface."""

    __slots__ = ("_queue",)

    def __init__(self) -> None:
        self._queue: Deque[Change] = deque()

    def push_many(self, changes: Iterable[Change]) -> None:
        self._queue.extend(changes)

    def pop(self) -> Change:
        return self._queue.popleft()

    def __bool__(self) -> bool:
        return bool(self._queue)

    def __len__(self) -> int:
        return len(self._queue)


class TieredPropagationQueue:
    """Tiered, deduplicating worklist.

    ``pop`` returns the oldest pending change of the lowest non-empty
    tier; ``push_many`` drops a ``BoundChange`` whose ``(op_id, which)``
    already has a pending event (see the module docs for why that is
    sound) and counts the drop in ``stats["queue_coalesced"]``.
    """

    __slots__ = ("_tiers", "_buckets", "_pending", "_stats")

    def __init__(
        self,
        stats: Optional[Dict[str, int]] = None,
        tiers: Optional[Dict[Type[Change], int]] = None,
    ) -> None:
        self._tiers = DEFAULT_TIERS if tiers is None else tiers
        n_tiers = max(self._tiers.values(), default=0) + 1
        n_tiers = max(n_tiers, DEFAULT_TIER + 1)
        self._buckets: List[Deque[Change]] = [deque() for _ in range(n_tiers)]
        #: ``(op_id, which)`` keys of the pending bound events.
        self._pending: Set[tuple] = set()
        self._stats = stats if stats is not None else new_queue_stats()

    def push_many(self, changes: Iterable[Change]) -> None:
        tiers = self._tiers
        pending = self._pending
        stats = self._stats
        for change in changes:
            if type(change) is BoundChange:
                key = (change.op_id, change.which)
                if key in pending:
                    stats["queue_coalesced"] += 1
                    continue
                pending.add(key)
            stats["queue_pushed"] += 1
            self._buckets[tiers.get(type(change), DEFAULT_TIER)].append(change)

    def pop(self) -> Change:
        for bucket in self._buckets:
            if bucket:
                change = bucket.popleft()
                if type(change) is BoundChange:
                    self._pending.discard((change.op_id, change.which))
                return change
        raise IndexError("pop from an empty propagation queue")

    def __bool__(self) -> bool:
        return any(self._buckets)

    def __len__(self) -> int:
        return sum(len(bucket) for bucket in self._buckets)


def make_queue(
    mode: str, stats: Optional[Dict[str, int]] = None
) -> "FifoPropagationQueue | TieredPropagationQueue":
    """Build the propagation queue for *mode* (``"fifo"`` or ``"tiered"``).

    *stats* receives the tiered discipline's push/coalesce counters; the
    FIFO discipline keeps none (see :class:`FifoPropagationQueue`)."""
    if mode == "fifo":
        return FifoPropagationQueue()
    if mode == "tiered":
        return TieredPropagationQueue(stats)
    raise ValueError(f"unknown queue mode {mode!r}; known modes: {', '.join(QUEUE_MODES)}")
