"""Base class shared by all deduction rules."""

from __future__ import annotations

from typing import List, Tuple, Type

from repro.deduction.consequence import Change
from repro.deduction.state import SchedulingState


class Rule:
    """One rule of the deduction process.

    A rule declares the change types it reacts to (``triggers``) and
    implements :meth:`fire`, which inspects the state, possibly applies
    further mandatory changes through the state's mutators, and returns the
    change events those mutators produced so the engine can keep deducing
    ("consequences of consequences").  Rules raise
    :class:`~repro.deduction.consequence.Contradiction` (usually indirectly,
    through the state mutators) when the state admits no valid schedule.
    """

    #: Change classes this rule reacts to.
    triggers: Tuple[Type[Change], ...] = ()

    @property
    def name(self) -> str:
        return type(self).__name__

    def applies(self, change: Change) -> bool:
        return isinstance(change, self.triggers)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:  # pragma: no cover - interface
        raise NotImplementedError
