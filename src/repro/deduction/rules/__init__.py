"""Rule set of the deduction process.

Rules are split (as in Section 3.3 of the paper) into *state updating rules*
— propagation of bounds, insertion of mandatory communications — and
*deduction rules* that anticipate resource conflicts, mandatory combination
choices, mandatory fusions/incompatibilities of virtual clusters and the
creation/promotion of partially linked communications.
"""

from repro.deduction.rules.base import Rule
from repro.deduction.rules.bounds import (
    ForwardBoundPropagation,
    BackwardBoundPropagation,
    ComponentPropagation,
    CommunicationLinkRule,
)
from repro.deduction.rules.resources import (
    FixedCycleResourceRule,
    ClassWindowPressureRule,
)
from repro.deduction.rules.combinations import (
    CombinationWindowRule,
    MustOverlapRule,
    ChosenCombinationClusterRule,
)
from repro.deduction.rules.cluster import (
    CommunicationSlackRule,
    CommunicationTimingRule,
    VCFusionResourceRule,
)
from repro.deduction.rules.plc import (
    IncompatibilityCommunicationRule,
    PLCCreationRule,
    PLCPromotionRule,
)


def default_rules(enable_plc: bool = True) -> list:
    """The rule set used by the proposed scheduler.

    ``enable_plc=False`` removes the partially-linked-communication rules;
    used by the ablation benchmarks to quantify their contribution.
    """
    rules = [
        ForwardBoundPropagation(),
        BackwardBoundPropagation(),
        ComponentPropagation(),
        CommunicationLinkRule(),
        FixedCycleResourceRule(),
        ClassWindowPressureRule(),
        CombinationWindowRule(),
        MustOverlapRule(),
        ChosenCombinationClusterRule(),
        CommunicationSlackRule(),
        CommunicationTimingRule(),
        VCFusionResourceRule(),
        IncompatibilityCommunicationRule(),
    ]
    if enable_plc:
        rules.append(PLCCreationRule())
        rules.append(PLCPromotionRule())
    return rules


__all__ = [
    "Rule",
    "default_rules",
    "ForwardBoundPropagation",
    "BackwardBoundPropagation",
    "ComponentPropagation",
    "CommunicationLinkRule",
    "FixedCycleResourceRule",
    "ClassWindowPressureRule",
    "CombinationWindowRule",
    "MustOverlapRule",
    "ChosenCombinationClusterRule",
    "CommunicationSlackRule",
    "CommunicationTimingRule",
    "VCFusionResourceRule",
    "IncompatibilityCommunicationRule",
    "PLCCreationRule",
    "PLCPromotionRule",
]
