"""State-updating rules: propagation of estart/lstart changes.

These rules keep the bounds coherent with the dependence graph (including
communication edges added during scheduling) and with the rigid offsets of
connected components formed by chosen combinations.
"""

from __future__ import annotations

from typing import List

from repro.deduction.consequence import (
    BoundChange,
    Change,
    CombinationChosen,
    CommCreated,
    CommResolved,
    CycleFixed,
)
from repro.deduction.rules.base import Rule
from repro.deduction.state import INFINITY, SchedulingState


class ForwardBoundPropagation(Rule):
    """An estart increase pushes the estarts of all successors."""

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if isinstance(change, BoundChange) and change.which != "estart":
            return []
        op_id = change.op_id
        if not state.has_op(op_id):
            return []
        out: List[Change] = []
        estart = state.estart
        base = estart[op_id]
        set_estart = state.set_estart
        for dst, latency in state.succ_edges(op_id):
            # Pre-filter the no-op case (set_estart returns [] when the
            # value does not raise the bound) to skip the call entirely.
            value = base + latency
            if value > estart[dst]:
                out += set_estart(dst, value)
        return out


class BackwardBoundPropagation(Rule):
    """An lstart decrease pulls the lstarts of all predecessors."""

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if isinstance(change, BoundChange) and change.which != "lstart":
            return []
        op_id = change.op_id
        if not state.has_op(op_id) or state.lstart[op_id] == INFINITY:
            return []
        out: List[Change] = []
        lstart = state.lstart
        base = int(lstart[op_id])
        set_lstart = state.set_lstart
        for src, latency in state.pred_edges(op_id):
            # Pre-filter the no-op case (set_lstart returns [] when the
            # value does not lower the bound) to skip the call entirely.
            value = base - latency
            if value < lstart[src]:
                out += set_lstart(src, value)
        return out


class ComponentPropagation(Rule):
    """Members of a connected component move rigidly together.

    When a combination is chosen, or when a bound of any member changes, the
    offsets recorded in the component imply bounds for every other member.
    """

    triggers = (BoundChange, CycleFixed, CombinationChosen)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if isinstance(change, CombinationChosen):
            anchors = [change.u, change.v]
        else:
            anchors = [change.op_id]
        out: List[Change] = []
        components = state.components
        for anchor in anchors:
            if not state.has_op(anchor) or anchor not in components:
                continue
            # Most operations stay singleton components; a size probe is
            # one root walk instead of building the member/offset list.
            if components.component_size(anchor) <= 1:
                continue
            members = components.component(anchor)
            estart_a = state.estart[anchor]
            lstart_a = state.lstart[anchor]
            for member, offset in members:
                if member == anchor:
                    continue
                out += state.set_estart(member, estart_a + offset)
                if lstart_a != INFINITY:
                    out += state.set_lstart(member, int(lstart_a) + offset)
                # The member's own bounds reflect back onto the anchor.
                out += state.set_estart(anchor, state.estart[member] - offset)
                if state.lstart[member] != INFINITY:
                    out += state.set_lstart(anchor, int(state.lstart[member]) - offset)
        return out


class CommunicationLinkRule(Rule):
    """A created/resolved communication couples producer, copy and consumer.

    The copy cannot start before the producer's result is available and the
    consumer cannot start before the copy has crossed the bus; symmetrically
    on the late side.
    """

    triggers = (CommCreated, CommResolved)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        comm_id = change.comm_id
        if comm_id not in state.comms:
            return []
        comm = state.comms.get(comm_id)
        out: List[Change] = []
        if comm_id not in state.estart:
            return []
        if comm.producer is not None:
            out += state.set_estart(
                comm_id, state.estart[comm.producer] + state.latency(comm.producer)
            )
            if state.lstart[comm_id] != INFINITY:
                out += state.set_lstart(
                    comm.producer,
                    int(state.lstart[comm_id]) - state.latency(comm.producer),
                )
        if comm.consumer is not None:
            out += state.set_estart(
                comm.consumer, state.estart[comm_id] + state.copy_latency
            )
            if state.lstart[comm.consumer] != INFINITY:
                out += state.set_lstart(
                    comm_id, int(state.lstart[comm.consumer]) - state.copy_latency
                )
        return out
