"""Resource-awareness rules.

The paper stresses that the scheduling rules of the deduction process mainly
"deal with the problem of the interaction between dependences and resources":
they look for resource usage requirements that change instruction bounds and
select or discard combinations.  The two rules here cover the machine-wide
and per-cluster issue pressure created by operations already pinned to a
cycle, and the aggregate per-class pressure of a whole window of cycles.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.deduction.consequence import (
    BoundChange,
    Change,
    Contradiction,
    CycleFixed,
    VCsFused,
)
from repro.deduction.rules.base import Rule
from repro.deduction.state import SchedulingState
from repro.ir.operation import OpClass


def _fixed_ops_at(state: SchedulingState, cycle: int) -> List[int]:
    return state.fixed_ops_at(cycle)


class FixedCycleResourceRule(Rule):
    """Operations pinned to a cycle consume issue slots, units and buses.

    When the operations already fixed at a cycle saturate a machine-wide or
    per-cluster capacity, operations still having slack are pushed out of
    that cycle, pairs that can no longer share a cluster become
    incompatible, and over-subscription is a contradiction.
    """

    triggers = (CycleFixed, VCsFused)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if isinstance(change, VCsFused):
            return self._check_vc_cycles(state, change.u)
        return self._check_cycle(state, change.cycle)

    # -------------------------------------------------------------- #
    def _check_cycle(self, state: SchedulingState, cycle: int) -> List[Change]:
        out: List[Change] = []
        fixed = _fixed_ops_at(state, cycle)
        machine = state.machine

        # --- machine-wide per-class capacity ---------------------------------
        by_class: Dict[OpClass, List[int]] = {}
        for op_id in fixed:
            by_class.setdefault(state.op(op_id).op_class, []).append(op_id)
        for op_class, members in by_class.items():
            capacity = machine.per_cycle_capacity(op_class)
            if len(members) > capacity:
                raise Contradiction(
                    f"{len(members)} {op_class} operations fixed in cycle {cycle}, "
                    f"machine capacity is {capacity}"
                )
            if len(members) == capacity:
                out += self._push_others(state, cycle, op_class, exclude=set(members))

        # --- machine-wide issue width -----------------------------------------
        non_copy_fixed = [i for i in fixed if not state.op(i).is_copy]
        issue_width = machine.total_issue_width
        if len(non_copy_fixed) > issue_width:
            raise Contradiction(
                f"{len(non_copy_fixed)} operations fixed in cycle {cycle}, "
                f"total issue width is {issue_width}"
            )
        if len(non_copy_fixed) == issue_width:
            out += self._push_others(state, cycle, None, exclude=set(non_copy_fixed))

        # --- per-cluster capacity inside each virtual cluster ------------------
        out += self._check_vc_capacity_at(state, cycle, fixed)

        # --- bus occupancy ------------------------------------------------------
        out += self._check_bus(state, cycle)
        return out

    def _push_others(
        self,
        state: SchedulingState,
        cycle: int,
        op_class,
        exclude,
    ) -> List[Change]:
        """Push unfixed operations (of *op_class*, or any non-copy class when
        None) out of a saturated cycle."""
        out: List[Change] = []
        if op_class is None:
            candidates = state.all_ids
        else:
            # Same membership and order as filtering all_ids by class, but
            # only the affected class is scanned.
            candidates = state.ids_by_class().get(op_class, [])
        for op_id in candidates:
            if op_id in exclude or state.is_fixed(op_id):
                continue
            if op_class is None and state.op(op_id).is_copy:
                continue
            if state.estart[op_id] == cycle:
                out += state.set_estart(op_id, cycle + 1)
            elif state.lstart[op_id] == cycle:
                out += state.set_lstart(op_id, cycle - 1)
        return out

    def _check_vc_capacity_at(
        self, state: SchedulingState, cycle: int, fixed: List[int]
    ) -> List[Change]:
        out: List[Change] = []
        machine = state.machine
        originals = [i for i in fixed if not state.is_comm(i)]
        by_class: Dict[OpClass, List[int]] = {}
        for op_id in originals:
            by_class.setdefault(state.op(op_id).op_class, []).append(op_id)
        for op_class, members in by_class.items():
            per_cluster = machine.max_cluster_capacity(op_class)
            if per_cluster == 0:
                raise Contradiction(f"no cluster can execute {op_class} operations")
            # Too many same-class operations in one cycle for the machine as
            # a whole (already checked machine-wide), or within one VC.
            by_vc: Dict[int, List[int]] = {}
            for op_id in members:
                by_vc.setdefault(state.vcg.vc_of(op_id), []).append(op_id)
            for vc_members in by_vc.values():
                if len(vc_members) > per_cluster:
                    raise Contradiction(
                        f"{len(vc_members)} {op_class} operations of one virtual cluster "
                        f"fixed in cycle {cycle}, per-cluster capacity is {per_cluster}"
                    )
            # With capacity one per cluster, any two same-class operations in
            # the same cycle must map to different clusters (paper Rule 2 for
            # cycle co-residence).
            if per_cluster == 1 and len(members) > 1:
                for i, first in enumerate(members):
                    for second in members[i + 1:]:
                        if not state.same_vc(first, second):
                            out += state.mark_incompatible(first, second)
            # The whole machine can hold at most per_cluster * n_clusters of
            # this class per cycle even across different VCs.
            if len(members) > per_cluster * machine.n_clusters:
                raise Contradiction(
                    f"{len(members)} {op_class} operations fixed in cycle {cycle}, "
                    f"machine holds {per_cluster * machine.n_clusters}"
                )
        return out

    def _check_vc_cycles(self, state: SchedulingState, anchor: int) -> List[Change]:
        """After a fusion, re-validate the per-cluster capacity of the merged VC."""
        members = state.vcg.members(anchor)
        machine = state.machine
        usage: Dict[Tuple[int, OpClass], int] = {}
        for op_id in members:
            cycle = state.cycle_of(op_id)
            if cycle is None:
                continue
            key = (cycle, state.op(op_id).op_class)
            usage[key] = usage.get(key, 0) + 1
        for (cycle, op_class), count in usage.items():
            per_cluster = machine.max_cluster_capacity(op_class)
            if count > per_cluster:
                raise Contradiction(
                    f"fused virtual cluster needs {count} {op_class} slots in cycle "
                    f"{cycle}, per-cluster capacity is {per_cluster}"
                )
        return []

    def _check_bus(self, state: SchedulingState, cycle: int) -> List[Change]:
        out: List[Change] = []
        machine = state.machine
        channels = machine.channel_count
        if channels == 0:
            if state.comm_ids:
                raise Contradiction("communications exist but the machine has no interconnect")
            return out
        occupancy = machine.copy_occupancy
        # A transfer fixed at cycle t occupies its channel during
        # [t, t + occupancy - 1]; a change at `cycle` can create contention in
        # any cycle its own occupancy window touches.  A transfer is busy at
        # `probe` iff it is fixed within [probe - occupancy + 1, probe], which
        # the fixed-at buckets count directly — no scan over all transfers.
        for probe in range(cycle - occupancy + 1, cycle + occupancy):
            busy = state.n_fixed_comms_in(probe - occupancy + 1, probe)
            if busy > channels:
                raise Contradiction(
                    f"{busy} communications occupy the interconnect in cycle {probe}, "
                    f"only {channels} channel(s) available"
                )
            if busy == channels:
                for comm in state.comm_ids:
                    if state.is_fixed(comm):
                        continue
                    if state.estart[comm] == probe:
                        out += state.set_estart(comm, probe + 1)
                    elif state.lstart[comm] == probe:
                        out += state.set_lstart(comm, probe - 1)
        return out


class ClassWindowPressureRule(Rule):
    """Aggregate per-class pressure over the whole scheduling window.

    If the operations of one class cannot all be issued between the smallest
    estart and the largest lstart of the class given the machine-wide
    capacity, no schedule exists.  Additionally, when the pressure is exactly
    tight for the window starting at cycle 0, operations of that class whose
    lstart equals the window end cannot move later, and ones at the start
    cannot move earlier — a cheap version of the paper's resource-usage
    study that tightens bounds before contradictions appear.
    """

    triggers = (CycleFixed, BoundChange)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if isinstance(change, BoundChange) and change.which != "lstart":
            return []
        machine = state.machine
        capacity_of = machine._per_cycle_capacity
        # The per-class (members, min estart, max lstart) aggregates are
        # delta-maintained by the bound mutators; reading them replaces the
        # per-firing scan over every live operation.  Key order matches
        # ids_by_class, so contradictions pick the same class as a scan.
        for op_class, (n, low, high) in state.class_pressure().items():
            if n == 0:
                continue
            capacity = capacity_of[op_class]
            if capacity == 0:
                raise Contradiction(f"machine cannot execute {op_class} operations")
            window = high - low + 1
            # A transfer on a non-pipelined interconnect holds its channel
            # for several cycles, so each copy consumes `occupancy`
            # channel-cycles; the usable channel cycles extend
            # `occupancy - 1` past the last possible start.
            demand = n
            slots = window
            if op_class is OpClass.COPY:
                demand *= machine.copy_occupancy
                slots += machine.copy_occupancy - 1
            if demand > capacity * slots:
                raise Contradiction(
                    f"{n} {op_class} operations must issue within "
                    f"cycles [{low}, {high}] but capacity is {capacity}/cycle"
                )
        return []
