"""Cluster-assignment rules (paper Rules 1, 3, 4 and fusion feasibility).

These rules translate scheduling information (bounds) into mandatory virtual
cluster fusions, and verify that fusions remain executable on one physical
cluster.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.deduction.consequence import (
    BoundChange,
    Change,
    Contradiction,
    CycleFixed,
    VCsFused,
)
from repro.deduction.rules.base import Rule
from repro.deduction.state import INFINITY, SchedulingState
from repro.ir.operation import OpClass


class CommunicationSlackRule(Rule):
    """Paper Rule 1: no room for a communication forces a fusion.

    When a bound change leaves fewer cycles between a producer and a consumer
    in different (still compatible) virtual clusters than an inter-cluster
    copy needs, the two VCs must be fused — if they were split later, the
    required copy could not be scheduled.  If the VCs are already
    incompatible, the same situation is a contradiction.
    """

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        op_id = change.op_id
        if not state.has_op(op_id) or state.is_comm(op_id):
            return []
        edges = state.register_adjacency(op_id)
        if not edges:
            return []
        out: List[Change] = []
        bus = state.copy_latency
        estart, lstart = state.estart, state.lstart
        latency = state._latency
        same_vc = state.vcg.same_vc
        are_incompatible = state.vcg.are_incompatible
        for producer, consumer in edges:
            if same_vc(producer, consumer):
                continue
            ls = lstart[consumer]
            if ls == INFINITY:
                continue
            room = int(ls) - (estart[producer] + latency[producer])
            if room >= bus:
                continue
            if are_incompatible(producer, consumer):
                raise Contradiction(
                    f"producer {producer} and consumer {consumer} are in incompatible "
                    f"virtual clusters but only {room} cycles remain for a copy "
                    f"needing {bus}"
                )
            out += state.fuse_vcs(producer, consumer)
        return out


class CommunicationTimingRule(Rule):
    """Paper Rules 3 and 4: a too-late communication forces fusions.

    Each value is communicated at most once.  Consumers of a communicated
    value that cannot wait for the copy (their lstart is earlier than the
    copy's earliest completion) must be fused with the producer so they can
    read the value locally.
    """

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        op_id = change.op_id
        if not state.has_op(op_id):
            return []
        out: List[Change] = []
        bus = state.copy_latency

        if state.is_comm(op_id):
            # Rule 3: the communication's estart moved; late consumers of the
            # value must be fused with the producer.
            comm = state.comms.get(op_id) if op_id in state.comms else None
            if comm is None or not comm.is_fully_linked or comm.value is None:
                return []
            producer = comm.producer
            arrival = state.estart[op_id] + bus
            lstart = state.lstart
            same_vc = state.vcg.same_vc
            for consumer in state.consumers_of_value(comm.value):
                if same_vc(producer, consumer):
                    continue
                ls = lstart[consumer]
                if ls == INFINITY:
                    continue
                if int(ls) < arrival:
                    out += state.fuse_vcs(producer, consumer)
            return out

        # Rule 4: the lstart of a consumer moved; if the value it reads is
        # communicated and the copy cannot arrive in time, fuse with the
        # producer.
        ls_op = state.lstart[op_id]
        if ls_op == INFINITY:
            return []
        reg_preds = state.register_pred_values(op_id)
        if not reg_preds:
            return []
        deadline = int(ls_op)
        value_flc = state._value_flc
        estart = state.estart
        same_vc = state.vcg.same_vc
        for producer, value in reg_preds:
            comm_id = value_flc.get(value) if value is not None else None
            if comm_id is None:
                continue
            if same_vc(producer, op_id):
                continue
            if estart[comm_id] + bus > deadline:
                out += state.fuse_vcs(producer, op_id)
        return out


class VCFusionResourceRule(Rule):
    """A fusion must keep the merged VC executable on one cluster.

    Checks that operations of the merged virtual cluster that are rigidly
    placed in the same cycle (either pinned, or linked by a chosen
    combination at distance zero) do not exceed the per-cluster capacities.
    """

    triggers = (VCsFused,)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        members = state.vcg.members(change.u)
        machine = state.machine
        per_cluster_issue = machine.max_cluster_issue_width

        # Group members by (relative placement, class) when a rigid relation
        # is known: pinned cycles and connected-component offsets.
        fixed_usage: Dict[Tuple[int, OpClass], int] = {}
        fixed_total: Dict[int, int] = {}
        for op_id in members:
            cycle = state.cycle_of(op_id)
            if cycle is None:
                continue
            op_class = state.op(op_id).op_class
            fixed_usage[(cycle, op_class)] = fixed_usage.get((cycle, op_class), 0) + 1
            fixed_total[cycle] = fixed_total.get(cycle, 0) + 1

        for (cycle, op_class), count in fixed_usage.items():
            per_cluster = machine.max_cluster_capacity(op_class)
            if count > per_cluster:
                raise Contradiction(
                    f"virtual cluster holds {count} {op_class} operations in cycle "
                    f"{cycle}; a single cluster offers {per_cluster}"
                )
        for cycle, count in fixed_total.items():
            if count > per_cluster_issue:
                raise Contradiction(
                    f"virtual cluster issues {count} operations in cycle {cycle}; "
                    f"a single cluster issues at most {per_cluster_issue}"
                )

        # Same check through connected-component offsets for members that are
        # not pinned yet but already rigidly co-scheduled.  Two members share
        # a cycle exactly when they have the same component root and the
        # same offset from it, so the members are grouped by one find() each
        # instead of an O(members²) offset_between sweep; only groups of two
        # or more hold co-scheduled pairs.
        find = state.components.find
        by_placement: Dict[Tuple[int, int], List[int]] = {}
        for op_id in members:
            root, offset = find(op_id)
            by_placement.setdefault((root, offset), []).append(op_id)
        for group in by_placement.values():
            if len(group) < 2:
                continue
            for i, first in enumerate(group):
                for second in group[i + 1:]:
                    op_a, op_b = state.op(first), state.op(second)
                    if op_a.op_class == op_b.op_class:
                        per_cluster = machine.max_cluster_capacity(op_a.op_class)
                        if per_cluster < 2:
                            raise Contradiction(
                                f"operations {first} and {second} share a cycle and the "
                                "fused virtual cluster but no cluster issues two "
                                f"{op_a.op_class} operations"
                            )
                    if per_cluster_issue < 2:
                        raise Contradiction(
                            f"operations {first} and {second} share a cycle and the fused "
                            "virtual cluster but clusters are single-issue"
                        )
        return []
