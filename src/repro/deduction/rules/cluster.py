"""Cluster-assignment rules (paper Rules 1, 3, 4 and fusion feasibility).

These rules translate scheduling information (bounds) into mandatory virtual
cluster fusions, and verify that fusions remain executable on one physical
cluster.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.deduction.consequence import (
    BoundChange,
    Change,
    Contradiction,
    CycleFixed,
    VCsFused,
)
from repro.deduction.rules.base import Rule
from repro.deduction.state import INFINITY, SchedulingState
from repro.ir.operation import OpClass


class CommunicationSlackRule(Rule):
    """Paper Rule 1: no room for a communication forces a fusion.

    When a bound change leaves fewer cycles between a producer and a consumer
    in different (still compatible) virtual clusters than an inter-cluster
    copy needs, the two VCs must be fused — if they were split later, the
    required copy could not be scheduled.  If the VCs are already
    incompatible, the same situation is a contradiction.
    """

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        op_id = change.op_id
        if not state.has_op(op_id) or state.is_comm(op_id):
            return []
        out: List[Change] = []
        graph = state.block.graph
        edges = [
            (e.src, e.dst) for e in graph.successors(op_id) if e.is_register_edge
        ] + [
            (e.src, e.dst) for e in graph.predecessors(op_id) if e.is_register_edge
        ]
        bus = state.copy_latency
        for producer, consumer in edges:
            if state.same_vc(producer, consumer):
                continue
            if state.lstart[consumer] == INFINITY:
                continue
            room = int(state.lstart[consumer]) - (
                state.estart[producer] + state.latency(producer)
            )
            if room >= bus:
                continue
            if state.vcg.are_incompatible(producer, consumer):
                raise Contradiction(
                    f"producer {producer} and consumer {consumer} are in incompatible "
                    f"virtual clusters but only {room} cycles remain for a copy "
                    f"needing {bus}"
                )
            out += state.fuse_vcs(producer, consumer)
        return out


class CommunicationTimingRule(Rule):
    """Paper Rules 3 and 4: a too-late communication forces fusions.

    Each value is communicated at most once.  Consumers of a communicated
    value that cannot wait for the copy (their lstart is earlier than the
    copy's earliest completion) must be fused with the producer so they can
    read the value locally.
    """

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        op_id = change.op_id
        if not state.has_op(op_id):
            return []
        out: List[Change] = []
        bus = state.copy_latency

        if state.is_comm(op_id):
            # Rule 3: the communication's estart moved; late consumers of the
            # value must be fused with the producer.
            comm = state.comms.get(op_id) if op_id in state.comms else None
            if comm is None or not comm.is_fully_linked or comm.value is None:
                return []
            producer = comm.producer
            for consumer in state.block.graph.consumers_of(comm.value):
                if state.same_vc(producer, consumer):
                    continue
                if state.lstart[consumer] == INFINITY:
                    continue
                if int(state.lstart[consumer]) < state.estart[op_id] + bus:
                    out += state.fuse_vcs(producer, consumer)
            return out

        # Rule 4: the lstart of a consumer moved; if the value it reads is
        # communicated and the copy cannot arrive in time, fuse with the
        # producer.
        if state.lstart[op_id] == INFINITY:
            return []
        for edge in state.block.graph.predecessors(op_id):
            if not edge.is_register_edge:
                continue
            comm = state.flc_for_value(edge.value)
            if comm is None:
                continue
            producer = edge.src
            if state.same_vc(producer, op_id):
                continue
            if state.estart[comm.comm_id] + bus > int(state.lstart[op_id]):
                out += state.fuse_vcs(producer, op_id)
        return out


class VCFusionResourceRule(Rule):
    """A fusion must keep the merged VC executable on one cluster.

    Checks that operations of the merged virtual cluster that are rigidly
    placed in the same cycle (either pinned, or linked by a chosen
    combination at distance zero) do not exceed the per-cluster capacities.
    """

    triggers = (VCsFused,)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        members = state.vcg.members(change.u)
        machine = state.machine
        per_cluster_issue = machine.max_cluster_issue_width

        # Group members by (relative placement, class) when a rigid relation
        # is known: pinned cycles and connected-component offsets.
        fixed_usage: Dict[Tuple[int, OpClass], int] = {}
        fixed_total: Dict[int, int] = {}
        for op_id in members:
            cycle = state.cycle_of(op_id)
            if cycle is None:
                continue
            op_class = state.op(op_id).op_class
            fixed_usage[(cycle, op_class)] = fixed_usage.get((cycle, op_class), 0) + 1
            fixed_total[cycle] = fixed_total.get(cycle, 0) + 1

        for (cycle, op_class), count in fixed_usage.items():
            per_cluster = machine.max_cluster_capacity(op_class)
            if count > per_cluster:
                raise Contradiction(
                    f"virtual cluster holds {count} {op_class} operations in cycle "
                    f"{cycle}; a single cluster offers {per_cluster}"
                )
        for cycle, count in fixed_total.items():
            if count > per_cluster_issue:
                raise Contradiction(
                    f"virtual cluster issues {count} operations in cycle {cycle}; "
                    f"a single cluster issues at most {per_cluster_issue}"
                )

        # Same check through connected-component offsets for members that are
        # not pinned yet but already rigidly co-scheduled.
        for i, first in enumerate(members):
            for second in members[i + 1:]:
                offset = state.components.offset_between(first, second)
                if offset != 0:
                    continue
                op_a, op_b = state.op(first), state.op(second)
                if op_a.op_class == op_b.op_class:
                    per_cluster = machine.max_cluster_capacity(op_a.op_class)
                    if per_cluster < 2:
                        raise Contradiction(
                            f"operations {first} and {second} share a cycle and the "
                            "fused virtual cluster but no cluster issues two "
                            f"{op_a.op_class} operations"
                        )
                if per_cluster_issue < 2:
                    raise Contradiction(
                        f"operations {first} and {second} share a cycle and the fused "
                        "virtual cluster but clusters are single-issue"
                    )
        return []
