"""Deduction rules about combinations of the scheduling graph."""

from __future__ import annotations

from typing import List

from repro.deduction.consequence import (
    BoundChange,
    Change,
    CombinationChosen,
    CombinationDiscarded,
    Contradiction,
    CycleFixed,
)
from repro.deduction.rules.base import Rule
from repro.deduction.state import SchedulingState
from repro.sgraph.combination import pair_key


class CombinationWindowRule(Rule):
    """Discard combinations whose placement window has become empty.

    A combination of a pair restricts the cycles at which both operations
    can issue simultaneously; when bound tightening empties that window the
    combination can no longer appear in any schedule and must be discarded.
    """

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        op_id = change.op_id
        if not state.has_op(op_id) or state.is_comm(op_id):
            return []
        out: List[Change] = []
        estart, lstart = state.estart, state.lstart
        chosen = state._chosen
        for other in state.sgraph.neighbors(op_id):
            key = (op_id, other) if op_id < other else (other, op_id)
            if key in chosen:
                # The pair is already rigid; an empty window would have been a
                # bound contradiction instead.
                continue
            a, b = key
            ea, eb = estart[a], estart[b]
            la, lb = lstart[a], lstart[b]
            for distance in state.remaining_combinations(a, b):
                # Inlined SchedulingState.combination_window (hot path):
                # low = max(estart[a], estart[b]-d), high = min(lstart[a],
                # lstart[b]-d) with (a, b) already in pair_key order.  Keep
                # in sync with state.combination_window, which the scoring
                # side (combination_slack / pair_slack) uses.
                low = ea if ea >= eb - distance else eb - distance
                high = la if la <= lb - distance else lb - distance
                if low > high:
                    out += state.discard_combination(a, b, distance)
        return out


class MustOverlapRule(Rule):
    """Pairs forced to overlap must take one of their combinations.

    When the two operations' windows no longer allow them to be separated by
    at least the earlier one's latency, every schedule overlaps them, so one
    of their combinations must be chosen.  If a single candidate remains it
    becomes mandatory (the situation of the paper's worked example where
    discarding combination 1 between I4 and B0 "is equivalent to choosing
    combination 0"); if none remains the state is contradictory.
    """

    triggers = (BoundChange, CycleFixed, CombinationDiscarded)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if isinstance(change, CombinationDiscarded):
            pairs = [(change.u, change.v)]
        else:
            op_id = change.op_id
            if not state.has_op(op_id) or state.is_comm(op_id):
                return []
            pairs = [(op_id, other) for other in state.sgraph.neighbors(op_id)]
        out: List[Change] = []
        chosen = state._chosen
        for u, v in pairs:
            if ((u, v) if u < v else (v, u)) in chosen:
                continue
            if not state.must_overlap(u, v):
                continue
            remaining = state.remaining_combinations(u, v)
            if not remaining:
                raise Contradiction(
                    f"operations {u} and {v} must overlap but no combination remains"
                )
            if len(remaining) == 1:
                a, b = pair_key(u, v)
                out += state.choose_combination(a, b, remaining[0])
        return out


class ChosenCombinationClusterRule(Rule):
    """Cluster-assignment consequences of a chosen combination (paper Rule 2).

    Choosing a combination that places two operations in the same cycle when
    a single cluster cannot issue both (same functional-unit class with one
    unit per cluster, or a cluster issue width of one) forces their virtual
    clusters apart.
    """

    triggers = (CombinationChosen,)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if change.distance != 0:
            return []
        u, v = change.u, change.v
        op_u, op_v = state.op(u), state.op(v)
        machine = state.machine
        out: List[Change] = []
        same_class = op_u.op_class == op_v.op_class
        per_cluster_class = machine.max_cluster_capacity(op_u.op_class)
        per_cluster_issue = machine.max_cluster_issue_width
        if (same_class and per_cluster_class < 2) or per_cluster_issue < 2:
            if state.same_vc(u, v):
                raise Contradiction(
                    f"operations {u} and {v} share a cycle and a virtual cluster but "
                    "no cluster can issue both"
                )
            out += state.mark_incompatible(u, v)
        return out
