"""Deduction rules about combinations of the scheduling graph."""

from __future__ import annotations

from typing import List

from repro.deduction.consequence import (
    BoundChange,
    Change,
    CombinationChosen,
    CombinationDiscarded,
    Contradiction,
    CycleFixed,
)
from repro.deduction.rules.base import Rule
from repro.deduction.state import INFINITY, SchedulingState


class CombinationWindowRule(Rule):
    """Discard combinations whose placement window has become empty.

    A combination of a pair restricts the cycles at which both operations
    can issue simultaneously; when bound tightening empties that window the
    combination can no longer appear in any schedule and must be discarded.
    """

    triggers = (BoundChange, CycleFixed)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        # Communications and unknown ids have no scheduling-graph pairs, so
        # the neighbor table doubles as the has_op/is_comm guard.
        neighbors = state._neighbor_keys.get(change.op_id)
        if not neighbors:
            return []
        out: List[Change] = []
        estart, lstart = state.estart, state.lstart
        chosen = state._chosen
        remaining = state._remaining
        discard = state._discard
        for _other, key in neighbors:
            if key in chosen:
                # The pair is already rigid; an empty window would have been a
                # bound contradiction instead.
                continue
            a, b = key
            ea, eb = estart[a], estart[b]
            la, lb = lstart[a], lstart[b]
            # Snapshot tuple from the delta-maintained remaining-distances
            # table; discards during the loop replace the table entry and
            # leave this iteration untouched, exactly like the list the
            # remaining_combinations call used to build.
            for distance in remaining.get(key, ()):
                # Inlined SchedulingState.combination_window (hot path):
                # low = max(estart[a], estart[b]-d), high = min(lstart[a],
                # lstart[b]-d) with (a, b) already in pair_key order.  Keep
                # in sync with state.combination_window, which the scoring
                # side (combination_slack / pair_slack) uses.
                low = ea if ea >= eb - distance else eb - distance
                high = la if la <= lb - distance else lb - distance
                if low > high:
                    # Direct _discard: the key is pair-ordered, the distance
                    # comes from _remaining (a subset of the graph's
                    # distances), and the pair is not chosen — every check
                    # discard_combination would perform is already settled.
                    out += discard(key, distance)
        return out


class MustOverlapRule(Rule):
    """Pairs forced to overlap must take one of their combinations.

    When the two operations' windows no longer allow them to be separated by
    at least the earlier one's latency, every schedule overlaps them, so one
    of their combinations must be chosen.  If a single candidate remains it
    becomes mandatory (the situation of the paper's worked example where
    discarding combination 1 between I4 and B0 "is equivalent to choosing
    combination 0"); if none remains the state is contradictory.
    """

    triggers = (BoundChange, CycleFixed, CombinationDiscarded)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        chosen = state._chosen
        estart, lstart = state.estart, state.lstart
        latency = state._latency
        remaining_map = state._remaining
        out: List[Change] = []
        if isinstance(change, CombinationDiscarded):
            # CombinationDiscarded events are emitted in pair-key order.
            u, v = change.u, change.v
            key = (u, v)
            if key in chosen:
                return []
            # Inlined state.must_overlap (hot path) — keep in sync.
            lu, lv = lstart[u], lstart[v]
            if lu == INFINITY or lv == INFINITY:
                return []
            if lv - estart[u] >= latency[u] or lu - estart[v] >= latency[v]:
                return []
            remaining = remaining_map.get(key, ())
            if not remaining:
                raise Contradiction(
                    f"operations {u} and {v} must overlap but no combination remains"
                )
            if len(remaining) == 1:
                out += state.choose_combination(u, v, remaining[0])
            return out
        op_id = change.op_id
        neighbors = state._neighbor_keys.get(op_id)
        if not neighbors:
            return []
        l_op = lstart[op_id]
        if l_op == INFINITY:
            # Every pair of this operation fails the must-overlap test.
            return []
        e_op = estart[op_id]
        lat_op = latency[op_id]
        for other, key in neighbors:
            if key in chosen:
                continue
            # Inlined state.must_overlap with the op_id side hoisted.
            lv = lstart[other]
            if lv == INFINITY:
                continue
            if lv - e_op >= lat_op or l_op - estart[other] >= latency[other]:
                continue
            remaining = remaining_map.get(key, ())
            if not remaining:
                raise Contradiction(
                    f"operations {op_id} and {other} must overlap but no combination remains"
                )
            if len(remaining) == 1:
                out += state.choose_combination(key[0], key[1], remaining[0])
        return out


class ChosenCombinationClusterRule(Rule):
    """Cluster-assignment consequences of a chosen combination (paper Rule 2).

    Choosing a combination that places two operations in the same cycle when
    a single cluster cannot issue both (same functional-unit class with one
    unit per cluster, or a cluster issue width of one) forces their virtual
    clusters apart.
    """

    triggers = (CombinationChosen,)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        if change.distance != 0:
            return []
        u, v = change.u, change.v
        op_u, op_v = state.op(u), state.op(v)
        machine = state.machine
        out: List[Change] = []
        same_class = op_u.op_class == op_v.op_class
        per_cluster_class = machine.max_cluster_capacity(op_u.op_class)
        per_cluster_issue = machine.max_cluster_issue_width
        if (same_class and per_cluster_class < 2) or per_cluster_issue < 2:
            if state.same_vc(u, v):
                raise Contradiction(
                    f"operations {u} and {v} share a cycle and a virtual cluster but "
                    "no cluster can issue both"
                )
            out += state.mark_incompatible(u, v)
        return out
