"""Communication insertion and partially linked communications (Rules 5-7).

When two virtual clusters become incompatible, every value flowing between
them needs an inter-cluster copy: the *state updating* part of the deduction
process inserts it.  The *deduction* part anticipates copies that are not yet
forced but will be — partially linked communications (PLCs) — and promotes
them to fully linked ones as soon as the open endpoint is determined.
"""

from __future__ import annotations

from typing import List

from repro.deduction.consequence import (
    Change,
    VCsFused,
    VCsIncompatible,
)
from repro.deduction.rules.base import Rule
from repro.deduction.state import SchedulingState


class IncompatibilityCommunicationRule(Rule):
    """Insert the copies required by a new incompatibility.

    For every register edge whose producer and consumer now live in
    incompatible virtual clusters, a fully linked communication is created
    (reusing the value's existing communication when one exists — each value
    is transferred at most once).  The rule also fires on fusions, because a
    fusion can extend an existing incompatibility to operations that were
    previously in a third, unrelated virtual cluster."""

    triggers = (VCsIncompatible, VCsFused)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        # A register edge has an endpoint in an affected VC exactly when it
        # touches one of that VC's members, so only the members' edges are
        # scanned (``add_flc`` never mutates the VCG, so the memberships
        # are stable throughout).  The surviving edges are visited in
        # register-edge order, exactly like the full scan this replaces.
        touch = state._reg_touch_idx
        idxs: set = set()
        for member in state.vcg.members(change.u):
            idxs.update(touch.get(member, ()))
        for member in state.vcg.members(change.v):
            idxs.update(touch.get(member, ()))
        if not idxs:
            return []
        triples = state.register_edge_triples()
        are_incompatible = state.vcg.are_incompatible
        out: List[Change] = []
        for index in sorted(idxs):
            src, dst, value = triples[index]
            if not are_incompatible(src, dst):
                continue
            out += state.add_flc(src, dst, value)
        return out


class PLCCreationRule(Rule):
    """Paper Rule 5: anticipate communications with partial links.

    When two VCs become incompatible and operations from each produce values
    consumed by a common successor, at least one of the two values will have
    to be communicated to that successor (it cannot be co-located with
    both).  A producer-open PLC is created so the bus pressure and the
    timing window of that future copy are visible to the other rules."""

    triggers = (VCsIncompatible,)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        vc_u = state.vcg.vc_of(change.u)
        vc_v = state.vcg.vc_of(change.v)
        graph = state.block.graph
        out: List[Change] = []
        members_u = [o for o in state.vcg.members(change.u)]
        members_v = [o for o in state.vcg.members(change.v)]
        for a in members_u:
            for edge_a in graph.successors(a):
                if not edge_a.is_register_edge:
                    continue
                consumer = edge_a.dst
                consumer_vc = state.vcg.vc_of(consumer)
                if consumer_vc in (vc_u, vc_v):
                    continue
                for b in members_v:
                    edge_b = graph.edge(b, consumer)
                    if edge_b is None or not edge_b.is_register_edge:
                        continue
                    out += state.add_plc(
                        alternatives=((a, consumer), (b, consumer)),
                        consumer=consumer,
                    )
        return out


class PLCPromotionRule(Rule):
    """Paper Rules 6 and 7: resolve partially linked communications.

    * Rule 6 — when the producer and consumer of one alternative are fused,
      that alternative no longer needs a copy, so the communication is
      assigned to the remaining alternative.
    * Rule 7 — when the producer and consumer of one alternative become
      incompatible, that alternative definitely needs the copy, so the
      communication is assigned to it.
    """

    triggers = (VCsFused, VCsIncompatible)

    def fire(self, state: SchedulingState, change: Change) -> List[Change]:
        out: List[Change] = []
        for comm in list(state.comms.partially_linked()):
            for producer, consumer in comm.alternatives:
                if comm.comm_id not in state.comms:
                    break
                current = state.comms.get(comm.comm_id)
                if current.is_fully_linked:
                    break
                if (producer, consumer) not in current.alternatives:
                    continue
                if state.same_vc(producer, consumer):
                    # Rule 6: this alternative is satisfied locally.
                    out += state.remove_plc_alternative(comm.comm_id, (producer, consumer))
                elif state.vcg.are_incompatible(producer, consumer):
                    # Rule 7: this alternative definitely needs the copy.
                    edge = state.block.graph.edge(producer, consumer)
                    value = edge.value if edge is not None and edge.value else None
                    if value is None:
                        value = f"plc{comm.comm_id}"
                    out += state.resolve_plc(comm.comm_id, producer, consumer, value)
        return out
