"""The deduction engine: apply a decision and derive its consequences.

The engine implements the black box of the paper's Figure 2: given the
current scheduling state and a decision, it produces either the new state
with every mandatory consequence applied, or a contradiction.  Internally it
is a worklist: the decision expands into initial change events; every change
is shown to every rule; the changes the rules produce are queued in turn,
until the queue drains ("the DP ends when no decision remains to be treated
by the set of rules") or a contradiction is raised.

The amount of work performed (number of rule firings) is the deterministic
stand-in for compilation time used by the evaluation harness; callers may
pass a :class:`WorkBudget` to bound it, reproducing the paper's per-block
compile-time thresholds.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass, field
from typing import Callable, Deque, Dict, List, Optional, Sequence, Tuple, Type

from repro.deduction.consequence import (
    Change,
    ChooseCombination,
    Contradiction,
    Decision,
    DiscardCombination,
    ForbidCycle,
    FuseVCs,
    MarkVCsIncompatible,
    PinVCs,
    ScheduleInCycle,
    SetExitDeadlines,
)
from repro.deduction.queue import QUEUE_MODES, make_queue, new_queue_stats
from repro.deduction.rules import default_rules
from repro.deduction.rules.base import Rule
from repro.deduction.state import SchedulingState


class BudgetExhausted(Exception):
    """The scheduler's work budget ran out (compile-time threshold hit)."""


def budget_exhausted_message(limit: int, spent: int) -> str:
    """The one exhaustion message of every raise path.

    :meth:`WorkBudget.charge`, :meth:`WorkBudget.charge_block` and the
    inlined fast loop of :meth:`DeductionProcess.apply` all raise through
    this helper, so the message (and the ``spent`` value it reports) cannot
    drift between the unit-by-unit and block accounting paths."""
    return f"work budget of {limit} units exhausted ({spent} spent)"


@dataclass
class WorkBudget:
    """A deterministic compile-effort budget shared across DP invocations.

    An optional *observer* is notified when ``spent`` reaches
    ``notify_at`` — the tier-transition hook of
    :class:`repro.scheduler.policy.PolicyTracker`.  The observer is
    expected to advance (or clear) ``notify_at`` itself; with
    ``notify_at`` unset the charge paths are exactly the bare counters,
    and the deduction engine keeps its inlined fast loop."""

    limit: Optional[int] = None
    spent: int = 0
    #: Called as ``observer(budget)`` when ``spent`` crosses ``notify_at``.
    observer: Optional[Callable[["WorkBudget"], None]] = None
    #: The next ``spent`` value at which the observer fires (None = never).
    notify_at: Optional[int] = None

    def charge(self, amount: int = 1) -> None:
        self.spent += amount
        if self.limit is not None and self.spent > self.limit:
            raise BudgetExhausted(budget_exhausted_message(self.limit, self.spent))
        if self.notify_at is not None and self.spent >= self.notify_at:
            self._notify()

    def charge_block(self, amount: int) -> None:
        """Charge *amount* units with the same exhaustion semantics as
        *amount* successive one-unit :meth:`charge` calls (the probe cache
        replays a memoized deduction's work as one block, and the recorded
        ``spent`` must match the unit-by-unit accounting exactly)."""
        if self.limit is None or self.spent + amount <= self.limit:
            self.spent += amount
            if self.notify_at is not None and self.spent >= self.notify_at:
                self._notify()
            return
        self.spent = self.limit + 1
        raise BudgetExhausted(budget_exhausted_message(self.limit, self.spent))

    def _notify(self) -> None:
        if self.observer is not None:
            self.observer(self)
        elif self.notify_at is not None and self.spent >= self.notify_at:
            self.notify_at = None  # nobody listening; stop checking

    @property
    def remaining(self) -> Optional[int]:
        if self.limit is None:
            return None
        return max(self.limit - self.spent, 0)

    def exhausted(self) -> bool:
        return self.limit is not None and self.spent >= self.limit


@dataclass
class DeductionResult:
    """Outcome of submitting one decision to the deduction process."""

    state: SchedulingState
    consequences: List[Change] = field(default_factory=list)
    contradiction: Optional[str] = None
    work: int = 0

    @property
    def ok(self) -> bool:
        return self.contradiction is None


class DeductionProcess:
    """Applies decisions to scheduling states using a rule set.

    Rule dispatch is indexed by change type: instead of showing every change
    event to every rule (a linear ``rule.applies`` scan on the hottest loop
    of the engine), a dispatch table keyed on ``type(change)`` is built
    lazily from the rules' declared triggers, so each event only visits the
    rules that can fire on it.  The table is filled through
    ``rule.applies``, which preserves exact ``isinstance`` semantics and the
    rule order of the linear scan.  ``indexed_dispatch=False`` restores the
    linear scan (used by the perf harness to measure the difference).

    The rule set is managed through explicit registration hooks
    (:meth:`add_rule` / :meth:`remove_rule` / :meth:`set_rules`, or
    assignment to :attr:`rules`), each of which invalidates the dispatch
    table; :meth:`apply` no longer diffs the rule list on every invocation.
    :attr:`rules` is therefore a tuple — mutating a rule list behind the
    engine's back is impossible rather than silently absorbed.

    ``queue_mode`` selects the propagation worklist (see
    :mod:`repro.deduction.queue`): ``"fifo"`` is the paper's flat worklist
    and the byte-identity oracle; ``"tiered"`` drains cheap bound events
    first and coalesces identical pending changes, reaching the same fixed
    point with fewer rule firings (``dp_work`` differs, so it is opt-in).
    """

    def __init__(
        self,
        rules: Optional[Sequence[Rule]] = None,
        max_iterations: int = 200_000,
        indexed_dispatch: bool = True,
        queue_mode: str = "fifo",
    ) -> None:
        if queue_mode not in QUEUE_MODES:
            raise ValueError(
                f"unknown queue mode {queue_mode!r}; known modes: {', '.join(QUEUE_MODES)}"
            )
        self._rules: Tuple[Rule, ...] = (
            tuple(rules) if rules is not None else tuple(default_rules())
        )
        self.max_iterations = max_iterations
        self.indexed_dispatch = indexed_dispatch
        self.queue_mode = queue_mode
        self._dispatch: Dict[Type[Change], List[Tuple[Rule, str]]] = {}
        #: Total number of DP invocations performed through this instance.
        self.invocations = 0
        #: Rule firings per rule class name, accumulated across invocations
        #: (sums to the total ``work`` this instance has performed).  A
        #: defaultdict so the hottest loop increments without a ``.get``;
        #: entries only appear for rules that actually fired.
        self.work_by_rule: Dict[str, int] = defaultdict(int)
        #: Worklist counters (pushes/coalesces; tiered mode only).
        self.queue_stats: Dict[str, int] = new_queue_stats()

    # ------------------------------------------------------------------ #
    # rule registration
    # ------------------------------------------------------------------ #
    @property
    def rules(self) -> Tuple[Rule, ...]:
        """The registered rules, in dispatch order (read-only view)."""
        return self._rules

    @rules.setter
    def rules(self, rules: Sequence[Rule]) -> None:
        self.set_rules(rules)

    def set_rules(self, rules: Sequence[Rule]) -> None:
        """Replace the whole rule set and invalidate the dispatch table."""
        self._rules = tuple(rules)
        self.invalidate_dispatch()

    def add_rule(self, rule: Rule) -> None:
        """Register *rule* after the existing ones."""
        self._rules = self._rules + (rule,)
        self.invalidate_dispatch()

    def remove_rule(self, rule: Rule) -> None:
        """Unregister *rule* (identity match); missing rules are ignored."""
        self._rules = tuple(r for r in self._rules if r is not rule)
        self.invalidate_dispatch()

    def invalidate_dispatch(self) -> None:
        """Drop the per-change-type dispatch table (rebuilt lazily).

        Called by every registration hook; call it directly after mutating
        a registered rule's ``triggers`` in place."""
        self._dispatch = {}

    def _rules_for(self, change: Change) -> List[Tuple[Rule, str]]:
        """``(rule, rule class name)`` pairs reacting to *change*, cached
        per concrete change type (the name rides along so the per-rule-class
        work split costs no attribute walk per firing)."""
        cls = change.__class__
        rules = self._dispatch.get(cls)
        if rules is None:
            rules = [(r, r.__class__.__name__) for r in self._rules if r.applies(change)]
            self._dispatch[cls] = rules
        return rules

    # ------------------------------------------------------------------ #
    # public API
    # ------------------------------------------------------------------ #
    def apply(
        self,
        state: SchedulingState,
        decision: Decision,
        budget: Optional[WorkBudget] = None,
        in_place: bool = False,
    ) -> DeductionResult:
        """Evaluate *decision* on *state*.

        The state is copied unless ``in_place`` is requested (used when the
        caller has already decided to commit the decision).  The returned
        result carries the new state, the full list of consequences and the
        amount of work performed; a contradiction is reported in the result
        rather than raised.  :class:`BudgetExhausted` propagates to the
        caller because it is not a property of the decision but of the
        scheduling session.
        """
        self.invocations += 1
        working = state if in_place else state.copy()
        consequences: List[Change] = []
        work = 0
        work_by_rule = self.work_by_rule
        dispatch = self._dispatch
        indexed = self.indexed_dispatch
        charge = budget.charge if budget is not None else None
        try:
            fifo = self.queue_mode == "fifo"
            if fifo and indexed and (budget is None or budget.notify_at is None):
                # The default worklist stays a bare deque, and the default
                # dispatch loop binds every per-event operation to a local:
                # this is the hottest loop in the code base and each saved
                # attribute walk or method call is paid a million times per
                # scheduling run.  A budget carrying a tier-transition mark
                # (``notify_at``) instead takes the generic loop below,
                # whose per-firing ``charge()`` fires the policy observer.
                queue: Deque[Change] = deque(self._expand(working, decision))
                consequences.extend(queue)
                popleft = queue.popleft
                queue_extend = queue.extend
                cons_extend = consequences.extend
                dispatch_get = dispatch.get
                max_iterations = self.max_iterations
                iterations = 0
                if budget is None:
                    while queue:
                        iterations += 1
                        if iterations > max_iterations:
                            raise Contradiction(
                                "deduction did not reach a fixed point (possible rule loop)"
                            )
                        change = popleft()
                        pairs = dispatch_get(change.__class__)
                        if pairs is None:
                            pairs = self._rules_for(change)
                        for rule, name in pairs:
                            work += 1
                            work_by_rule[name] += 1
                            produced = rule.fire(working, change)
                            if produced:
                                queue_extend(produced)
                                cons_extend(produced)
                    return DeductionResult(
                        state=working, consequences=consequences, work=work
                    )
                # Budgeted variant: the per-firing charge() call is inlined
                # as local arithmetic with the exact semantics of
                # WorkBudget.charge (increment first, then compare, leaving
                # ``spent`` one past the limit on exhaustion); the finally
                # block keeps the budget object coherent on every exit path.
                b_limit = budget.limit
                b_spent = budget.spent
                try:
                    while queue:
                        iterations += 1
                        if iterations > max_iterations:
                            raise Contradiction(
                                "deduction did not reach a fixed point (possible rule loop)"
                            )
                        change = popleft()
                        pairs = dispatch_get(change.__class__)
                        if pairs is None:
                            pairs = self._rules_for(change)
                        for rule, name in pairs:
                            work += 1
                            work_by_rule[name] += 1
                            b_spent += 1
                            if b_limit is not None and b_spent > b_limit:
                                raise BudgetExhausted(
                                    budget_exhausted_message(b_limit, b_spent)
                                )
                            produced = rule.fire(working, change)
                            if produced:
                                queue_extend(produced)
                                cons_extend(produced)
                finally:
                    budget.spent = b_spent
                return DeductionResult(
                    state=working, consequences=consequences, work=work
                )
            if fifo:
                queue = deque(self._expand(working, decision))
                consequences.extend(queue)
            else:
                queue = make_queue(self.queue_mode, self.queue_stats)
                initial = self._expand(working, decision)
                queue.push_many(initial)
                consequences.extend(initial)
            iterations = 0
            while queue:
                iterations += 1
                if iterations > self.max_iterations:
                    raise Contradiction(
                        "deduction did not reach a fixed point (possible rule loop)"
                    )
                change = queue.popleft() if fifo else queue.pop()
                if indexed:
                    cls = change.__class__
                    pairs = dispatch.get(cls)
                    if pairs is None:
                        pairs = self._rules_for(change)
                else:
                    pairs = [(r, r.__class__.__name__) for r in self._rules if r.applies(change)]
                for rule, name in pairs:
                    work += 1
                    work_by_rule[name] += 1
                    if charge is not None:
                        charge()
                    produced = rule.fire(working, change)
                    if produced:
                        if fifo:
                            queue.extend(produced)
                        else:
                            queue.push_many(produced)
                        consequences.extend(produced)
        except Contradiction as exc:
            return DeductionResult(
                state=working,
                consequences=consequences,
                contradiction=exc.reason,
                work=work,
            )
        return DeductionResult(state=working, consequences=consequences, work=work)

    def check(
        self,
        state: SchedulingState,
        decision: Decision,
        budget: Optional[WorkBudget] = None,
    ) -> DeductionResult:
        """Evaluate *decision* without ever mutating *state* (always copies)."""
        return self.apply(state, decision, budget=budget, in_place=False)

    # ------------------------------------------------------------------ #
    # decision expansion
    # ------------------------------------------------------------------ #
    @staticmethod
    def _expand(state: SchedulingState, decision: Decision) -> List[Change]:
        if isinstance(decision, ChooseCombination):
            return state.choose_combination(decision.u, decision.v, decision.distance)
        if isinstance(decision, DiscardCombination):
            return state.discard_combination(decision.u, decision.v, decision.distance)
        if isinstance(decision, ScheduleInCycle):
            return state.fix_cycle(decision.op_id, decision.cycle)
        if isinstance(decision, ForbidCycle):
            return state.forbid_cycle(decision.op_id, decision.cycle)
        if isinstance(decision, FuseVCs):
            changes: List[Change] = []
            for u, v in decision.pairs:
                changes += state.fuse_vcs(u, v)
            return changes
        if isinstance(decision, MarkVCsIncompatible):
            changes = []
            for u, v in decision.pairs:
                changes += state.mark_incompatible(u, v)
            return changes
        if isinstance(decision, SetExitDeadlines):
            return state.set_exit_deadlines(decision.as_dict())
        if isinstance(decision, PinVCs):
            changes = []
            for op_id, cluster in decision.pins:
                changes += state.pin_vc(op_id, cluster)
            return changes
        raise TypeError(f"unknown decision type {type(decision).__name__}")
