"""The Deduction Process (Section 3.3 of the paper).

The deduction process (DP) is the engine at the heart of the proposed
technique.  Every tentative decision — choosing or discarding a combination,
pinning an operation to a cycle, fusing virtual clusters or marking them
incompatible — is submitted to the DP, which derives all *mandatory*
consequences of the decision on a copy of the scheduling state, or reports a
contradiction proving that no valid schedule can follow from it.

The package is organised as:

* :mod:`repro.deduction.consequence` — change events, decisions, and the
  contradiction type exchanged between the state, the rules and the engine;
* :mod:`repro.deduction.state` — the scheduling state (bounds, combination
  lists, connected components, virtual cluster graph, communications);
* :mod:`repro.deduction.rules` — the state-updating and deduction rules;
* :mod:`repro.deduction.queue` — the propagation worklists (the paper's
  flat FIFO and the opt-in tiered, deduplicating discipline);
* :mod:`repro.deduction.engine` — the worklist engine that applies a
  decision and runs the rules to a fixed point.
"""

from repro.deduction.consequence import (
    Change,
    BoundChange,
    CombinationChosen,
    CombinationDiscarded,
    VCsFused,
    VCsIncompatible,
    CommCreated,
    CommResolved,
    CycleFixed,
    Contradiction,
    Decision,
    ChooseCombination,
    DiscardCombination,
    ScheduleInCycle,
    ForbidCycle,
    FuseVCs,
    MarkVCsIncompatible,
    SetExitDeadlines,
    PinVCs,
)
from repro.deduction.queue import (
    QUEUE_MODES,
    FifoPropagationQueue,
    TieredPropagationQueue,
)
from repro.deduction.state import SchedulingState
from repro.deduction.engine import DeductionProcess, DeductionResult, WorkBudget, BudgetExhausted

__all__ = [
    "Change",
    "BoundChange",
    "CombinationChosen",
    "CombinationDiscarded",
    "VCsFused",
    "VCsIncompatible",
    "CommCreated",
    "CommResolved",
    "CycleFixed",
    "Contradiction",
    "Decision",
    "ChooseCombination",
    "DiscardCombination",
    "ScheduleInCycle",
    "ForbidCycle",
    "FuseVCs",
    "MarkVCsIncompatible",
    "SetExitDeadlines",
    "PinVCs",
    "SchedulingState",
    "DeductionProcess",
    "DeductionResult",
    "WorkBudget",
    "BudgetExhausted",
    "QUEUE_MODES",
    "FifoPropagationQueue",
    "TieredPropagationQueue",
]
