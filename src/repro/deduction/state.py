"""The scheduling state manipulated by the deduction process.

Following Section 4.3 of the paper, a scheduling state is defined by

1. the estart/lstart of each instruction (including scheduler-inserted
   communications),
2. the list of chosen combinations,
3. the list of discarded combinations,
4. the list of non-treated combinations,
5. the set of connected components (complex instructions), and
6. the virtual cluster graph.

The state exposes *mutators* that perform one elementary change, keep the
representation coherent, and return the corresponding change events so the
deduction engine can feed them back to its rules.  Mutators raise
:class:`~repro.deduction.consequence.Contradiction` when the change is
impossible, which is exactly the paper's notion of a contradiction.

Every mutation is recorded on a :class:`~repro.trail.Trail`, so a candidate
decision can be probed **in place** and undone exactly::

    mark = state.checkpoint()
    try_some_decision(state)   # arbitrary mutators / deduction rules
    state.rollback(mark)       # state is observably identical to before

This replaces the old copy-per-probe scheme (one full dict/set/union-find/
VCG copy per candidate, per stage, per AWCT target) with the trail-based
apply-then-undo of SAT/CP solvers.  The state additionally maintains
dirty-tracked caches for the scheduler's candidate selection: the set of
still-undecided scheduling-graph pairs, the set of unfixed operations, and
the operations fixed at each cycle — all kept coherent by the same trail.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bounds.estart import compute_estart
from repro.deduction.consequence import (
    BoundChange,
    Change,
    CombinationChosen,
    CombinationDiscarded,
    CommCreated,
    CommResolved,
    Contradiction,
    CycleFixed,
    VCsFused,
    VCsIncompatible,
)
from repro.ir.operation import OpClass, Operation, make_copy
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.sgraph.combination import pair_key
from repro.sgraph.components import OffsetContradiction, OffsetUnionFind
from repro.sgraph.scheduling_graph import SchedulingGraph
from repro.trail import Trail
from repro.vcluster.communication import Communication, CommunicationSet
from repro.vcluster.vcg import VCContradiction, VirtualClusterGraph

INFINITY = math.inf


class SchedulingState:
    """Mutable scheduling state for one superblock and one AWCT target."""

    def __init__(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        sgraph: SchedulingGraph,
    ) -> None:
        self.block = block
        self.machine = machine
        self.sgraph = sgraph

        base_estart = (
            sgraph.base_estart if sgraph.block is block else compute_estart(block.graph)
        )
        self._original_ids: List[int] = block.op_ids
        self.estart: Dict[int, int] = dict(base_estart)
        self.lstart: Dict[int, float] = {op_id: INFINITY for op_id in self._original_ids}

        self._chosen: Dict[Tuple[int, int], int] = {}
        self._discarded: Dict[Tuple[int, int], Set[int]] = {}

        self.components = OffsetUnionFind(self._original_ids)
        self.vcg = VirtualClusterGraph(self._original_ids)
        self.comms = CommunicationSet()

        # Extra dependence edges (src, dst, latency) created for communications.
        self._comm_edges: List[Tuple[int, int, int]] = []
        # Operations created for communications, keyed by comm id.
        self._comm_ops: Dict[int, Operation] = {}
        # Single fully-linked communication per value (the paper's assumption
        # that each value is communicated at most once).
        self._value_flc: Dict[str, int] = {}
        self._next_comm_id = (max(self._original_ids) + 1) if self._original_ids else 0

        self.exit_deadlines: Dict[int, int] = {}

        # Delta-maintained bound aggregates (the estart/lstart-derived
        # quantities the candidate heuristics used to recompute from
        # scratch on every probe).  Every bound mutator updates them with
        # the applied delta and records the inverse delta on the trail, so
        # :meth:`compactness` and :meth:`total_slack` are O(1) reads and
        # rollback stays O(changes).
        self._sum_estart_orig: int = sum(self.estart[i] for i in self._original_ids)
        self._sum_slack: float = 0.0

        # Dirty-tracked candidate caches (kept coherent by the mutators and
        # restored by the trail on rollback).
        self._undecided_pairs: Set[Tuple[int, int]] = set(sgraph.pairs())
        self._unfixed: Set[int] = set(self._original_ids)
        self._fixed_at: Dict[int, Set[int]] = {}
        self._ids_cache: Optional[List[int]] = None
        self._comm_ids_cache: Optional[List[int]] = None
        self._class_ids_cache: Optional[Dict[OpClass, List[int]]] = None
        # Operation and latency lookup tables over originals + live comms
        # (one dict hit on the hottest rule paths instead of two calls).
        self._ops: Dict[int, Operation] = {i: block.op(i) for i in self._original_ids}
        self._latency: Dict[int, int] = {
            i: op.latency for i, op in self._ops.items()
        }

        # Unfixed-predecessor edge counts over the static dependence graph:
        # ``_unfixed_preds[i]`` is the number of predecessor edges of *i*
        # whose source operation is not yet fixed, so the "ready" test of
        # candidate selection (every producer pinned) is a zero check
        # instead of an O(preds) rescan.  Decremented by ``_mark_fixed``
        # through the trail, hence restored exactly on rollback.
        graph = block.graph
        self._unfixed_preds: Dict[int, int] = {
            i: len(graph.predecessors(i)) for i in self._original_ids
        }
        # Static per-operation views over the (immutable) dependence graph,
        # precomputed once so the hot bound/cluster rules iterate ready-made
        # tuples instead of filtering DepEdge lists on every firing.  The
        # register-adjacency of CommunicationSlackRule keeps its scan order
        # (successor edges first, then predecessor edges).
        self._succ_static: Dict[int, Tuple[Tuple[int, int], ...]] = {
            i: tuple((e.dst, e.latency) for e in graph.successors(i))
            for i in self._original_ids
        }
        self._pred_static: Dict[int, Tuple[Tuple[int, int], ...]] = {
            i: tuple((e.src, e.latency) for e in graph.predecessors(i))
            for i in self._original_ids
        }
        self._reg_adj: Dict[int, Tuple[Tuple[int, int], ...]] = {
            i: tuple((e.src, e.dst) for e in graph.successors(i) if e.is_register_edge)
            + tuple((e.src, e.dst) for e in graph.predecessors(i) if e.is_register_edge)
            for i in self._original_ids
        }
        self._reg_pred: Dict[int, Tuple[Tuple[int, Optional[str]], ...]] = {
            i: tuple((e.src, e.value) for e in graph.predecessors(i) if e.is_register_edge)
            for i in self._original_ids
        }
        self._reg_edge_triples: Tuple[Tuple[int, int, Optional[str]], ...] = tuple(
            (e.src, e.dst, e.value) for e in graph.register_edges()
        )
        self._value_consumers: Dict[str, Tuple[int, ...]] = {}
        for _src, _dst, _value in self._reg_edge_triples:
            if _value is not None and _value not in self._value_consumers:
                self._value_consumers[_value] = tuple(graph.consumers_of(_value))
        # Indices into ``_reg_edge_triples`` of the register edges touching
        # each operation (as src or dst) — lets the incompatibility rule
        # scan only the edges of the affected VCs' members, in edge order.
        _touch: Dict[int, List[int]] = {}
        for _idx, (_src, _dst, _value) in enumerate(self._reg_edge_triples):
            _touch.setdefault(_src, []).append(_idx)
            if _dst != _src:
                _touch.setdefault(_dst, []).append(_idx)
        self._reg_touch_idx: Dict[int, Tuple[int, ...]] = {
            k: tuple(v) for k, v in _touch.items()
        }
        # Scheduling-graph neighbours paired with their pair key, so the
        # hot combination rules skip the per-neighbour key construction.
        self._neighbor_keys: Dict[int, Tuple[Tuple[int, Tuple[int, int]], ...]] = {
            i: tuple(
                (other, (i, other) if i < other else (other, i))
                for other in sgraph.neighbors(i)
            )
            for i in self._original_ids
        }
        # Communication edges as per-op adjacency tuples, delta-maintained
        # alongside ``_comm_edges`` (same insertion order) so succ_edges /
        # pred_edges are dict hits instead of linear scans.
        self._succ_comm: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        self._pred_comm: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        # Remaining (neither discarded nor superseded by a choice)
        # combination distances per scheduling-graph pair, in the graph's
        # distance order.  Mirrors ``sgraph.distances(key) - discarded`` so
        # the hot combination rules iterate a ready-made tuple instead of
        # filtering the full distance list on every firing.
        self._remaining: Dict[Tuple[int, int], Tuple[int, ...]] = {
            key: sgraph.distances(*key) for key in self._undecided_pairs
        }
        # Per-class ``(members, min estart, max lstart)`` over operations
        # with a finite lstart — the aggregates ClassWindowPressureRule
        # checks on every firing.  Keys are pre-created for the original
        # operations' classes in first-appearance order (the iteration
        # order of :meth:`ids_by_class`); COPY joins at the end when the
        # first communication gets a finite deadline, which is also where
        # :meth:`ids_by_class` places the communications.
        self._class_pressure: Dict[OpClass, Tuple[int, int, int]] = {}
        for i in self._original_ids:
            op_class = self._ops[i].op_class
            if op_class not in self._class_pressure:
                self._class_pressure[op_class] = (0, 0, 0)
        # Revision stamps backing the out-edge cache: ``_vcg_rev_source``
        # hands out globally fresh stamps (monotone, never rolled back);
        # ``_vcg_rev`` is trail-recorded and set to a fresh stamp around
        # every actual VCG mutation.  Equal revisions therefore imply
        # identical VCG content even across rollbacks and redo replays —
        # a stamp is issued exactly once, and any mutation after it (kept
        # or not) rebinds ``_vcg_rev`` away from it.
        self._vcg_rev_source: int = 0
        self._vcg_rev: int = 0
        self._outedges_cache: Optional[Tuple[int, List[Tuple[int, int, str]]]] = None

        # The mutation trail; attached last so construction is not recorded.
        self.trail = Trail()
        self.components.attach_trail(self.trail)
        self.vcg.attach_trail(self.trail)
        self.comms.attach_trail(self.trail)

    # ------------------------------------------------------------------ #
    # checkpoint / rollback
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> int:
        """Mark the current trail position for a later :meth:`rollback`."""
        return self.trail.mark()

    def rollback(self, mark: int) -> int:
        """Undo every mutation since *mark*; returns entries undone."""
        undone = self.trail.rollback(mark)
        self._invalidate_id_caches()
        return undone

    def rollback_capture(self, mark: int) -> List[tuple]:
        """Undo every mutation since *mark*, returning a redo log."""
        log = self.trail.rollback_capture(mark)
        self._invalidate_id_caches()
        return log

    def state_token(self) -> Tuple[int, int]:
        """An epoch identifying this state's current content.

        Two equal tokens from the same state instance guarantee the state
        is byte-identical (see :meth:`repro.trail.Trail.token`); rolling
        back to a mark restores the token the state had there.  The probe
        memoization layer keys cached deductions on it."""
        return self.trail.token()

    def redo(self, log: List[tuple]) -> None:
        """Re-apply a redo log captured at the same state this one is in."""
        self.trail.redo(log)
        self._invalidate_id_caches()

    # ------------------------------------------------------------------ #
    # copying
    # ------------------------------------------------------------------ #
    def copy(self) -> "SchedulingState":
        clone = SchedulingState.__new__(SchedulingState)
        clone.block = self.block
        clone.machine = self.machine
        clone.sgraph = self.sgraph
        clone._original_ids = self._original_ids
        clone.estart = dict(self.estart)
        clone.lstart = dict(self.lstart)
        clone._chosen = dict(self._chosen)
        clone._discarded = {k: set(v) for k, v in self._discarded.items()}
        clone.components = self.components.copy()
        clone.vcg = self.vcg.copy()
        clone.comms = self.comms.copy()
        clone._comm_edges = list(self._comm_edges)
        clone._comm_ops = dict(self._comm_ops)
        clone._value_flc = dict(self._value_flc)
        clone._next_comm_id = self._next_comm_id
        clone.exit_deadlines = dict(self.exit_deadlines)
        clone._sum_estart_orig = self._sum_estart_orig
        clone._sum_slack = self._sum_slack
        clone._undecided_pairs = set(self._undecided_pairs)
        clone._unfixed = set(self._unfixed)
        clone._fixed_at = {cycle: set(ops) for cycle, ops in self._fixed_at.items()}
        clone._ids_cache = None
        clone._comm_ids_cache = None
        clone._class_ids_cache = None
        clone._ops = dict(self._ops)
        clone._latency = dict(self._latency)
        clone._unfixed_preds = dict(self._unfixed_preds)
        clone._succ_static = self._succ_static
        clone._pred_static = self._pred_static
        clone._reg_adj = self._reg_adj
        clone._reg_pred = self._reg_pred
        clone._reg_edge_triples = self._reg_edge_triples
        clone._value_consumers = self._value_consumers
        clone._reg_touch_idx = self._reg_touch_idx
        clone._neighbor_keys = self._neighbor_keys
        clone._succ_comm = dict(self._succ_comm)
        clone._pred_comm = dict(self._pred_comm)
        clone._remaining = dict(self._remaining)
        clone._class_pressure = dict(self._class_pressure)
        clone._vcg_rev_source = self._vcg_rev_source
        clone._vcg_rev = self._vcg_rev
        clone._outedges_cache = None
        clone.trail = Trail()
        clone.components.attach_trail(clone.trail)
        clone.vcg.attach_trail(clone.trail)
        clone.comms.attach_trail(clone.trail)
        return clone

    # ------------------------------------------------------------------ #
    # operations (original + communications)
    # ------------------------------------------------------------------ #
    def is_comm(self, op_id: int) -> bool:
        return op_id in self._comm_ops

    def has_op(self, op_id: int) -> bool:
        """Whether *op_id* is a live operation of this state.

        Communications can be dropped (redundant PLCs); change events that
        still reference them must be ignored by the rules."""
        return op_id in self.estart

    def op(self, op_id: int) -> Operation:
        return self._ops[op_id]

    @property
    def original_ids(self) -> List[int]:
        return self._original_ids

    @property
    def comm_ids(self) -> List[int]:
        ids = self._comm_ids_cache
        if ids is None:
            ids = self._comm_ids_cache = sorted(self._comm_ops)
        return ids

    @property
    def all_ids(self) -> List[int]:
        ids = self._ids_cache
        if ids is None:
            ids = self._ids_cache = self._original_ids + self.comm_ids
        return ids

    def _invalidate_id_caches(self) -> None:
        self._ids_cache = None
        self._comm_ids_cache = None
        self._class_ids_cache = None

    def ids_by_class(self) -> Dict[OpClass, List[int]]:
        """Live operation ids grouped by operation class.

        Rebuilt lazily when communications are added or dropped (and on
        rollback); grouping order follows :attr:`all_ids`, so consumers see
        the same iteration order as a fresh scan."""
        groups = self._class_ids_cache
        if groups is None:
            groups = {}
            ops = self._ops
            for op_id in self.all_ids:
                groups.setdefault(ops[op_id].op_class, []).append(op_id)
            self._class_ids_cache = groups
        return groups

    def latency(self, op_id: int) -> int:
        return self._latency[op_id]

    # ------------------------------------------------------------------ #
    # dependence structure including communication edges
    # ------------------------------------------------------------------ #
    def succ_edges(self, op_id: int) -> Tuple[Tuple[int, int], ...]:
        """Successors of *op_id* with the minimum issue distance to each.

        Static graph edges first (precomputed), then communication edges in
        insertion order — the exact order the old linear scan produced."""
        base = self._succ_static.get(op_id, ())
        extra = self._succ_comm.get(op_id)
        return base + extra if extra else base

    def pred_edges(self, op_id: int) -> Tuple[Tuple[int, int], ...]:
        """Predecessors of *op_id* with the minimum issue distance from each."""
        base = self._pred_static.get(op_id, ())
        extra = self._pred_comm.get(op_id)
        return base + extra if extra else base

    def comm_edges(self) -> List[Tuple[int, int, int]]:
        return list(self._comm_edges)

    def register_adjacency(self, op_id: int) -> Tuple[Tuple[int, int], ...]:
        """Static ``(producer, consumer)`` register edges touching *op_id*
        (successor edges first, then predecessor edges — the scan order of
        CommunicationSlackRule)."""
        return self._reg_adj.get(op_id, ())

    def register_pred_values(self, op_id: int) -> Tuple[Tuple[int, Optional[str]], ...]:
        """Static ``(producer, value)`` register-edge predecessors of *op_id*."""
        return self._reg_pred.get(op_id, ())

    def register_edge_triples(self) -> Tuple[Tuple[int, int, Optional[str]], ...]:
        """All register edges of the block as ``(src, dst, value)`` triples."""
        return self._reg_edge_triples

    def consumers_of_value(self, value: str) -> Tuple[int, ...]:
        """Consumers of *value* in the static graph (precomputed)."""
        cached = self._value_consumers.get(value)
        if cached is not None:
            return cached
        return tuple(self.block.graph.consumers_of(value))

    # ------------------------------------------------------------------ #
    # bounds
    # ------------------------------------------------------------------ #
    def slack(self, op_id: int) -> float:
        return self.lstart[op_id] - self.estart[op_id]

    def is_fixed(self, op_id: int) -> bool:
        return self.lstart[op_id] == self.estart[op_id]

    def cycle_of(self, op_id: int) -> Optional[int]:
        """The fixed cycle of *op_id*, or None when it still has slack."""
        if self.is_fixed(op_id):
            return self.estart[op_id]
        return None

    @property
    def horizon(self) -> int:
        """Largest finite lstart (the last cycle the schedule may use)."""
        finite = [int(v) for v in self.lstart.values() if v != INFINITY]
        return max(finite) if finite else 0

    def _mark_fixed(self, op_id: int, cycle: int) -> None:
        """Maintain the unfixed/fixed-at caches when a window collapses."""
        trail = self.trail
        trail.discard_from_set(self._unfixed, op_id)
        bucket = self._fixed_at.get(cycle)
        if bucket is None:
            bucket = set()
            trail.set_item(self._fixed_at, cycle, bucket)
        trail.add_to_set(bucket, op_id)
        if op_id not in self._comm_ops:
            # One producer of every consumer just got pinned: decrement the
            # consumers' unfixed-predecessor edge counts (communications are
            # not in the static graph, so only originals contribute).
            preds = self._unfixed_preds
            for edge in self.block.graph.successors(op_id):
                trail.set_item(preds, edge.dst, preds[edge.dst] - 1)

    def unfixed_pred_counts(self) -> Dict[int, int]:
        """Per-original-operation count of predecessor edges whose source is
        not yet fixed (a read-only view; zero means every producer is pinned
        and the operation is ready for cycle selection)."""
        return self._unfixed_preds

    def unfixed_ids(self, communications: bool = False) -> List[int]:
        """Operations whose issue cycle is not yet fixed.

        With ``communications=True`` only copy operations are returned,
        otherwise only original operations.  Backed by a dirty-tracked set,
        so the cost is proportional to the unfixed population instead of the
        whole block.

        The list is in **no particular order** (raw set iteration, which
        differs between trail rollbacks and fresh copies): callers that pick
        one element must apply a total-order tie-break, as
        ``candidates.lowest_slack_operation`` does with ``(slack, op_id)`` —
        otherwise trail and copy probing could diverge."""
        comm_ops = self._comm_ops
        if communications:
            return [i for i in self._unfixed if i in comm_ops]
        return [i for i in self._unfixed if i not in comm_ops]

    def fixed_ops_at(self, cycle: int) -> List[int]:
        """Operations (original and copies) fixed at *cycle*, ascending."""
        bucket = self._fixed_at.get(cycle)
        if not bucket:
            return []
        return sorted(bucket)

    def n_fixed_comms_in(self, low: int, high: int) -> int:
        """Number of fixed communications whose cycle lies in ``[low, high]``.

        A fixed communication's cycle is its (frozen) estart, so the
        fixed-at buckets answer this exactly — the bus-capacity rule scans
        a few buckets instead of all communications per probed cycle."""
        total = 0
        comm_ops = self._comm_ops
        fixed_at = self._fixed_at
        for cycle in range(low, high + 1):
            bucket = fixed_at.get(cycle)
            if bucket:
                for i in bucket:
                    if i in comm_ops:
                        total += 1
        return total

    # ------------------------------------------------------------------ #
    # class-pressure aggregates
    # ------------------------------------------------------------------ #
    def class_pressure(self) -> Dict[OpClass, Tuple[int, int, int]]:
        """Per-class ``(members, min estart, max lstart)`` over operations
        with a finite lstart, in :meth:`ids_by_class` key order (read-only
        view; classes with no member report ``(0, 0, 0)``).

        Equals what a fresh scan over :meth:`ids_by_class` would compute —
        delta-maintained by the bound mutators so ClassWindowPressureRule
        fires in O(classes) instead of O(operations)."""
        return self._class_pressure

    def _class_join(self, op_id: int, estart: int, lstart: int) -> None:
        """An operation's lstart became finite: join its class aggregate."""
        op_class = self._ops[op_id].op_class
        entry = self._class_pressure.get(op_class)
        if entry is None or entry[0] == 0:
            self.trail.set_item(self._class_pressure, op_class, (1, estart, lstart))
            return
        n, low, high = entry
        self.trail.set_item(
            self._class_pressure,
            op_class,
            (n + 1, estart if estart < low else low, lstart if lstart > high else high),
        )

    def _class_recompute(self, op_class: OpClass) -> None:
        """Rebuild one class aggregate from its live members (the rare path:
        the member defining the current min or max moved or was dropped)."""
        estart, lstart = self.estart, self.lstart
        n = low = high = 0
        for i in self.ids_by_class().get(op_class, ()):
            ls = lstart[i]
            if ls == INFINITY:
                continue
            e = estart[i]
            ils = int(ls)
            if n == 0:
                n, low, high = 1, e, ils
            else:
                n += 1
                if e < low:
                    low = e
                if ils > high:
                    high = ils
        self.trail.set_item(self._class_pressure, op_class, (n, low, high))

    def set_estart(self, op_id: int, value: int) -> List[Change]:
        current = self.estart[op_id]
        if value <= current:
            return []
        lstart = self.lstart[op_id]
        if value > lstart:
            raise Contradiction(
                f"estart of {op_id} would become {value} > lstart {lstart}"
            )
        trail = self.trail
        trail.set_item(self.estart, op_id, value)
        if op_id not in self._comm_ops:
            trail.set_attr(self, "_sum_estart_orig", self._sum_estart_orig + value - current)
        if lstart != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack - (value - current))
            # A finite lstart makes the op a member of its class-pressure
            # aggregate; if it defined the class's min estart, recompute.
            op_class = self._ops[op_id].op_class
            if current == self._class_pressure[op_class][1]:
                self._class_recompute(op_class)
        changes: List[Change] = [BoundChange(op_id, "estart", value)]
        if lstart == value:
            self._mark_fixed(op_id, value)
            changes.append(CycleFixed(op_id, value))
        return changes

    def set_lstart(self, op_id: int, value: int) -> List[Change]:
        current = self.lstart[op_id]
        if value >= current:
            return []
        estart = self.estart[op_id]
        if value < estart:
            raise Contradiction(
                f"lstart of {op_id} would become {value} < estart {estart}"
            )
        trail = self.trail
        trail.set_item(self.lstart, op_id, value)
        if current == INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack + (value - estart))
            # First finite lstart: the op joins its class-pressure aggregate.
            self._class_join(op_id, estart, value)
        else:
            trail.set_attr(self, "_sum_slack", self._sum_slack - (current - value))
            op_class = self._ops[op_id].op_class
            if current == self._class_pressure[op_class][2]:
                self._class_recompute(op_class)
        changes: List[Change] = [BoundChange(op_id, "lstart", value)]
        if estart == value:
            self._mark_fixed(op_id, value)
            changes.append(CycleFixed(op_id, value))
        return changes

    def fix_cycle(self, op_id: int, cycle: int) -> List[Change]:
        changes = self.set_estart(op_id, cycle)
        changes += self.set_lstart(op_id, cycle)
        return changes

    def forbid_cycle(self, op_id: int, cycle: int) -> List[Change]:
        """Exclude *cycle* from the operation's window.

        Only boundary cycles can be excluded exactly (the window is kept as
        an interval); excluding an interior cycle is a no-op.
        """
        if self.is_fixed(op_id) and self.estart[op_id] == cycle:
            raise Contradiction(f"operation {op_id} is pinned to forbidden cycle {cycle}")
        if self.estart[op_id] == cycle:
            return self.set_estart(op_id, cycle + 1)
        if self.lstart[op_id] == cycle:
            return self.set_lstart(op_id, cycle - 1)
        return []

    # ------------------------------------------------------------------ #
    # combinations
    # ------------------------------------------------------------------ #
    def chosen_distance(self, u: int, v: int) -> Optional[int]:
        """The chosen distance ``cycle(v') - cycle(u')`` for the ordered pair."""
        key = pair_key(u, v)
        return self._chosen.get(key)

    def discarded_distances(self, u: int, v: int) -> Set[int]:
        return set(self._discarded.get(pair_key(u, v), set()))

    def remaining_combinations(self, u: int, v: int) -> List[int]:
        """Distances still available for the pair (empty when decided).

        Backed by the delta-maintained ``_remaining`` tuples, so the read is
        a dict hit instead of filtering the full distance list; the order is
        the scheduling graph's distance order, exactly as before."""
        key = pair_key(u, v)
        if key in self._chosen:
            return []
        return list(self._remaining.get(key, ()))

    def is_pair_decided(self, u: int, v: int) -> bool:
        key = pair_key(u, v)
        if key in self._chosen:
            return True
        return key not in self._undecided_pairs

    def untreated_pairs(self) -> List[Tuple[int, int]]:
        """Pairs of the scheduling graph not yet decided."""
        return sorted(self._undecided_pairs)

    def chosen_combinations(self) -> Dict[Tuple[int, int], int]:
        return dict(self._chosen)

    def choose_combination(self, u: int, v: int, distance: int) -> List[Change]:
        key = pair_key(u, v)
        if key != (u, v):
            distance = -distance
            u, v = key
        valid = self.sgraph.distances(u, v)
        if distance not in valid:
            raise Contradiction(
                f"distance {distance} is not a combination of pair ({u}, {v})"
            )
        if distance in self._discarded.get(key, ()):
            raise Contradiction(
                f"combination ({u}, {v})={distance} chosen but already discarded"
            )
        already = self._chosen.get(key)
        if already is not None:
            if already != distance:
                raise Contradiction(
                    f"pair ({u}, {v}) already has combination {already}, cannot choose {distance}"
                )
            return []
        self.trail.set_item(self._chosen, key, distance)
        self.trail.discard_from_set(self._undecided_pairs, key)
        changes: List[Change] = [CombinationChosen(u, v, distance)]
        # All other combinations of the pair are implicitly discarded.
        for other in sorted(set(valid) - {distance}):
            changes += self._discard(key, other)
        # The pair now forms (part of) a connected component.
        try:
            self.components.link(u, v, distance)
        except OffsetContradiction as exc:
            raise Contradiction(str(exc)) from exc
        return changes

    def _discard(self, key: Tuple[int, int], distance: int) -> List[Change]:
        trail = self.trail
        bucket = self._discarded.get(key)
        if bucket is None:
            bucket = set()
            trail.set_item(self._discarded, key, bucket)
        elif distance in bucket:
            return []
        trail.add_to_set(bucket, distance)
        left = self._remaining.get(key)
        if left is not None:
            left = tuple([d for d in left if d != distance])
            trail.set_item(self._remaining, key, left)
            if (
                not left
                and key not in self._chosen
                and key in self._undecided_pairs
            ):
                # Every combination of the pair is now ruled out: it is decided.
                trail.discard_from_set(self._undecided_pairs, key)
        return [CombinationDiscarded(key[0], key[1], distance)]

    def discard_combination(self, u: int, v: int, distance: int) -> List[Change]:
        key = pair_key(u, v)
        if key != (u, v):
            distance = -distance
            u, v = key
        if self._chosen.get(key) == distance:
            raise Contradiction(
                f"combination ({u}, {v})={distance} must be discarded but is chosen"
            )
        if distance not in self.sgraph.distances(u, v):
            return []
        return self._discard(key, distance)

    # ------------------------------------------------------------------ #
    # overlap queries
    # ------------------------------------------------------------------ #
    def can_overlap(self, u: int, v: int) -> bool:
        """Whether the current windows still allow the two to overlap."""
        lat_u, lat_v = self.latency(u), self.latency(v)
        return (
            self.estart[u] <= self.lstart[v] + lat_v - 1
            and self.estart[v] <= self.lstart[u] + lat_u - 1
        )

    def must_overlap(self, u: int, v: int) -> bool:
        """Whether every placement within the current windows overlaps."""
        lat_u, lat_v = self.latency(u), self.latency(v)
        if self.lstart[u] == INFINITY or self.lstart[v] == INFINITY:
            return False
        can_put_v_after_u = self.lstart[v] - self.estart[u] >= lat_u
        can_put_u_after_v = self.lstart[u] - self.estart[v] >= lat_v
        return not (can_put_v_after_u or can_put_u_after_v)

    def combination_window(self, u: int, v: int, distance: int) -> Tuple[int, float]:
        """Cycles at which the pair could be placed at the given distance.

        Returns ``(low, high)`` for the *u* issue cycle; the window is empty
        when ``low > high``.
        """
        key = pair_key(u, v)
        if key != (u, v):
            distance = -distance
        a, b = key
        # Mirrored inline by CombinationWindowRule on the hot path — keep
        # the two formulas in sync.
        low = max(self.estart[a], self.estart[b] - distance)
        high = min(self.lstart[a], self.lstart[b] - distance)
        return low, high

    def combination_slack(self, u: int, v: int, distance: int) -> float:
        low, high = self.combination_window(u, v, distance)
        return high - low

    def pair_slack(self, u: int, v: int) -> float:
        """Slack of the tightest remaining combination of the pair.

        Inlines :meth:`combination_slack` over the ``_remaining`` tuple in
        pair-key orientation (the stored distances are already key-oriented),
        avoiding a per-distance pair normalization and list build on the
        most-constraining-pair hot path."""
        key = pair_key(u, v)
        if key in self._chosen:
            return INFINITY
        remaining = self._remaining.get(key, ())
        if not remaining:
            return INFINITY
        a, b = key
        ea, eb = self.estart[a], self.estart[b]
        la, lb = self.lstart[a], self.lstart[b]
        best = INFINITY
        for distance in remaining:
            low = ea if ea >= eb - distance else eb - distance
            high = la if la <= lb - distance else lb - distance
            slack = high - low
            if slack < best:
                best = slack
        return best

    # ------------------------------------------------------------------ #
    # virtual clusters
    # ------------------------------------------------------------------ #
    def _bump_vcg_rev(self) -> None:
        """Stamp a fresh VCG revision (invalidates the out-edge cache).

        Must run whenever VCG mutations may have landed on the trail —
        including fusions that raise *after* partially mutating: those
        mutations stay visible until the caller rolls back, and the cache
        must not treat them as the stamped-at content."""
        self._vcg_rev_source += 1
        self.trail.set_attr(self, "_vcg_rev", self._vcg_rev_source)

    def fuse_vcs(self, u: int, v: int) -> List[Change]:
        try:
            merged = self.vcg.fuse(u, v)
        except VCContradiction as exc:
            self._bump_vcg_rev()
            raise Contradiction(str(exc)) from exc
        if merged:
            self._bump_vcg_rev()
            return [VCsFused(u, v)]
        return []

    def mark_incompatible(self, u: int, v: int) -> List[Change]:
        try:
            # mark_incompatible mutates nothing before its checks pass, so
            # the contradiction path needs no revision bump.
            added = self.vcg.mark_incompatible(u, v)
        except VCContradiction as exc:
            raise Contradiction(str(exc)) from exc
        if added:
            self._bump_vcg_rev()
            return [VCsIncompatible(u, v)]
        return []

    def pin_vc(self, op_id: int, physical_cluster: int) -> List[Change]:
        try:
            self.vcg.pin(op_id, physical_cluster)
        except VCContradiction as exc:
            raise Contradiction(str(exc)) from exc
        return []

    def same_vc(self, u: int, v: int) -> bool:
        return self.vcg.same_vc(u, v)

    def outedges(self) -> List[Tuple[int, int, str]]:
        """Register edges crossing two *different, still compatible* VCs.

        These are the out-edges stage 3 has to eliminate: each must end up
        either inside one VC (fusion) or across incompatible VCs (with a
        communication).  Returns a fresh list (stage 3 mutates the VCG while
        iterating it); the underlying scan is cached against the VCG
        revision stamp, so the scoring reads that only need the edge count
        pay a cache hit instead of an O(edges) union-find walk."""
        return list(self._outedges())

    def _outedges(self) -> List[Tuple[int, int, str]]:
        cached = self._outedges_cache
        rev = self._vcg_rev
        if cached is not None and cached[0] == rev:
            return cached[1]
        same_vc = self.vcg.same_vc
        are_incompatible = self.vcg.are_incompatible
        result = [
            triple
            for triple in self._reg_edge_triples
            if not same_vc(triple[0], triple[1])
            and not are_incompatible(triple[0], triple[1])
        ]
        self._outedges_cache = (rev, result)
        return result

    def crossing_edges(self) -> List[Tuple[int, int, str]]:
        """Register edges whose endpoints are in incompatible VCs."""
        result = []
        for edge in self.block.graph.register_edges():
            if self.vcg.are_incompatible(edge.src, edge.dst):
                result.append((edge.src, edge.dst, edge.value))
        return result

    # ------------------------------------------------------------------ #
    # communications
    # ------------------------------------------------------------------ #
    @property
    def copy_latency(self) -> int:
        """The machine's modelled inter-cluster copy latency (uniform for
        every topology — see :mod:`repro.machine.interconnect`)."""
        return self.machine.copy_latency

    #: Historical alias from the bus-only interconnect model.
    bus_latency = copy_latency

    def flc_for_value(self, value: str) -> Optional[Communication]:
        comm_id = self._value_flc.get(value)
        if comm_id is None:
            return None
        return self.comms.get(comm_id)

    def add_flc(self, producer: int, consumer: int, value: str) -> List[Change]:
        """Create (or reuse) the fully linked communication for *value*."""
        trail = self.trail
        existing = self._value_flc.get(value)
        if existing is not None:
            comm = self.comms.get(existing)
            changes: List[Change] = []
            if comm.consumer != consumer:
                # The same transferred value serves another consumer: the
                # consumer simply reads the communicated copy, so only the
                # timing edge is added.
                self._add_comm_edge(existing, consumer, self.copy_latency)
                changes += self.set_estart(
                    consumer, self.estart[existing] + self.copy_latency
                )
            return changes

        comm_id = self._new_comm_id()
        comm = Communication(comm_id=comm_id, value=value, producer=producer, consumer=consumer)
        self.comms.add(comm)
        self._register_comm_op(comm_id, make_copy(comm_id, value, latency=self.copy_latency))
        trail.set_item(self._value_flc, value, comm_id)
        self._add_comm_edge(producer, comm_id, self.latency(producer))
        self._add_comm_edge(comm_id, consumer, self.copy_latency)

        earliest = self.estart[producer] + self.latency(producer)
        latest = self.lstart[consumer] - self.copy_latency
        if latest < earliest:
            raise Contradiction(
                f"no room for communication of {value!r} between {producer} and {consumer}"
            )
        trail.set_item(self.estart, comm_id, earliest)
        trail.set_item(self.lstart, comm_id, latest)
        if latest != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack + (latest - earliest))
            self._class_join(comm_id, earliest, int(latest))
        changes = [CommCreated(comm_id)]
        if earliest == latest:
            self._mark_fixed(comm_id, earliest)
            changes.append(CycleFixed(comm_id, earliest))
        else:
            trail.add_to_set(self._unfixed, comm_id)
        return changes

    def add_plc(
        self,
        alternatives: Sequence[Tuple[int, int]],
        value: Optional[str] = None,
        producer: Optional[int] = None,
        consumer: Optional[int] = None,
    ) -> List[Change]:
        """Create a partially linked communication covering *alternatives*."""
        alternatives = tuple(sorted(set(alternatives)))
        if not alternatives:
            raise ValueError("a PLC needs at least one producer/consumer alternative")
        # Avoid duplicates: an equivalent partial communication already queued.
        for comm in self.comms.partially_linked():
            if set(comm.alternatives) == set(alternatives):
                return []
        trail = self.trail
        comm_id = self._new_comm_id()
        comm = Communication(
            comm_id=comm_id,
            value=value,
            producer=producer,
            consumer=consumer,
            alternatives=alternatives,
        )
        self.comms.add(comm)
        self._register_comm_op(
            comm_id, make_copy(comm_id, value or f"plc{comm_id}", latency=self.copy_latency)
        )

        earliest = min(
            self.estart[p] + self.latency(p) for p in comm.possible_producers()
        )
        latest = max(
            self.lstart[c] - self.copy_latency for c in comm.possible_consumers()
        )
        if latest < earliest:
            raise Contradiction(
                f"no room for partially linked communication over {alternatives}"
            )
        trail.set_item(self.estart, comm_id, earliest)
        trail.set_item(self.lstart, comm_id, latest)
        if latest != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack + (latest - earliest))
            self._class_join(comm_id, earliest, int(latest))
        changes = [CommCreated(comm_id)]
        if earliest == latest:
            self._mark_fixed(comm_id, earliest)
            changes.append(CycleFixed(comm_id, earliest))
        else:
            trail.add_to_set(self._unfixed, comm_id)
        return changes

    def resolve_plc(self, comm_id: int, producer: int, consumer: int, value: str) -> List[Change]:
        """Promote a partially linked communication to a fully linked one."""
        comm = self.comms.get(comm_id)
        if comm.is_fully_linked:
            return []
        existing = self._value_flc.get(value)
        if existing is not None and existing != comm_id:
            # The value already has its communication; this PLC is redundant.
            self._drop_comm(comm_id)
            return [CommResolved(comm_id)]
        resolved = comm.resolved(producer, consumer, value)
        self.comms.replace(resolved)
        trail = self.trail
        trail.set_item(self._value_flc, value, comm_id)
        self._add_comm_edge(producer, comm_id, self.latency(producer))
        self._add_comm_edge(comm_id, consumer, self.copy_latency)
        changes: List[Change] = [CommResolved(comm_id)]
        changes += self.set_estart(comm_id, self.estart[producer] + self.latency(producer))
        changes += self.set_lstart(comm_id, int(self.lstart[consumer]) - self.copy_latency
                                   if self.lstart[consumer] != INFINITY else self.lstart[comm_id])
        return changes

    def remove_plc_alternative(self, comm_id: int, pair: Tuple[int, int]) -> List[Change]:
        """Drop one producer/consumer alternative from a partially linked
        communication; when a single alternative remains the communication
        is promoted to a fully linked one, and when none remains it is
        dropped as unnecessary."""
        comm = self.comms.get(comm_id)
        if comm.is_fully_linked or pair not in comm.alternatives:
            return []
        remaining = tuple(a for a in comm.alternatives if a != pair)
        if not remaining:
            self._drop_comm(comm_id)
            return [CommResolved(comm_id)]
        if len(remaining) == 1:
            producer, consumer = remaining[0]
            edge = self.block.graph.edge(producer, consumer)
            value = edge.value if edge is not None and edge.value else f"plc{comm_id}"
            return self.resolve_plc(comm_id, producer, consumer, value)
        from dataclasses import replace as _replace

        self.comms.replace(_replace(comm, alternatives=remaining))
        return []

    def drop_unresolved_plcs(self) -> List[int]:
        """Remove partially linked communications that never became real.

        Called at the very end of scheduling: PLCs are insurance for copies
        that might be needed; once every virtual-cluster relation is decided
        the ones still unresolved are unnecessary by construction."""
        dropped = []
        for comm in list(self.comms.partially_linked()):
            self._drop_comm(comm.comm_id)
            dropped.append(comm.comm_id)
        return dropped

    def _drop_comm(self, comm_id: int) -> None:
        """Remove a redundant partially linked communication."""
        trail = self.trail
        cycle = self.cycle_of(comm_id) if comm_id in self.estart else None
        if cycle is not None:
            bucket = self._fixed_at.get(cycle)
            if bucket is not None:
                trail.discard_from_set(bucket, comm_id)
        trail.discard_from_set(self._unfixed, comm_id)
        trail.del_item(self._comm_ops, comm_id)
        trail.del_item(self._ops, comm_id)
        trail.del_item(self._latency, comm_id)
        lstart = self.lstart.get(comm_id, INFINITY)
        if lstart != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack - (lstart - self.estart[comm_id]))
        trail.del_item(self.estart, comm_id)
        trail.del_item(self.lstart, comm_id)
        remaining_edges = [
            (s, d, l) for (s, d, l) in self._comm_edges if s != comm_id and d != comm_id
        ]
        trail.set_attr(self, "_comm_edges", remaining_edges)
        succ, pred = self._succ_comm, self._pred_comm
        out_edges = succ.get(comm_id)
        if out_edges:
            for dst, _lat in out_edges:
                trail.set_item(pred, dst, tuple(p for p in pred[dst] if p[0] != comm_id))
            trail.del_item(succ, comm_id)
        in_edges = pred.get(comm_id)
        if in_edges:
            for src, _lat in in_edges:
                trail.set_item(succ, src, tuple(s for s in succ[src] if s[0] != comm_id))
            trail.del_item(pred, comm_id)
        self.comms.remove(comm_id)
        self._invalidate_id_caches()
        if lstart != INFINITY:
            # The dropped communication was a member of the COPY aggregate.
            self._class_recompute(OpClass.COPY)

    def _add_comm_edge(self, src: int, dst: int, latency: int) -> None:
        """Record a communication dependence edge, keeping the per-op
        adjacency tuples in sync with ``_comm_edges`` (same insertion
        order, all through the trail)."""
        trail = self.trail
        trail.append_to_list(self._comm_edges, (src, dst, latency))
        succ, pred = self._succ_comm, self._pred_comm
        trail.set_item(succ, src, succ.get(src, ()) + ((dst, latency),))
        trail.set_item(pred, dst, pred.get(dst, ()) + ((src, latency),))

    def _register_comm_op(self, comm_id: int, op: Operation) -> None:
        trail = self.trail
        trail.set_item(self._comm_ops, comm_id, op)
        trail.set_item(self._ops, comm_id, op)
        trail.set_item(self._latency, comm_id, op.latency)
        self._invalidate_id_caches()

    def _new_comm_id(self) -> int:
        comm_id = self._next_comm_id
        self.trail.set_attr(self, "_next_comm_id", comm_id + 1)
        return comm_id

    # ------------------------------------------------------------------ #
    # exit deadlines
    # ------------------------------------------------------------------ #
    def set_exit_deadlines(self, deadlines: Dict[int, int]) -> List[Change]:
        changes: List[Change] = []
        trail = self.trail
        for op_id, cycle in deadlines.items():
            trail.set_item(self.exit_deadlines, op_id, cycle)
        for op_id, cycle in deadlines.items():
            changes += self.set_lstart(op_id, cycle)
        # Operations with no dependence path to any exit must still issue no
        # later than the block's final exit.  Only applied once every exit
        # has a deadline: partial deadline sets are used by the minAWCT
        # tightening probes and must not constrain unrelated operations.
        all_exits_bounded = all(
            e in self.exit_deadlines for e in self.block.exit_ids
        )
        if all_exits_bounded and self.exit_deadlines:
            last_deadline = max(self.exit_deadlines.values())
            for op_id in self._original_ids:
                if self.lstart[op_id] == INFINITY:
                    changes += self.set_lstart(op_id, last_deadline)
        return changes

    # ------------------------------------------------------------------ #
    # summary metrics used by the decision heuristics
    # ------------------------------------------------------------------ #
    def n_communications(self) -> int:
        return len(self.comms)

    def compactness(self) -> float:
        """Sum of original-operation estarts: smaller packs the code earlier.

        Delta-maintained by the bound mutators (an O(1) read); equals
        ``sum(self.estart[i] for i in self.original_ids)`` exactly."""
        return float(self._sum_estart_orig)

    def outedge_vc_ratio(self) -> float:
        n_vcs = self.vcg.n_vcs
        if n_vcs == 0:
            return 0.0
        return len(self._outedges()) / n_vcs

    def total_slack(self) -> float:
        """Sum of finite ``lstart - estart`` windows over all live operations.

        Delta-maintained by the bound mutators (an O(1) read); every term
        is integral, so the incremental float sum is exact and equals the
        full recomputation byte for byte."""
        return float(self._sum_slack)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fixed = sum(1 for i in self.all_ids if self.is_fixed(i))
        return (
            f"SchedulingState({self.block.name}: {fixed}/{len(self.all_ids)} fixed, "
            f"{len(self._chosen)} chosen combs, {self.vcg.n_vcs} VCs, "
            f"{len(self.comms)} comms)"
        )
