"""The scheduling state manipulated by the deduction process.

Following Section 4.3 of the paper, a scheduling state is defined by

1. the estart/lstart of each instruction (including scheduler-inserted
   communications),
2. the list of chosen combinations,
3. the list of discarded combinations,
4. the list of non-treated combinations,
5. the set of connected components (complex instructions), and
6. the virtual cluster graph.

The state exposes *mutators* that perform one elementary change, keep the
representation coherent, and return the corresponding change events so the
deduction engine can feed them back to its rules.  Mutators raise
:class:`~repro.deduction.consequence.Contradiction` when the change is
impossible, which is exactly the paper's notion of a contradiction.

Every mutation is recorded on a :class:`~repro.trail.Trail`, so a candidate
decision can be probed **in place** and undone exactly::

    mark = state.checkpoint()
    try_some_decision(state)   # arbitrary mutators / deduction rules
    state.rollback(mark)       # state is observably identical to before

This replaces the old copy-per-probe scheme (one full dict/set/union-find/
VCG copy per candidate, per stage, per AWCT target) with the trail-based
apply-then-undo of SAT/CP solvers.  The state additionally maintains
dirty-tracked caches for the scheduler's candidate selection: the set of
still-undecided scheduling-graph pairs, the set of unfixed operations, and
the operations fixed at each cycle — all kept coherent by the same trail.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.bounds.estart import compute_estart
from repro.deduction.consequence import (
    BoundChange,
    Change,
    CombinationChosen,
    CombinationDiscarded,
    CommCreated,
    CommResolved,
    Contradiction,
    CycleFixed,
    VCsFused,
    VCsIncompatible,
)
from repro.ir.operation import OpClass, Operation, make_copy
from repro.ir.superblock import Superblock
from repro.machine.machine import ClusteredMachine
from repro.sgraph.combination import pair_key
from repro.sgraph.components import OffsetContradiction, OffsetUnionFind
from repro.sgraph.scheduling_graph import SchedulingGraph
from repro.trail import Trail
from repro.vcluster.communication import Communication, CommunicationSet
from repro.vcluster.vcg import VCContradiction, VirtualClusterGraph

INFINITY = math.inf


class SchedulingState:
    """Mutable scheduling state for one superblock and one AWCT target."""

    def __init__(
        self,
        block: Superblock,
        machine: ClusteredMachine,
        sgraph: SchedulingGraph,
    ) -> None:
        self.block = block
        self.machine = machine
        self.sgraph = sgraph

        base_estart = (
            sgraph.base_estart if sgraph.block is block else compute_estart(block.graph)
        )
        self._original_ids: List[int] = block.op_ids
        self.estart: Dict[int, int] = dict(base_estart)
        self.lstart: Dict[int, float] = {op_id: INFINITY for op_id in self._original_ids}

        self._chosen: Dict[Tuple[int, int], int] = {}
        self._discarded: Dict[Tuple[int, int], Set[int]] = {}

        self.components = OffsetUnionFind(self._original_ids)
        self.vcg = VirtualClusterGraph(self._original_ids)
        self.comms = CommunicationSet()

        # Extra dependence edges (src, dst, latency) created for communications.
        self._comm_edges: List[Tuple[int, int, int]] = []
        # Operations created for communications, keyed by comm id.
        self._comm_ops: Dict[int, Operation] = {}
        # Single fully-linked communication per value (the paper's assumption
        # that each value is communicated at most once).
        self._value_flc: Dict[str, int] = {}
        self._next_comm_id = (max(self._original_ids) + 1) if self._original_ids else 0

        self.exit_deadlines: Dict[int, int] = {}

        # Delta-maintained bound aggregates (the estart/lstart-derived
        # quantities the candidate heuristics used to recompute from
        # scratch on every probe).  Every bound mutator updates them with
        # the applied delta and records the inverse delta on the trail, so
        # :meth:`compactness` and :meth:`total_slack` are O(1) reads and
        # rollback stays O(changes).
        self._sum_estart_orig: int = sum(self.estart[i] for i in self._original_ids)
        self._sum_slack: float = 0.0

        # Dirty-tracked candidate caches (kept coherent by the mutators and
        # restored by the trail on rollback).
        self._undecided_pairs: Set[Tuple[int, int]] = set(sgraph.pairs())
        self._unfixed: Set[int] = set(self._original_ids)
        self._fixed_at: Dict[int, Set[int]] = {}
        self._ids_cache: Optional[List[int]] = None
        self._comm_ids_cache: Optional[List[int]] = None
        self._class_ids_cache: Optional[Dict[OpClass, List[int]]] = None
        # Operation and latency lookup tables over originals + live comms
        # (one dict hit on the hottest rule paths instead of two calls).
        self._ops: Dict[int, Operation] = {i: block.op(i) for i in self._original_ids}
        self._latency: Dict[int, int] = {
            i: op.latency for i, op in self._ops.items()
        }

        # The mutation trail; attached last so construction is not recorded.
        self.trail = Trail()
        self.components.attach_trail(self.trail)
        self.vcg.attach_trail(self.trail)
        self.comms.attach_trail(self.trail)

    # ------------------------------------------------------------------ #
    # checkpoint / rollback
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> int:
        """Mark the current trail position for a later :meth:`rollback`."""
        return self.trail.mark()

    def rollback(self, mark: int) -> int:
        """Undo every mutation since *mark*; returns entries undone."""
        undone = self.trail.rollback(mark)
        self._invalidate_id_caches()
        return undone

    def rollback_capture(self, mark: int) -> List[tuple]:
        """Undo every mutation since *mark*, returning a redo log."""
        log = self.trail.rollback_capture(mark)
        self._invalidate_id_caches()
        return log

    def state_token(self) -> Tuple[int, int]:
        """An epoch identifying this state's current content.

        Two equal tokens from the same state instance guarantee the state
        is byte-identical (see :meth:`repro.trail.Trail.token`); rolling
        back to a mark restores the token the state had there.  The probe
        memoization layer keys cached deductions on it."""
        return self.trail.token()

    def redo(self, log: List[tuple]) -> None:
        """Re-apply a redo log captured at the same state this one is in."""
        self.trail.redo(log)
        self._invalidate_id_caches()

    # ------------------------------------------------------------------ #
    # copying
    # ------------------------------------------------------------------ #
    def copy(self) -> "SchedulingState":
        clone = SchedulingState.__new__(SchedulingState)
        clone.block = self.block
        clone.machine = self.machine
        clone.sgraph = self.sgraph
        clone._original_ids = self._original_ids
        clone.estart = dict(self.estart)
        clone.lstart = dict(self.lstart)
        clone._chosen = dict(self._chosen)
        clone._discarded = {k: set(v) for k, v in self._discarded.items()}
        clone.components = self.components.copy()
        clone.vcg = self.vcg.copy()
        clone.comms = self.comms.copy()
        clone._comm_edges = list(self._comm_edges)
        clone._comm_ops = dict(self._comm_ops)
        clone._value_flc = dict(self._value_flc)
        clone._next_comm_id = self._next_comm_id
        clone.exit_deadlines = dict(self.exit_deadlines)
        clone._sum_estart_orig = self._sum_estart_orig
        clone._sum_slack = self._sum_slack
        clone._undecided_pairs = set(self._undecided_pairs)
        clone._unfixed = set(self._unfixed)
        clone._fixed_at = {cycle: set(ops) for cycle, ops in self._fixed_at.items()}
        clone._ids_cache = None
        clone._comm_ids_cache = None
        clone._class_ids_cache = None
        clone._ops = dict(self._ops)
        clone._latency = dict(self._latency)
        clone.trail = Trail()
        clone.components.attach_trail(clone.trail)
        clone.vcg.attach_trail(clone.trail)
        clone.comms.attach_trail(clone.trail)
        return clone

    # ------------------------------------------------------------------ #
    # operations (original + communications)
    # ------------------------------------------------------------------ #
    def is_comm(self, op_id: int) -> bool:
        return op_id in self._comm_ops

    def has_op(self, op_id: int) -> bool:
        """Whether *op_id* is a live operation of this state.

        Communications can be dropped (redundant PLCs); change events that
        still reference them must be ignored by the rules."""
        return op_id in self.estart

    def op(self, op_id: int) -> Operation:
        return self._ops[op_id]

    @property
    def original_ids(self) -> List[int]:
        return self._original_ids

    @property
    def comm_ids(self) -> List[int]:
        ids = self._comm_ids_cache
        if ids is None:
            ids = self._comm_ids_cache = sorted(self._comm_ops)
        return ids

    @property
    def all_ids(self) -> List[int]:
        ids = self._ids_cache
        if ids is None:
            ids = self._ids_cache = self._original_ids + self.comm_ids
        return ids

    def _invalidate_id_caches(self) -> None:
        self._ids_cache = None
        self._comm_ids_cache = None
        self._class_ids_cache = None

    def ids_by_class(self) -> Dict[OpClass, List[int]]:
        """Live operation ids grouped by operation class.

        Rebuilt lazily when communications are added or dropped (and on
        rollback); grouping order follows :attr:`all_ids`, so consumers see
        the same iteration order as a fresh scan."""
        groups = self._class_ids_cache
        if groups is None:
            groups = {}
            ops = self._ops
            for op_id in self.all_ids:
                groups.setdefault(ops[op_id].op_class, []).append(op_id)
            self._class_ids_cache = groups
        return groups

    def latency(self, op_id: int) -> int:
        return self._latency[op_id]

    # ------------------------------------------------------------------ #
    # dependence structure including communication edges
    # ------------------------------------------------------------------ #
    def succ_edges(self, op_id: int) -> List[Tuple[int, int]]:
        """Successors of *op_id* with the minimum issue distance to each."""
        result: List[Tuple[int, int]] = []
        if not self.is_comm(op_id):
            result.extend(
                (edge.dst, edge.latency) for edge in self.block.graph.successors(op_id)
            )
        result.extend((dst, lat) for src, dst, lat in self._comm_edges if src == op_id)
        return result

    def pred_edges(self, op_id: int) -> List[Tuple[int, int]]:
        """Predecessors of *op_id* with the minimum issue distance from each."""
        result: List[Tuple[int, int]] = []
        if not self.is_comm(op_id):
            result.extend(
                (edge.src, edge.latency) for edge in self.block.graph.predecessors(op_id)
            )
        result.extend((src, lat) for src, dst, lat in self._comm_edges if dst == op_id)
        return result

    def comm_edges(self) -> List[Tuple[int, int, int]]:
        return list(self._comm_edges)

    # ------------------------------------------------------------------ #
    # bounds
    # ------------------------------------------------------------------ #
    def slack(self, op_id: int) -> float:
        return self.lstart[op_id] - self.estart[op_id]

    def is_fixed(self, op_id: int) -> bool:
        return self.lstart[op_id] == self.estart[op_id]

    def cycle_of(self, op_id: int) -> Optional[int]:
        """The fixed cycle of *op_id*, or None when it still has slack."""
        if self.is_fixed(op_id):
            return self.estart[op_id]
        return None

    @property
    def horizon(self) -> int:
        """Largest finite lstart (the last cycle the schedule may use)."""
        finite = [int(v) for v in self.lstart.values() if v != INFINITY]
        return max(finite) if finite else 0

    def _mark_fixed(self, op_id: int, cycle: int) -> None:
        """Maintain the unfixed/fixed-at caches when a window collapses."""
        trail = self.trail
        trail.discard_from_set(self._unfixed, op_id)
        bucket = self._fixed_at.get(cycle)
        if bucket is None:
            bucket = set()
            trail.set_item(self._fixed_at, cycle, bucket)
        trail.add_to_set(bucket, op_id)

    def unfixed_ids(self, communications: bool = False) -> List[int]:
        """Operations whose issue cycle is not yet fixed.

        With ``communications=True`` only copy operations are returned,
        otherwise only original operations.  Backed by a dirty-tracked set,
        so the cost is proportional to the unfixed population instead of the
        whole block.

        The list is in **no particular order** (raw set iteration, which
        differs between trail rollbacks and fresh copies): callers that pick
        one element must apply a total-order tie-break, as
        ``candidates.lowest_slack_operation`` does with ``(slack, op_id)`` —
        otherwise trail and copy probing could diverge."""
        comm_ops = self._comm_ops
        if communications:
            return [i for i in self._unfixed if i in comm_ops]
        return [i for i in self._unfixed if i not in comm_ops]

    def fixed_ops_at(self, cycle: int) -> List[int]:
        """Operations (original and copies) fixed at *cycle*, ascending."""
        bucket = self._fixed_at.get(cycle)
        if not bucket:
            return []
        return sorted(bucket)

    def set_estart(self, op_id: int, value: int) -> List[Change]:
        current = self.estart[op_id]
        if value <= current:
            return []
        lstart = self.lstart[op_id]
        if value > lstart:
            raise Contradiction(
                f"estart of {op_id} would become {value} > lstart {lstart}"
            )
        trail = self.trail
        trail.set_item(self.estart, op_id, value)
        if op_id not in self._comm_ops:
            trail.set_attr(self, "_sum_estart_orig", self._sum_estart_orig + value - current)
        if lstart != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack - (value - current))
        changes: List[Change] = [BoundChange(op_id, "estart", value)]
        if lstart == value:
            self._mark_fixed(op_id, value)
            changes.append(CycleFixed(op_id, value))
        return changes

    def set_lstart(self, op_id: int, value: int) -> List[Change]:
        current = self.lstart[op_id]
        if value >= current:
            return []
        estart = self.estart[op_id]
        if value < estart:
            raise Contradiction(
                f"lstart of {op_id} would become {value} < estart {estart}"
            )
        trail = self.trail
        trail.set_item(self.lstart, op_id, value)
        if current == INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack + (value - estart))
        else:
            trail.set_attr(self, "_sum_slack", self._sum_slack - (current - value))
        changes: List[Change] = [BoundChange(op_id, "lstart", value)]
        if estart == value:
            self._mark_fixed(op_id, value)
            changes.append(CycleFixed(op_id, value))
        return changes

    def fix_cycle(self, op_id: int, cycle: int) -> List[Change]:
        changes = self.set_estart(op_id, cycle)
        changes += self.set_lstart(op_id, cycle)
        return changes

    def forbid_cycle(self, op_id: int, cycle: int) -> List[Change]:
        """Exclude *cycle* from the operation's window.

        Only boundary cycles can be excluded exactly (the window is kept as
        an interval); excluding an interior cycle is a no-op.
        """
        if self.is_fixed(op_id) and self.estart[op_id] == cycle:
            raise Contradiction(f"operation {op_id} is pinned to forbidden cycle {cycle}")
        if self.estart[op_id] == cycle:
            return self.set_estart(op_id, cycle + 1)
        if self.lstart[op_id] == cycle:
            return self.set_lstart(op_id, cycle - 1)
        return []

    # ------------------------------------------------------------------ #
    # combinations
    # ------------------------------------------------------------------ #
    def chosen_distance(self, u: int, v: int) -> Optional[int]:
        """The chosen distance ``cycle(v') - cycle(u')`` for the ordered pair."""
        key = pair_key(u, v)
        return self._chosen.get(key)

    def discarded_distances(self, u: int, v: int) -> Set[int]:
        return set(self._discarded.get(pair_key(u, v), set()))

    def remaining_combinations(self, u: int, v: int) -> List[int]:
        """Distances still available for the pair (empty when decided)."""
        key = pair_key(u, v)
        if key in self._chosen:
            return []
        distances = self.sgraph.distances(*key)
        discarded = self._discarded.get(key)
        if not discarded:
            return list(distances)
        return [d for d in distances if d not in discarded]

    def is_pair_decided(self, u: int, v: int) -> bool:
        key = pair_key(u, v)
        if key in self._chosen:
            return True
        return key not in self._undecided_pairs

    def untreated_pairs(self) -> List[Tuple[int, int]]:
        """Pairs of the scheduling graph not yet decided."""
        return sorted(self._undecided_pairs)

    def chosen_combinations(self) -> Dict[Tuple[int, int], int]:
        return dict(self._chosen)

    def choose_combination(self, u: int, v: int, distance: int) -> List[Change]:
        key = pair_key(u, v)
        if key != (u, v):
            distance = -distance
            u, v = key
        valid = self.sgraph.distances(u, v)
        if distance not in valid:
            raise Contradiction(
                f"distance {distance} is not a combination of pair ({u}, {v})"
            )
        if distance in self._discarded.get(key, ()):
            raise Contradiction(
                f"combination ({u}, {v})={distance} chosen but already discarded"
            )
        already = self._chosen.get(key)
        if already is not None:
            if already != distance:
                raise Contradiction(
                    f"pair ({u}, {v}) already has combination {already}, cannot choose {distance}"
                )
            return []
        self.trail.set_item(self._chosen, key, distance)
        self.trail.discard_from_set(self._undecided_pairs, key)
        changes: List[Change] = [CombinationChosen(u, v, distance)]
        # All other combinations of the pair are implicitly discarded.
        for other in sorted(set(valid) - {distance}):
            changes += self._discard(key, other)
        # The pair now forms (part of) a connected component.
        try:
            self.components.link(u, v, distance)
        except OffsetContradiction as exc:
            raise Contradiction(str(exc)) from exc
        return changes

    def _discard(self, key: Tuple[int, int], distance: int) -> List[Change]:
        bucket = self._discarded.get(key)
        if bucket is None:
            bucket = set()
            self.trail.set_item(self._discarded, key, bucket)
        if distance in bucket:
            return []
        self.trail.add_to_set(bucket, distance)
        if (
            key not in self._chosen
            and key in self._undecided_pairs
            and len(bucket) == len(self.sgraph.distances(*key))
        ):
            # Every combination of the pair is now ruled out: it is decided.
            self.trail.discard_from_set(self._undecided_pairs, key)
        return [CombinationDiscarded(key[0], key[1], distance)]

    def discard_combination(self, u: int, v: int, distance: int) -> List[Change]:
        key = pair_key(u, v)
        if key != (u, v):
            distance = -distance
            u, v = key
        if self._chosen.get(key) == distance:
            raise Contradiction(
                f"combination ({u}, {v})={distance} must be discarded but is chosen"
            )
        if distance not in self.sgraph.distances(u, v):
            return []
        return self._discard(key, distance)

    # ------------------------------------------------------------------ #
    # overlap queries
    # ------------------------------------------------------------------ #
    def can_overlap(self, u: int, v: int) -> bool:
        """Whether the current windows still allow the two to overlap."""
        lat_u, lat_v = self.latency(u), self.latency(v)
        return (
            self.estart[u] <= self.lstart[v] + lat_v - 1
            and self.estart[v] <= self.lstart[u] + lat_u - 1
        )

    def must_overlap(self, u: int, v: int) -> bool:
        """Whether every placement within the current windows overlaps."""
        lat_u, lat_v = self.latency(u), self.latency(v)
        if self.lstart[u] == INFINITY or self.lstart[v] == INFINITY:
            return False
        can_put_v_after_u = self.lstart[v] - self.estart[u] >= lat_u
        can_put_u_after_v = self.lstart[u] - self.estart[v] >= lat_v
        return not (can_put_v_after_u or can_put_u_after_v)

    def combination_window(self, u: int, v: int, distance: int) -> Tuple[int, float]:
        """Cycles at which the pair could be placed at the given distance.

        Returns ``(low, high)`` for the *u* issue cycle; the window is empty
        when ``low > high``.
        """
        key = pair_key(u, v)
        if key != (u, v):
            distance = -distance
        a, b = key
        # Mirrored inline by CombinationWindowRule on the hot path — keep
        # the two formulas in sync.
        low = max(self.estart[a], self.estart[b] - distance)
        high = min(self.lstart[a], self.lstart[b] - distance)
        return low, high

    def combination_slack(self, u: int, v: int, distance: int) -> float:
        low, high = self.combination_window(u, v, distance)
        return high - low

    def pair_slack(self, u: int, v: int) -> float:
        """Slack of the tightest remaining combination of the pair."""
        remaining = self.remaining_combinations(u, v)
        if not remaining:
            return INFINITY
        return min(self.combination_slack(u, v, d) for d in remaining)

    # ------------------------------------------------------------------ #
    # virtual clusters
    # ------------------------------------------------------------------ #
    def fuse_vcs(self, u: int, v: int) -> List[Change]:
        try:
            merged = self.vcg.fuse(u, v)
        except VCContradiction as exc:
            raise Contradiction(str(exc)) from exc
        return [VCsFused(u, v)] if merged else []

    def mark_incompatible(self, u: int, v: int) -> List[Change]:
        try:
            added = self.vcg.mark_incompatible(u, v)
        except VCContradiction as exc:
            raise Contradiction(str(exc)) from exc
        return [VCsIncompatible(u, v)] if added else []

    def pin_vc(self, op_id: int, physical_cluster: int) -> List[Change]:
        try:
            self.vcg.pin(op_id, physical_cluster)
        except VCContradiction as exc:
            raise Contradiction(str(exc)) from exc
        return []

    def same_vc(self, u: int, v: int) -> bool:
        return self.vcg.same_vc(u, v)

    def outedges(self) -> List[Tuple[int, int, str]]:
        """Register edges crossing two *different, still compatible* VCs.

        These are the out-edges stage 3 has to eliminate: each must end up
        either inside one VC (fusion) or across incompatible VCs (with a
        communication)."""
        result = []
        for edge in self.block.graph.register_edges():
            if self.vcg.same_vc(edge.src, edge.dst):
                continue
            if self.vcg.are_incompatible(edge.src, edge.dst):
                continue
            result.append((edge.src, edge.dst, edge.value))
        return result

    def crossing_edges(self) -> List[Tuple[int, int, str]]:
        """Register edges whose endpoints are in incompatible VCs."""
        result = []
        for edge in self.block.graph.register_edges():
            if self.vcg.are_incompatible(edge.src, edge.dst):
                result.append((edge.src, edge.dst, edge.value))
        return result

    # ------------------------------------------------------------------ #
    # communications
    # ------------------------------------------------------------------ #
    @property
    def copy_latency(self) -> int:
        """The machine's modelled inter-cluster copy latency (uniform for
        every topology — see :mod:`repro.machine.interconnect`)."""
        return self.machine.copy_latency

    #: Historical alias from the bus-only interconnect model.
    bus_latency = copy_latency

    def flc_for_value(self, value: str) -> Optional[Communication]:
        comm_id = self._value_flc.get(value)
        if comm_id is None:
            return None
        return self.comms.get(comm_id)

    def add_flc(self, producer: int, consumer: int, value: str) -> List[Change]:
        """Create (or reuse) the fully linked communication for *value*."""
        trail = self.trail
        existing = self._value_flc.get(value)
        if existing is not None:
            comm = self.comms.get(existing)
            changes: List[Change] = []
            if comm.consumer != consumer:
                # The same transferred value serves another consumer: the
                # consumer simply reads the communicated copy, so only the
                # timing edge is added.
                trail.append_to_list(
                    self._comm_edges, (existing, consumer, self.copy_latency)
                )
                changes += self.set_estart(
                    consumer, self.estart[existing] + self.copy_latency
                )
            return changes

        comm_id = self._new_comm_id()
        comm = Communication(comm_id=comm_id, value=value, producer=producer, consumer=consumer)
        self.comms.add(comm)
        self._register_comm_op(comm_id, make_copy(comm_id, value, latency=self.copy_latency))
        trail.set_item(self._value_flc, value, comm_id)
        trail.append_to_list(self._comm_edges, (producer, comm_id, self.latency(producer)))
        trail.append_to_list(self._comm_edges, (comm_id, consumer, self.copy_latency))

        earliest = self.estart[producer] + self.latency(producer)
        latest = self.lstart[consumer] - self.copy_latency
        if latest < earliest:
            raise Contradiction(
                f"no room for communication of {value!r} between {producer} and {consumer}"
            )
        trail.set_item(self.estart, comm_id, earliest)
        trail.set_item(self.lstart, comm_id, latest)
        if latest != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack + (latest - earliest))
        changes = [CommCreated(comm_id)]
        if earliest == latest:
            self._mark_fixed(comm_id, earliest)
            changes.append(CycleFixed(comm_id, earliest))
        else:
            trail.add_to_set(self._unfixed, comm_id)
        return changes

    def add_plc(
        self,
        alternatives: Sequence[Tuple[int, int]],
        value: Optional[str] = None,
        producer: Optional[int] = None,
        consumer: Optional[int] = None,
    ) -> List[Change]:
        """Create a partially linked communication covering *alternatives*."""
        alternatives = tuple(sorted(set(alternatives)))
        if not alternatives:
            raise ValueError("a PLC needs at least one producer/consumer alternative")
        # Avoid duplicates: an equivalent partial communication already queued.
        for comm in self.comms.partially_linked():
            if set(comm.alternatives) == set(alternatives):
                return []
        trail = self.trail
        comm_id = self._new_comm_id()
        comm = Communication(
            comm_id=comm_id,
            value=value,
            producer=producer,
            consumer=consumer,
            alternatives=alternatives,
        )
        self.comms.add(comm)
        self._register_comm_op(
            comm_id, make_copy(comm_id, value or f"plc{comm_id}", latency=self.copy_latency)
        )

        earliest = min(
            self.estart[p] + self.latency(p) for p in comm.possible_producers()
        )
        latest = max(
            self.lstart[c] - self.copy_latency for c in comm.possible_consumers()
        )
        if latest < earliest:
            raise Contradiction(
                f"no room for partially linked communication over {alternatives}"
            )
        trail.set_item(self.estart, comm_id, earliest)
        trail.set_item(self.lstart, comm_id, latest)
        if latest != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack + (latest - earliest))
        changes = [CommCreated(comm_id)]
        if earliest == latest:
            self._mark_fixed(comm_id, earliest)
            changes.append(CycleFixed(comm_id, earliest))
        else:
            trail.add_to_set(self._unfixed, comm_id)
        return changes

    def resolve_plc(self, comm_id: int, producer: int, consumer: int, value: str) -> List[Change]:
        """Promote a partially linked communication to a fully linked one."""
        comm = self.comms.get(comm_id)
        if comm.is_fully_linked:
            return []
        existing = self._value_flc.get(value)
        if existing is not None and existing != comm_id:
            # The value already has its communication; this PLC is redundant.
            self._drop_comm(comm_id)
            return [CommResolved(comm_id)]
        resolved = comm.resolved(producer, consumer, value)
        self.comms.replace(resolved)
        trail = self.trail
        trail.set_item(self._value_flc, value, comm_id)
        trail.append_to_list(self._comm_edges, (producer, comm_id, self.latency(producer)))
        trail.append_to_list(self._comm_edges, (comm_id, consumer, self.copy_latency))
        changes: List[Change] = [CommResolved(comm_id)]
        changes += self.set_estart(comm_id, self.estart[producer] + self.latency(producer))
        changes += self.set_lstart(comm_id, int(self.lstart[consumer]) - self.copy_latency
                                   if self.lstart[consumer] != INFINITY else self.lstart[comm_id])
        return changes

    def remove_plc_alternative(self, comm_id: int, pair: Tuple[int, int]) -> List[Change]:
        """Drop one producer/consumer alternative from a partially linked
        communication; when a single alternative remains the communication
        is promoted to a fully linked one, and when none remains it is
        dropped as unnecessary."""
        comm = self.comms.get(comm_id)
        if comm.is_fully_linked or pair not in comm.alternatives:
            return []
        remaining = tuple(a for a in comm.alternatives if a != pair)
        if not remaining:
            self._drop_comm(comm_id)
            return [CommResolved(comm_id)]
        if len(remaining) == 1:
            producer, consumer = remaining[0]
            edge = self.block.graph.edge(producer, consumer)
            value = edge.value if edge is not None and edge.value else f"plc{comm_id}"
            return self.resolve_plc(comm_id, producer, consumer, value)
        from dataclasses import replace as _replace

        self.comms.replace(_replace(comm, alternatives=remaining))
        return []

    def drop_unresolved_plcs(self) -> List[int]:
        """Remove partially linked communications that never became real.

        Called at the very end of scheduling: PLCs are insurance for copies
        that might be needed; once every virtual-cluster relation is decided
        the ones still unresolved are unnecessary by construction."""
        dropped = []
        for comm in list(self.comms.partially_linked()):
            self._drop_comm(comm.comm_id)
            dropped.append(comm.comm_id)
        return dropped

    def _drop_comm(self, comm_id: int) -> None:
        """Remove a redundant partially linked communication."""
        trail = self.trail
        cycle = self.cycle_of(comm_id) if comm_id in self.estart else None
        if cycle is not None:
            bucket = self._fixed_at.get(cycle)
            if bucket is not None:
                trail.discard_from_set(bucket, comm_id)
        trail.discard_from_set(self._unfixed, comm_id)
        trail.del_item(self._comm_ops, comm_id)
        trail.del_item(self._ops, comm_id)
        trail.del_item(self._latency, comm_id)
        lstart = self.lstart.get(comm_id, INFINITY)
        if lstart != INFINITY:
            trail.set_attr(self, "_sum_slack", self._sum_slack - (lstart - self.estart[comm_id]))
        trail.del_item(self.estart, comm_id)
        trail.del_item(self.lstart, comm_id)
        remaining_edges = [
            (s, d, l) for (s, d, l) in self._comm_edges if s != comm_id and d != comm_id
        ]
        trail.set_attr(self, "_comm_edges", remaining_edges)
        self.comms.remove(comm_id)
        self._invalidate_id_caches()

    def _register_comm_op(self, comm_id: int, op: Operation) -> None:
        trail = self.trail
        trail.set_item(self._comm_ops, comm_id, op)
        trail.set_item(self._ops, comm_id, op)
        trail.set_item(self._latency, comm_id, op.latency)
        self._invalidate_id_caches()

    def _new_comm_id(self) -> int:
        comm_id = self._next_comm_id
        self.trail.set_attr(self, "_next_comm_id", comm_id + 1)
        return comm_id

    # ------------------------------------------------------------------ #
    # exit deadlines
    # ------------------------------------------------------------------ #
    def set_exit_deadlines(self, deadlines: Dict[int, int]) -> List[Change]:
        changes: List[Change] = []
        trail = self.trail
        for op_id, cycle in deadlines.items():
            trail.set_item(self.exit_deadlines, op_id, cycle)
        for op_id, cycle in deadlines.items():
            changes += self.set_lstart(op_id, cycle)
        # Operations with no dependence path to any exit must still issue no
        # later than the block's final exit.  Only applied once every exit
        # has a deadline: partial deadline sets are used by the minAWCT
        # tightening probes and must not constrain unrelated operations.
        all_exits_bounded = all(
            e in self.exit_deadlines for e in self.block.exit_ids
        )
        if all_exits_bounded and self.exit_deadlines:
            last_deadline = max(self.exit_deadlines.values())
            for op_id in self._original_ids:
                if self.lstart[op_id] == INFINITY:
                    changes += self.set_lstart(op_id, last_deadline)
        return changes

    # ------------------------------------------------------------------ #
    # summary metrics used by the decision heuristics
    # ------------------------------------------------------------------ #
    def n_communications(self) -> int:
        return len(self.comms)

    def compactness(self) -> float:
        """Sum of original-operation estarts: smaller packs the code earlier.

        Delta-maintained by the bound mutators (an O(1) read); equals
        ``sum(self.estart[i] for i in self.original_ids)`` exactly."""
        return float(self._sum_estart_orig)

    def outedge_vc_ratio(self) -> float:
        n_vcs = self.vcg.n_vcs
        if n_vcs == 0:
            return 0.0
        return len(self.outedges()) / n_vcs

    def total_slack(self) -> float:
        """Sum of finite ``lstart - estart`` windows over all live operations.

        Delta-maintained by the bound mutators (an O(1) read); every term
        is integral, so the incremental float sum is exact and equals the
        full recomputation byte for byte."""
        return float(self._sum_slack)

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        fixed = sum(1 for i in self.all_ids if self.is_fixed(i))
        return (
            f"SchedulingState({self.block.name}: {fixed}/{len(self.all_ids)} fixed, "
            f"{len(self._chosen)} chosen combs, {self.vcg.n_vcs} VCs, "
            f"{len(self.comms)} comms)"
        )
