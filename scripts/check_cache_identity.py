#!/usr/bin/env python
"""CI cache-identity gate: cold-vs-warm byte identity of the gated matrix.

Runs the 12-cell scenario matrix that ``BENCH_vcs.json`` gates
(``ring``/``p2p`` machine families x ``membound``/``exitdense`` workload
families, ``vcs`` backend) **twice against a fresh cache directory in
one process**: a cold pass that computes and stores every cell, then a
warm pass that must serve *every* cell from the on-disk result cache —
100% hits, zero recomputes — and reproduce identical per-cell digests
and ``dp_work``.  Exits non-zero on any miss, stray store or digest
drift, and writes the hit/miss/store counters of both passes as a JSON
report (the CI artifact).

Usage::

    PYTHONPATH=src python scripts/check_cache_identity.py \
        [--output cache_identity.json] [--jobs N]
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import run_scenario_matrix  # noqa: E402
from repro.runner import BatchScheduler, CacheSpec, CacheStats  # noqa: E402

MACHINE_FAMILIES = ("ring", "p2p")
WORKLOAD_FAMILIES = ("membound", "exitdense")
BACKENDS = ("vcs",)
BLOCKS = 1


def run_pass(cache_spec: CacheSpec, jobs: int):
    stats = CacheStats()
    cells, _ = run_scenario_matrix(
        MACHINE_FAMILIES,
        WORKLOAD_FAMILIES,
        backends=BACKENDS,
        blocks_per_benchmark=BLOCKS,
        runner=BatchScheduler(jobs=jobs),
        cache=cache_spec,
        cache_stats=stats,
    )
    return cells, stats


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        metavar="PATH",
        default="cache_identity.json",
        help="write the cold/warm cache-stats report here",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count for both passes (default: 1)",
    )
    args = parser.parse_args()

    errors: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-cache-identity-") as root:
        spec = CacheSpec(root=root)
        cold_cells, cold = run_pass(spec, args.jobs)
        warm_cells, warm = run_pass(spec, args.jobs)

    n_cells = len(cold_cells)
    if cold.hits != 0:
        errors.append(
            f"cold pass hit a supposedly fresh cache ({cold.hits} hits) — "
            "the temp directory was not fresh or keying is unstable"
        )
    if warm.misses != 0 or warm.stores != 0:
        errors.append(
            f"warm pass recomputed {warm.misses} job(s) "
            f"(stores={warm.stores}) — expected a 100% cache-served replay"
        )
    if warm.hits != cold.stores or warm.hit_rate != 1.0:
        errors.append(
            f"warm pass hits ({warm.hits}) != cold stores ({cold.stores}) "
            f"or hit rate {warm.hit_rate} != 1.0"
        )
    cold_rows = [c.as_row() for c in cold_cells]
    warm_rows = [c.as_row() for c in warm_cells]
    if cold_rows != warm_rows:
        drifted = [
            f"{c.machine}/{c.workload_family}/{c.backend}"
            for c, w in zip(cold_cells, warm_cells)
            if c.as_row() != w.as_row()
        ]
        errors.append(
            f"warm matrix drifted from cold on {len(drifted)}/{n_cells} "
            f"cell(s): {drifted} — cache hits are not byte-identical"
        )

    report = {
        "matrix": {
            "machine_families": list(MACHINE_FAMILIES),
            "workload_families": list(WORKLOAD_FAMILIES),
            "backends": list(BACKENDS),
            "blocks_per_benchmark": BLOCKS,
            "cells": n_cells,
        },
        "jobs": args.jobs,
        "cold_cache": cold.to_dict(),
        "warm_cache": warm.to_dict(),
        "digests_identical_warm_vs_cold": cold_rows == warm_rows,
        "ok": not errors,
        "errors": errors,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for error in errors:
        print(f"[cache-identity] REGRESSION: {error}")
    if errors:
        return 1
    print(
        f"[cache-identity] ok: warm re-run of {n_cells} cells served "
        f"{warm.hits}/{warm.lookups} lookups from cache (hit rate 1.0), "
        "digests identical to the cold pass"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
