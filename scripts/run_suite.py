#!/usr/bin/env python
"""Thin wrapper for the ``repro suite`` subcommand.

The suite driver lives in :mod:`repro.cli.suite` behind the installed
``repro`` entry point; this script keeps the historical
``PYTHONPATH=src python scripts/run_suite.py …`` invocation working for
environments without an installed package (CI calls it both ways).
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.cli.suite import main

if __name__ == "__main__":
    raise SystemExit(main())
