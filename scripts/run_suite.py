#!/usr/bin/env python
"""Run the paper's evaluation suite through the parallel batch runner.

Schedules the selected benchmarks on the selected machine configurations
with CARS and with the proposed technique, sharded across ``--jobs``
worker processes, and emits the per-benchmark speed-up series
(Figure 11), the compile-effort distribution (Figure 10) and optionally
the cross-input comparison (Figure 12) as tables on stdout and as JSON.

The JSON has two top-level keys: ``results`` is a pure function of the
workload definition (schedule digests, dp work, cycle counts — byte-
identical for any ``--jobs`` value), while ``meta`` carries the
non-deterministic context (wall time, worker count, host).  The CI
perf-regression gate and the determinism tests compare ``results`` only.

Usage::

    PYTHONPATH=src python scripts/run_suite.py --jobs 4
    PYTHONPATH=src python scripts/run_suite.py --suite specint --blocks 4
    PYTHONPATH=src python scripts/run_suite.py --experiment all --output suite.json
    PYTHONPATH=src python scripts/run_suite.py --benchmarks 130.li g721dec --jobs auto
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis import EffortThresholds, format_compile_time_table, format_speedup_series
from repro.analysis.experiments import (
    run_compile_time_experiment,
    run_cross_input_experiment,
    run_speedup_records,
)
from repro.machine import paper_configurations
from repro.runner import BatchScheduler, fingerprint_digest
from repro.workloads import all_profiles, build_suite, profile_by_name

EXPERIMENTS = ("speedup", "compile-time", "cross-input")


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[1])
    parser.add_argument(
        "--experiment",
        choices=EXPERIMENTS + ("all",),
        default="speedup",
        help="which evaluation to run (default: speedup)",
    )
    parser.add_argument(
        "--suite",
        choices=("all", "specint", "mediabench"),
        default="all",
        help="benchmark suite to run (default: all 14 applications)",
    )
    parser.add_argument(
        "--benchmarks",
        nargs="+",
        metavar="NAME",
        help="explicit benchmark names (overrides --suite)",
    )
    parser.add_argument(
        "--machines",
        nargs="+",
        metavar="NAME",
        help="machine configuration names (default: the paper's three)",
    )
    parser.add_argument(
        "--blocks",
        type=int,
        default=2,
        help="superblocks generated per benchmark (default: 2)",
    )
    parser.add_argument(
        "--budget",
        type=int,
        default=60_000,
        help="deduction-work budget per block (default: 60000)",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help="worker processes: an integer or 'auto' (default: $REPRO_JOBS or 1)",
    )
    parser.add_argument(
        "--chunk-size",
        type=int,
        default=None,
        help="jobs per pool task (default: computed from the batch size)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        help="per-job time allowance in seconds (default: none)",
    )
    parser.add_argument("--output", metavar="PATH", help="write the JSON report here")
    parser.add_argument("--quiet", action="store_true", help="suppress the stdout tables")
    return parser.parse_args(argv)


def select_profiles(args: argparse.Namespace):
    if args.benchmarks:
        return [profile_by_name(name) for name in args.benchmarks]
    profiles = all_profiles()
    if args.suite != "all":
        profiles = [p for p in profiles if p.suite == args.suite]
    return profiles


def select_machines(args: argparse.Namespace):
    machines = paper_configurations()
    if not args.machines:
        return machines
    by_name = {m.name: m for m in machines}
    try:
        return [by_name[name] for name in args.machines]
    except KeyError as exc:
        raise SystemExit(f"unknown machine {exc.args[0]!r}; known: {sorted(by_name)}") from None


def comparison_row(comparison) -> dict:
    return {
        "benchmark": comparison.name,
        "suite": comparison.suite,
        "n_blocks": comparison.n_blocks,
        "baseline_cycles": comparison.baseline_cycles,
        "proposed_cycles": comparison.proposed_cycles,
        "speedup": comparison.speedup,
        "fallback_fraction": comparison.fallback_fraction,
    }


def effort_row(stats, thresholds: EffortThresholds) -> dict:
    return {
        "scheduler": stats.scheduler,
        "machine": stats.machine,
        "n_blocks": stats.n_blocks,
        "total_work": stats.total_work,
        "timed_out_blocks": stats.timed_out_blocks,
        "fractions": stats.fractions(thresholds),
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    profiles = select_profiles(args)
    machines = select_machines(args)
    runner = BatchScheduler(jobs=args.jobs, chunk_size=args.chunk_size, timeout=args.timeout)
    experiments = EXPERIMENTS if args.experiment == "all" else (args.experiment,)

    suite = build_suite(profiles, blocks_per_benchmark=args.blocks)
    n_blocks = sum(w.n_blocks for w in suite)
    if not args.quiet:
        print(
            f"[suite] {len(suite)} benchmarks x {args.blocks} blocks x "
            f"{len(machines)} machines ({2 * n_blocks * len(machines)} jobs per experiment) "
            f"on {runner.n_workers} worker(s)"
        )

    results: dict = {
        "workload": {
            "benchmarks": [p.name for p in profiles],
            "blocks_per_benchmark": args.blocks,
            "machines": [m.name for m in machines],
            "work_budget": args.budget,
        },
    }
    t0 = time.perf_counter()

    if "speedup" in experiments:
        grouped = run_speedup_records(suite, machines, work_budget=args.budget, runner=runner)
        results["speedup"] = {
            machine.name: [record.comparison() for record in grouped[machine.name]]
            for machine in machines
        }
        results["schedule_digests"] = {
            machine.name: fingerprint_digest(
                fp for record in grouped[machine.name] for fp in record.fingerprints()
            )
            for machine in machines
        }
        results["dp_work"] = {
            machine.name: sum(
                result.work
                for record in grouped[machine.name]
                for result in record.baseline_results + record.proposed_results
            )
            for machine in machines
        }
        if not args.quiet:
            for machine in machines:
                print(f"\n=== speed-up over CARS | {machine.name} ===")
                print(format_speedup_series(results["speedup"][machine.name]))
        results["speedup"] = {
            name: [comparison_row(c) for c in rows] for name, rows in results["speedup"].items()
        }

    if "compile-time" in experiments:
        thresholds = EffortThresholds(
            small=max(args.budget // 30, 500),
            medium=max(args.budget // 4, 2000),
            large=args.budget,
        )
        stats = run_compile_time_experiment(suite, machines, thresholds, runner=runner)
        if not args.quiet:
            print("\n=== compile-effort distribution ===")
            print(format_compile_time_table(stats, thresholds))
        results["compile_time"] = {
            "thresholds": dict(zip(thresholds.labels, thresholds.as_tuple())),
            "rows": [effort_row(s, thresholds) for s in stats],
        }

    if "cross-input" in experiments:
        grouped = run_cross_input_experiment(
            suite, machines, work_budget=args.budget, runner=runner
        )
        if not args.quiet:
            for machine in machines:
                print(f"\n=== cross-input (train-profile scheduling) | {machine.name} ===")
                print(format_speedup_series(grouped[machine.name]))
        results["cross_input"] = {
            name: [comparison_row(c) for c in rows] for name, rows in grouped.items()
        }

    wall = time.perf_counter() - t0
    report = {
        "meta": {
            "jobs": runner.n_workers,
            "cpu_count": os.cpu_count(),
            "wall_time_s": wall,
            "experiments": list(experiments),
            "python": sys.version.split()[0],
        },
        "results": results,
    }
    if not args.quiet:
        per_sec = (2 * n_blocks * len(machines) * len(experiments)) / wall if wall > 0 else 0.0
        print(
            f"\n[suite] wall time {wall:.2f}s "
            f"({per_sec:.1f} schedules/s, {runner.n_workers} worker(s))"
        )
    if args.output:
        Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
        if not args.quiet:
            print(f"[suite] wrote {args.output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
