#!/usr/bin/env python
"""Docs gate: executable code fences + generated tuning-table sync.

Two checks keep ``docs/`` from rotting:

1. **Code fences execute.**  Every ```python fence in ``README.md`` and
   ``docs/*.md`` is run in a subprocess (``PYTHONPATH=src``, cwd = repo
   root) and must exit 0.  A fence preceded immediately by
   ``<!-- check_docs: no-run -->`` is skipped (for illustrative
   pseudo-code).  Bash fences are never executed.

2. **The tuning table is generated, not hand-maintained.**  The knob
   table in ``docs/tuning.md`` between the ``BEGIN/END GENERATED``
   markers is produced by this script from ``dataclasses.fields(VcsConfig)``
   plus the ``KNOB_NOTES`` dict below, and — for the process-level
   ``REPRO_*`` environment knobs — from the typed
   :data:`repro.config.ENV_KNOBS` registry (the same source
   ``RuntimeConfig.load`` parses from, so the table can't drift from the
   loader).  ``--write`` regenerates it in place; without ``--write``
   the script diffs and fails on mismatch.  A ``VcsConfig`` field
   missing from ``KNOB_NOTES`` is an error (new knobs must be
   documented to land), as is a stale ``KNOB_NOTES`` entry or a
   ``REPRO_*`` token in the source tree that the table does not cover.

Run from the repo root::

    PYTHONPATH=src python scripts/check_docs.py          # check (CI)
    PYTHONPATH=src python scripts/check_docs.py --write  # regenerate table
"""

from __future__ import annotations

import argparse
import dataclasses
import os
import re
import subprocess
import sys
import tempfile
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO / "src"))

from repro.config import ENV_KNOBS  # noqa: E402
from repro.scheduler.vcs import VcsConfig  # noqa: E402

TUNING_MD = REPO / "docs" / "tuning.md"
BEGIN_MARK = "<!-- BEGIN GENERATED: knob-table (scripts/check_docs.py --write) -->"
END_MARK = "<!-- END GENERATED: knob-table -->"
NO_RUN_MARK = "<!-- check_docs: no-run -->"
FENCE_TIMEOUT_S = 240

# Per-VcsConfig-field documentation: (byte-identity impact, when to flip).
# The field name, its default and the REPRO_VCS_<FIELD> env override are
# derived from the dataclass; only the prose lives here.  A field absent
# from this dict fails the docs gate — document new knobs to land them.
KNOB_NOTES = {
    "work_budget": (
        "identical until the budget binds (then CARS fallback)",
        "bound compile effort deterministically (deduction rule firings)",
    ),
    "time_limit": (
        "wall-clock dependent — never use where digests are compared",
        "bound compile effort by wall time instead of dp_work",
    ),
    "max_awct_steps": (
        "identical unless the cap binds",
        "cap the AWCT-target enumeration from minAWCT upward",
    ),
    "stage1_slack_limit": (
        "behaviour-changing",
        "let stage 1 also study non-forced pairs up to this combination slack",
    ),
    "stage1_max_decisions": (
        "behaviour-changing when it binds",
        "cap stage-1 decisions per AWCT target",
    ),
    "cycle_candidates": (
        "behaviour-changing",
        "widen/narrow the cycle windows probed per operation in stages 2 and 6",
    ),
    "enable_plc": (
        "behaviour-changing (paper ablation A1)",
        "disable the partially-linked-communication rules",
    ),
    "eager_mapping": (
        "behaviour-changing (paper ablation A2)",
        "map virtual clusters right after stage 1 instead of at the end",
    ),
    "use_matching": (
        "behaviour-changing (paper ablation A3)",
        "replace max-weight matching in stage 3 with one-pair-at-a-time",
    ),
    "fallback_to_cars": (
        "identical until exhaustion (then a schedule-less result)",
        "turn off the CARS fallback to observe raw budget failures",
    ),
    "use_trail": (
        "byte-identical by construction (gated in CI)",
        "force copy-per-probe mode: the determinism oracle and perf baseline",
    ),
    "stage_order": (
        "behaviour-changing",
        "reorder the decision stages (names from ``available_stages()``)",
    ),
    "cycle_hints": (
        "behaviour-changing",
        "bias stage-2 cycle windows (the hybrid backend seeds these from CARS)",
    ),
    "queue_mode": (
        "same fixed point, different dp_work — opt-in",
        "tiered propagation: drain cheap bound events first, coalesce duplicates",
    ),
    "probe_cache": (
        "byte-identical incl. work accounting (default on, trail mode only)",
        "disable probe memoization to debug replay accounting",
    ),
    "prune_candidates": (
        "same schedule, fewer probes charged — opt-in dp_work change",
        "skip cycle candidates that provably contradict on saturated resources",
    ),
    "probe_early_cut": (
        "same winner, fewer probes — opt-in dp_work change",
        "stop a cycle-pinning round once no candidate can beat the leader",
    ),
    "policy": (
        "``None`` byte-identical; a policy adds fingerprint provenance "
        "and degrades gracefully on exhaustion",
        "anytime scheduling: spend limits, status tiers, ``finalize_partial``, "
        "leftover-budget refinement (see docs/tuning.md below)",
    ),
}

# The process-level REPRO_* environment knobs are NOT listed here: they
# live in the typed ``repro.config.ENV_KNOBS`` registry (one source for
# the loader, this table and the service defaults).


def derived_env(field_name: str) -> str:
    return "REPRO_VCS_" + field_name.upper()


def format_default(value: object) -> str:
    if value is None:
        return "`None`"
    if isinstance(value, str):
        return f'`"{value}"`'
    return f"`{value}`"


def generate_table() -> tuple[str, list[str]]:
    """The knob table markdown and any coverage errors."""
    errors: list[str] = []
    fields = list(dataclasses.fields(VcsConfig))
    field_names = {f.name for f in fields}
    for name in field_names - set(KNOB_NOTES):
        errors.append(
            f"VcsConfig.{name} is undocumented — add it to KNOB_NOTES in "
            "scripts/check_docs.py and run --write"
        )
    for name in set(KNOB_NOTES) - field_names:
        errors.append(
            f"KNOB_NOTES documents a VcsConfig field {name!r} that no longer "
            "exists — remove it and run --write"
        )

    lines = [
        "| Knob | Env override | Default | Byte-identity | What it does / when to flip |",
        "| --- | --- | --- | --- | --- |",
    ]
    for f in fields:
        if f.name not in KNOB_NOTES:
            continue
        identity, note = KNOB_NOTES[f.name]
        lines.append(
            f"| `VcsConfig.{f.name}` | `{derived_env(f.name)}` "
            f"| {format_default(f.default)} | {identity} | {note} |"
        )
    for knob in ENV_KNOBS:
        lines.append(
            f"| — | `{knob.env}` | {knob.default_text} | {knob.identity} | {knob.note} |"
        )
    return "\n".join(lines), errors


ENV_TOKEN = re.compile(r"REPRO_[A-Z0-9_]+")


def check_env_coverage(errors: list[str]) -> None:
    """Every REPRO_* token in the tree must be covered by the table."""
    known = {derived_env(f.name) for f in dataclasses.fields(VcsConfig)}
    known |= {knob.env for knob in ENV_KNOBS}
    known.add("REPRO_VCS_")  # the bare prefix constant in registry.py
    # Doc-prose mentions of knob *groups* ("REPRO_SERVICE_*"), not knobs.
    known.update({"REPRO_BENCH_", "REPRO_SERVICE_"})
    found: set[str] = set()
    for root in ("src", "scripts", "benchmarks", "tests", ".github"):
        base = REPO / root
        if not base.exists():
            continue
        for path in base.rglob("*"):
            if path.suffix not in {".py", ".yml", ".yaml"}:
                continue
            found |= set(ENV_TOKEN.findall(path.read_text(encoding="utf-8")))
    # Generic doc mentions of the override *pattern* are not knobs.
    found -= {"REPRO_VCS_FIELD"}
    for token in sorted(found - known):
        errors.append(
            f"{token} appears in the source tree but is not covered by the "
            "tuning table (KNOB_NOTES / ENV_KNOBS in scripts/check_docs.py)"
        )


def check_table(write: bool, errors: list[str]) -> None:
    table, coverage_errors = generate_table()
    errors.extend(coverage_errors)
    if not TUNING_MD.exists():
        errors.append(f"{TUNING_MD.relative_to(REPO)} does not exist")
        return
    text = TUNING_MD.read_text(encoding="utf-8")
    if BEGIN_MARK not in text or END_MARK not in text:
        errors.append(
            f"{TUNING_MD.relative_to(REPO)} is missing the generated-table "
            f"markers ({BEGIN_MARK!r} ... {END_MARK!r})"
        )
        return
    head, rest = text.split(BEGIN_MARK, 1)
    current, tail = rest.split(END_MARK, 1)
    wanted = f"\n{table}\n"
    if current == wanted:
        print("[docs] tuning table in sync with VcsConfig")
        return
    if write:
        TUNING_MD.write_text(
            head + BEGIN_MARK + wanted + END_MARK + tail, encoding="utf-8"
        )
        print(f"[docs] rewrote the knob table in {TUNING_MD.relative_to(REPO)}")
    else:
        errors.append(
            "docs/tuning.md knob table is out of sync with VcsConfig — run "
            "`PYTHONPATH=src python scripts/check_docs.py --write` and commit"
        )


FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def iter_fences(path: Path):
    """Yield (line_number, code, runnable) for each ```python fence."""
    text = path.read_text(encoding="utf-8")
    for match in FENCE.finditer(text):
        line = text[: match.start()].count("\n") + 1
        prefix = text[: match.start()].rstrip().rsplit("\n", 1)[-1]
        yield line, match.group(1), prefix.strip() != NO_RUN_MARK


def run_fences(errors: list[str]) -> None:
    docs = [REPO / "README.md"] + sorted((REPO / "docs").glob("*.md"))
    env = dict(os.environ, PYTHONPATH=str(REPO / "src"))
    ran = skipped = 0
    for doc in docs:
        if not doc.exists():
            continue
        for line, code, runnable in iter_fences(doc):
            where = f"{doc.relative_to(REPO)}:{line}"
            if not runnable:
                skipped += 1
                continue
            with tempfile.NamedTemporaryFile(
                "w", suffix=".py", delete=False
            ) as handle:
                handle.write(code)
                snippet = handle.name
            try:
                proc = subprocess.run(
                    [sys.executable, snippet],
                    cwd=REPO,
                    env=env,
                    capture_output=True,
                    text=True,
                    timeout=FENCE_TIMEOUT_S,
                )
            except subprocess.TimeoutExpired:
                errors.append(f"{where}: python fence timed out ({FENCE_TIMEOUT_S}s)")
                continue
            finally:
                os.unlink(snippet)
            ran += 1
            if proc.returncode != 0:
                tail = (proc.stderr or proc.stdout).strip().splitlines()[-6:]
                errors.append(
                    f"{where}: python fence exited {proc.returncode}:\n    "
                    + "\n    ".join(tail)
                )
    print(f"[docs] executed {ran} python fences ({skipped} marked no-run)")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--write",
        action="store_true",
        help="regenerate the docs/tuning.md knob table instead of diffing it",
    )
    parser.add_argument(
        "--no-fences",
        action="store_true",
        help="skip executing code fences (table checks only)",
    )
    args = parser.parse_args()

    errors: list[str] = []
    check_table(args.write, errors)
    check_env_coverage(errors)
    if not args.no_fences:
        run_fences(errors)

    for error in errors:
        print(f"[docs] ERROR {error}", file=sys.stderr)
    if errors:
        print(f"[docs] FAIL ({len(errors)} error(s))", file=sys.stderr)
        return 1
    print("[docs] ok")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
