#!/usr/bin/env python
"""CI service-identity gate: HTTP-vs-batch byte identity of the gated matrix.

Schedules the gated 12-cell scenario sample (``ring``/``p2p`` machine
families x ``membound``/``exitdense`` workload families, ``vcs``
backend) three ways in one process:

1. **batch reference** — the flat job list straight through
   :func:`repro.api.schedule_many` with caching disabled (the exact
   path ``run_suite.py`` and ``check_cache_identity.py`` exercise);
2. **HTTP cold** — the same jobs submitted to a live
   :class:`repro.service.JobServer` (fresh temp result cache) by
   ``--clients`` concurrent clients, every job long-polled to its
   :class:`~repro.api.ScheduleResponse`;
3. **HTTP warm** — the same submissions replayed, which must be served
   100% from the server's result cache.

Every HTTP response must carry the identical schedule digest and
``dp_work`` as the batch reference at the same position — the wire
round trip (block serialisation in :meth:`DependenceGraph.ordered_edges
<repro.ir.depgraph.DependenceGraph.ordered_edges>` order) is lossless
by construction and this gate enforces it.  Exits non-zero on any
digest/work drift, cold cache hit, or warm cache miss, and writes a
JSON report with submit-to-result latency percentiles (the CI
artifact).

Usage::

    PYTHONPATH=src python scripts/check_service_identity.py \
        [--output service_identity.json] [--jobs N] [--clients N]
"""

from __future__ import annotations

import argparse
import json
import math
import sys
import tempfile
import threading
import time
from collections import Counter
from pathlib import Path
from typing import List, Optional, Sequence

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.analysis.experiments import scenario_matrix_jobs  # noqa: E402
from repro.api import ScheduleRequest, ScheduleResponse, schedule_many  # noqa: E402
from repro.runner import (  # noqa: E402
    BatchScheduler,
    CacheSpec,
    ScheduleJob,
    fingerprint_digest,
)
from repro.service import ServerThread, ServiceClient  # noqa: E402

MACHINE_FAMILIES = ("ring", "p2p")
WORKLOAD_FAMILIES = ("membound", "exitdense")
BACKENDS = ("vcs",)
BLOCKS = 1


def percentile(values: Sequence[float], q: float) -> float:
    """The q-quantile (0 < q <= 1) by the nearest-rank method."""
    ordered = sorted(values)
    if not ordered:
        return 0.0
    rank = min(len(ordered) - 1, max(0, math.ceil(q * len(ordered)) - 1))
    return ordered[rank]


def batch_reference(jobs: Sequence[ScheduleJob], n_jobs: int) -> List[dict]:
    batch = schedule_many(jobs, runner=BatchScheduler(jobs=n_jobs), cache=CacheSpec.disabled())
    return [
        {
            "job_id": job.job_id,
            "digest": fingerprint_digest([result.fingerprint()]),
            "dp_work": result.work,
        }
        for job, result in zip(jobs, batch.values)
    ]


def http_pass(url: str, jobs: Sequence[ScheduleJob], clients: int):
    """Submit every job over HTTP from ``clients`` concurrent threads.

    Jobs are strided across clients (client ``c`` takes positions ``c,
    c+clients, …``), each submitted and long-polled to completion.
    Returns (responses, latencies, errors) with responses/latencies in
    job-list position order.
    """
    responses: List[Optional[ScheduleResponse]] = [None] * len(jobs)
    latencies: List[float] = [0.0] * len(jobs)
    errors: List[str] = []
    lock = threading.Lock()

    def worker(name: str, positions: range) -> None:
        client = ServiceClient(url)
        for index in positions:
            request = ScheduleRequest.from_job(jobs[index], client=name)
            begin = time.perf_counter()
            try:
                response = client.schedule(request)
            except Exception as exc:  # noqa: BLE001 - report, don't crash the gate
                with lock:
                    errors.append(f"{jobs[index].job_id} via {name}: {exc}")
                continue
            latencies[index] = time.perf_counter() - begin
            responses[index] = response

    threads = [
        threading.Thread(
            target=worker,
            args=(f"client-{c}", range(c, len(jobs), clients)),
            name=f"service-identity-client-{c}",
        )
        for c in range(clients)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    return responses, latencies, errors


def compare_pass(
    label: str,
    reference: List[dict],
    responses: List[Optional[ScheduleResponse]],
    errors: List[str],
) -> List[str]:
    problems = [f"{label}: {message}" for message in errors]
    for expected, response in zip(reference, responses):
        if response is None:
            problems.append(f"{label}: {expected['job_id']} returned no response")
            continue
        if response.state != "done":
            problems.append(
                f"{label}: {expected['job_id']} finished {response.state!r}: "
                f"{response.failure}"
            )
            continue
        if response.digest != expected["digest"] or response.work != expected["dp_work"]:
            problems.append(
                f"{label}: {expected['job_id']} drifted from the batch path "
                f"(digest {response.digest[:12]}… vs {expected['digest'][:12]}…, "
                f"dp_work {response.work} vs {expected['dp_work']})"
            )
    return problems


def latency_summary(latencies: Sequence[float]) -> dict:
    return {
        "p50_s": percentile(latencies, 0.50),
        "p99_s": percentile(latencies, 0.99),
        "max_s": max(latencies) if latencies else 0.0,
    }


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output",
        metavar="PATH",
        default="service_identity.json",
        help="write the identity/latency report here",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker count of the batch reference and the server (default: 1)",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=4,
        metavar="N",
        help="concurrent HTTP clients per pass (default: 4)",
    )
    args = parser.parse_args()

    jobs = scenario_matrix_jobs(
        MACHINE_FAMILIES, WORKLOAD_FAMILIES, BACKENDS, blocks_per_benchmark=BLOCKS
    )
    reference = batch_reference(jobs, args.jobs)

    errors: list[str] = []
    with tempfile.TemporaryDirectory(prefix="repro-service-identity-") as root:
        with ServerThread(
            runner=BatchScheduler(jobs=args.jobs),
            cache=CacheSpec(root=root),
        ) as server:
            cold_responses, cold_latencies, cold_errors = http_pass(
                server.url, jobs, args.clients
            )
            warm_responses, warm_latencies, warm_errors = http_pass(
                server.url, jobs, args.clients
            )
            stats = ServiceClient(server.url).stats()

    errors += compare_pass("cold", reference, cold_responses, cold_errors)
    errors += compare_pass("warm", reference, warm_responses, warm_errors)

    cold_outcomes = Counter(r.cache for r in cold_responses if r is not None)
    warm_outcomes = Counter(r.cache for r in warm_responses if r is not None)
    if cold_outcomes.get("hit", 0):
        errors.append(
            f"cold pass hit a supposedly fresh cache ({cold_outcomes['hit']} hits) — "
            "the temp directory was not fresh or keying is unstable"
        )
    warm_hits = warm_outcomes.get("hit", 0)
    if warm_hits != len(jobs):
        errors.append(
            f"warm pass served {warm_hits}/{len(jobs)} jobs from cache "
            f"(outcomes: {dict(warm_outcomes)}) — expected a 100% cache-served replay"
        )

    report = {
        "matrix": {
            "machine_families": list(MACHINE_FAMILIES),
            "workload_families": list(WORKLOAD_FAMILIES),
            "backends": list(BACKENDS),
            "blocks_per_benchmark": BLOCKS,
            "jobs": len(jobs),
        },
        "workers": args.jobs,
        "clients": args.clients,
        "cold_outcomes": dict(cold_outcomes),
        "warm_outcomes": dict(warm_outcomes),
        "warm_hit_rate": warm_hits / len(jobs) if jobs else 0.0,
        "cold_latency": latency_summary(cold_latencies),
        "warm_latency": latency_summary(warm_latencies),
        "server_stats": stats,
        "digests_identical_http_vs_batch": not errors,
        "ok": not errors,
        "errors": errors,
    }
    Path(args.output).write_text(json.dumps(report, indent=2) + "\n")

    for error in errors:
        print(f"[service-identity] REGRESSION: {error}")
    if errors:
        return 1
    print(
        f"[service-identity] ok: {len(jobs)} jobs x {args.clients} clients over HTTP, "
        f"cold+warm digests identical to the batch path, warm 100% cache hits "
        f"(cold p50 {report['cold_latency']['p50_s']:.3f}s, "
        f"warm p50 {report['warm_latency']['p50_s']:.3f}s)"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
