#!/usr/bin/env python
"""CI perf-regression gate: compare a fresh ``BENCH_vcs.json`` against
the committed one.

Gated (the job fails on any mismatch):

* the workload definition (kernels, synthetic blocks, machines) — a drift
  here means the two reports are not comparable at all;
* per machine and probing mode: ``dp_work`` (deterministic deduction
  effort) and ``schedule_digest`` (SHA-256 over every produced schedule)
  — together they detect both silent behaviour changes and schedule
  regressions;
* per scheduler backend (``cars``/``vcs``/``list``/``hybrid``) and
  machine: ``dp_work`` and ``schedule_digest`` of the registry sweep —
  a behaviour change in *any* backend fails the gate, not just the
  default pair;
* per scenario cell (machine x workload family x backend) of the
  scenario-matrix sample: ``dp_work`` and ``schedule_digest`` — ring and
  point-to-point topologies and the parametric workload families are
  byte-tracked like the default configurations;
* the fresh report's serial-vs-parallel identity flag — the parallel
  runner must not change any schedule;
* the ``runner`` section: warm-pool parallel schedules byte-identical to
  serial with throughput >= 1.0x (skipped with an explicit reason on
  single-CPU hosts), and a warm scenario-matrix re-run served entirely
  from the result cache (zero recomputed cells, identical digests).

Also gated: the fresh report must carry the deduction-counter section
with every expected block (per-rule-class ``dp_work`` split, probing
counters including candidate pruning / early-cut, probe cache, queue) —
a missing block means ``bench_report.py`` silently stopped recording a
deterministic signal the warnings below depend on.

Reported but NOT gated: wall times, throughput and the per-decision-stage
timing breakdown (host dependent).  Per-stage timing drift against the
committed report is surfaced as a warning section, as is drift in the
deduction-layer counters (per-rule-class ``dp_work`` split, probing
counters, probe-cache hit rate, propagation-queue coalesce rate) and in
the fix-cycles wall share (the fraction of the VCS stage wall spent in
the two probing stages): those counters are deterministic, but a shift
with an unchanged total usually means a rule or probing-policy change
worth a look, not a regression — and the wall share is host dependent to
boot.

Usage::

    python scripts/check_perf_regression.py BENCH_vcs.json BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Probing modes whose deterministic outputs are gated.
GATED_MODES = ("trail", "copy")


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"[gate] cannot read {path}: {exc}")


def machine_rows(report: dict, mode: str) -> dict:
    return {m["machine"]: m for m in report.get(mode, {}).get("machines", [])}


def report_stage_drift(old_stages: dict, new_stages: dict) -> None:
    """Per-decision-stage timing drift vs the committed report (warnings,
    never gated: wall times are host dependent, but a stage suddenly
    dominating the pipeline is worth a look before it shows up as a wall
    regression)."""
    if not new_stages:
        return
    if not old_stages:
        for stage, entry in new_stages.items():
            print(
                f"[gate] vcs stage {stage}: {entry.get('wall_time_s', 0):.2f}s "
                f"over {entry.get('calls', 0)} calls (not gated)"
            )
        return
    old_total = sum(entry.get("wall_time_s", 0) for entry in old_stages.values())
    new_total = sum(entry.get("wall_time_s", 0) for entry in new_stages.values())
    for stage in sorted(set(old_stages) | set(new_stages)):
        old = old_stages.get(stage, {})
        new = new_stages.get(stage, {})
        old_share = old.get("wall_time_s", 0) / old_total if old_total else 0.0
        new_share = new.get("wall_time_s", 0) / new_total if new_total else 0.0
        line = (
            f"vcs stage {stage}: {old.get('wall_time_s', 0):.2f}s "
            f"({old_share:5.1%}) -> {new.get('wall_time_s', 0):.2f}s "
            f"({new_share:5.1%}), calls {old.get('calls', 0)} -> {new.get('calls', 0)}"
        )
        drifted = abs(new_share - old_share) > 0.10
        calls_changed = old.get("calls") != new.get("calls")
        if drifted or calls_changed:
            why = []
            if drifted:
                why.append("wall-time share drifted > 10pp")
            if calls_changed:
                why.append("call count changed")
            print(f"[gate] WARNING {line} ({'; '.join(why)}; not gated)")
        else:
            print(f"[gate] {line} (not gated)")


#: Blocks the fresh report's ``deduction`` section must carry.  Their
#: *values* are warned on, not gated, but their *presence* is: dropping
#: one silently would blind the drift warnings below.
DEDUCTION_BLOCKS = ("dp_work_by_rule", "probing", "probe_cache", "queue")


def check_deduction_blocks(new_section, errors: list) -> None:
    """Gate the shape of the fresh deduction-counter section."""
    if not new_section:
        errors.append(
            "fresh report is missing the 'deduction' counter section "
            "(bench_report.py no longer aggregating the probe stats?)"
        )
        return
    missing = [block for block in DEDUCTION_BLOCKS if block not in new_section]
    if missing:
        errors.append(
            f"fresh deduction section is missing the {missing} block(s) "
            "(bench_report.py stopped recording a deterministic counter group)"
        )


def report_deduction_drift(old_section, new_section) -> None:
    """Deduction-counter drift vs the committed report (warnings only).

    Compares the per-rule-class ``dp_work`` split, the probing counters
    (probes/rollbacks/redos plus candidate pruning and early-cut), the
    probe-cache / queue rates and the fix-cycles wall share.  Never
    gated: the gated ``dp_work`` totals and digests already pin
    behaviour; this surfaces *where* inside the deduction the effort
    moved when they legitimately change."""
    if not new_section:
        return
    if not old_section:
        print("[gate] committed report predates the deduction counters; not compared")
        return
    old_rules = old_section.get("dp_work_by_rule", {})
    new_rules = new_section.get("dp_work_by_rule", {})
    for rule in sorted(set(old_rules) | set(new_rules)):
        old, new = old_rules.get(rule, 0), new_rules.get(rule, 0)
        if old != new:
            print(f"[gate] WARNING deduction rule {rule}: dp_work {old} -> {new} (not gated)")
    old_probing = old_section.get("probing") or {}
    new_probing = new_section.get("probing") or {}
    for counter in sorted(set(old_probing) | set(new_probing)):
        old, new = old_probing.get(counter, 0), new_probing.get(counter, 0)
        if old != new:
            print(f"[gate] WARNING deduction probing {counter}: {old} -> {new} (not gated)")
    for key, label in (("probe_cache", "hit_rate"), ("queue", "coalesce_rate")):
        old = (old_section.get(key) or {}).get(label)
        new = (new_section.get(key) or {}).get(label)
        if old != new:
            old_text = f"{old:.3f}" if isinstance(old, float) else str(old)
            new_text = f"{new:.3f}" if isinstance(new, float) else str(new)
            print(f"[gate] WARNING deduction {key} {label}: {old_text} -> {new_text} (not gated)")
    old_share = old_section.get("fix_cycles_wall_share")
    new_share = new_section.get("fix_cycles_wall_share")
    if isinstance(old_share, float) and isinstance(new_share, float):
        line = f"fix-cycles wall share: {old_share:.1%} -> {new_share:.1%}"
        if abs(new_share - old_share) > 0.10:
            print(f"[gate] WARNING {line} (drifted > 10pp; host dependent, not gated)")
        else:
            print(f"[gate] {line} (not gated)")
    elif new_share is not None:
        print(f"[gate] fix-cycles wall share: {new_share:.1%} (no committed value; not gated)")


def check_policy(old_section, new_section, errors: list) -> None:
    """The anytime-policy section: presence gated, curve drift warned.

    The curve's inputs are deterministic (dp_work-fraction budgets,
    deterministic scheduling), but the curve is a quality trajectory, not
    a byte-identity invariant: legitimate scheduler changes move it.  So
    a missing section fails the gate — ``bench_report.py`` silently
    stopped recording degradation quality — while value drift is
    surfaced as warnings for a human to judge."""
    if new_section is None:
        if old_section is not None:
            errors.append(
                "fresh report is missing the 'policy' anytime-curve section the "
                "committed report has (bench_report.py no longer measuring "
                "budget-policy degradation quality?)"
            )
        return
    if old_section is None:
        print("[gate] committed report predates the policy anytime curve; not compared")
        return
    if old_section.get("config") != new_section.get("config"):
        print(
            "[gate] WARNING policy curve configuration changed "
            f"({old_section.get('config')} -> {new_section.get('config')}); "
            "values not compared (not gated)"
        )
        return
    old_curve = {point["fraction"]: point for point in old_section.get("anytime_curve", [])}
    new_curve = {point["fraction"]: point for point in new_section.get("anytime_curve", [])}
    for fraction in sorted(set(old_curve) | set(new_curve)):
        old = old_curve.get(fraction)
        new = new_curve.get(fraction)
        if old is None or new is None:
            print(
                f"[gate] WARNING policy curve fraction {fraction} "
                f"{'appeared' if old is None else 'disappeared'} (not gated)"
            )
            continue
        for key in (
            "mean_awct_ratio_vs_full",
            "mean_awct_ratio_vs_cars",
            "partial_finalize_rate",
            "fallback_rate",
        ):
            old_value, new_value = old.get(key), new.get(key)
            if old_value is None or new_value is None:
                continue
            if abs(new_value - old_value) > 1e-9:
                print(
                    f"[gate] WARNING policy curve @{fraction:.0%} {key}: "
                    f"{old_value:.4f} -> {new_value:.4f} (not gated)"
                )
    matched = [
        fraction
        for fraction in sorted(set(old_curve) & set(new_curve))
    ]
    if matched:
        print(
            f"[gate] policy anytime curve: {len(matched)} budget fractions compared "
            "(drift warns, presence gated)"
        )


def scenario_cells(section: dict) -> dict:
    return {
        (cell["machine"], cell["workload_family"], cell["backend"]): cell
        for cell in section.get("cells", [])
    }


def check_scenarios(old_section, new_section, errors: list) -> None:
    """Gate the scenario-matrix sample: per-cell dp_work and digest."""
    if old_section is None:
        # Only the committed report may legitimately predate the sweep.
        print("[gate] committed report predates the scenario sweep; skipping")
        return
    if new_section is None:
        errors.append(
            "fresh report is missing the 'scenarios' sweep the committed report "
            "has (bench_report.py no longer sampling the scenario matrix?)"
        )
        return
    if old_section.get("config") != new_section.get("config"):
        errors.append(
            "scenario sweep configuration differs (not comparable):\n"
            f"  committed: {old_section.get('config')}\n"
            f"  fresh:     {new_section.get('config')}"
        )
        return
    old_cells, new_cells = scenario_cells(old_section), scenario_cells(new_section)
    if set(old_cells) != set(new_cells):
        errors.append(f"scenario cell sets differ: {sorted(old_cells)} vs {sorted(new_cells)}")
        return
    changed = 0
    for key in sorted(old_cells):
        old, new = old_cells[key], new_cells[key]
        for field in ("dp_work", "schedule_digest"):
            if old.get(field) != new.get(field):
                changed += 1
                errors.append(
                    f"scenario {key}: {field} changed: "
                    f"{old.get(field)!r} -> {new.get(field)!r}"
                )
    if not changed:
        print(
            f"[gate] scenario sweep: {len(new_cells)} cells "
            "(dp_work + digests) match the committed report"
        )


def check_runner(new_section, errors: list) -> None:
    """Gate the runner-layer section of the fresh report.

    Presence is gated (all three blocks), as are the deterministic
    invariants: warm-pool parallel schedules byte-identical to serial,
    warm parallel throughput >= 1.0x serial (skipped with an explicit
    reason on single-CPU hosts — never silently), and a warm matrix
    re-run that recomputes zero cells with byte-identical digests.
    Wall times themselves are reported, not gated."""
    if not new_section:
        errors.append(
            "fresh report is missing the 'runner' section "
            "(bench_report.py no longer measuring the pool/cache layer?)"
        )
        return
    missing = [block for block in ("pool", "parallel", "matrix") if block not in new_section]
    if missing:
        errors.append(f"fresh runner section is missing the {missing} block(s)")
        return

    pool = new_section["pool"]
    reuse = pool.get("reuse_speedup_vs_fresh")
    print(
        f"[gate] runner pool: reused {pool.get('reused_pool_wall_s', 0):.2f}s vs fresh "
        f"{pool.get('fresh_pool_wall_s', 0):.2f}s over {pool.get('batches')} batches "
        + (f"({reuse:.2f}x, not gated)" if reuse is not None else "(not gated)")
    )

    parallel = new_section["parallel"]
    if parallel.get("schedules_identical_serial_vs_parallel") is not True:
        errors.append(
            "runner warm-pool parallel schedules differ from serial "
            f"(runner.parallel section: {parallel})"
        )
    throughput = parallel.get("throughput_speedup_vs_serial")
    if parallel.get("skipped"):
        print(f"[gate] runner warm throughput gate skipped: {parallel['skipped']}")
    elif throughput is None:
        errors.append(
            "runner.parallel carries neither a throughput ratio nor a skip "
            f"reason (section: {parallel})"
        )
    elif throughput < 1.0:
        errors.append(
            f"warm-pool parallel throughput {throughput:.2f}x is below serial "
            f"({parallel.get('jobs')} workers on {parallel.get('cpu_count')} cpus) "
            "— the persistent pool should make parallel at least break even"
        )
    else:
        print(
            f"[gate] runner warm throughput: {throughput:.2f}x serial "
            f"({parallel.get('jobs')} workers on {parallel.get('cpu_count')} cpus), gated >= 1.0"
        )

    matrix = new_section["matrix"]
    recomputed = matrix.get("warm_recomputed")
    if recomputed != 0:
        errors.append(
            f"warm matrix re-run recomputed {recomputed!r} cell job(s); the "
            "result cache must serve a warm re-run entirely from disk "
            f"(warm cache stats: {matrix.get('warm_cache')})"
        )
    if matrix.get("digests_identical_warm_vs_cold") is not True:
        errors.append(
            "warm matrix re-run digests differ from the cold run "
            f"(runner.matrix section: {matrix})"
        )
    if recomputed == 0 and matrix.get("digests_identical_warm_vs_cold") is True:
        print(
            f"[gate] runner cache: warm matrix re-run of {matrix.get('cells')} cells "
            f"served 100% from cache ({matrix.get('cold_wall_s', 0):.2f}s cold -> "
            f"{matrix.get('warm_wall_s', 0):.2f}s warm), digests identical"
        )


def check_service(new_section, errors: list) -> None:
    """Gate the HTTP job-server section of the fresh report.

    Presence is gated, as are the deterministic invariants: >= 4
    concurrent clients, every HTTP response byte-identical to the batch
    path (aggregate digest and ``dp_work``), and a warm replay served
    100% from the result cache.  Submit-to-result latency percentiles
    are reported, not gated (host dependent)."""
    if not new_section:
        errors.append(
            "fresh report is missing the 'service' section "
            "(bench_report.py no longer measuring the HTTP job server?)"
        )
        return
    n_before = len(errors)
    clients = new_section.get("clients", 0)
    if clients < 4:
        errors.append(
            f"service load bench ran {clients} concurrent client(s); the gate "
            "requires >= 4"
        )
    if new_section.get("http_identical_to_batch") is not True:
        errors.append(
            "HTTP job-server responses are not byte-identical to the batch "
            f"path (service section: cold digest "
            f"{new_section.get('cold', {}).get('http_digest')!r} vs batch "
            f"{new_section.get('digest')!r})"
        )
    hit_rate = new_section.get("warm_hit_rate")
    if hit_rate != 1.0:
        errors.append(
            f"warm HTTP replay hit rate {hit_rate!r} != 1.0 — repeated "
            "submissions must be served from the result cache "
            f"(warm pass: {new_section.get('warm')})"
        )
    for leg in ("cold", "warm"):
        pass_stats = new_section.get(leg, {})
        if pass_stats.get("errors"):
            errors.append(
                f"service {leg} pass had {pass_stats['errors']} failed "
                f"submission(s) of {new_section.get('jobs')} jobs"
            )
    if len(errors) == n_before:
        cold = new_section.get("cold", {}).get("latency", {})
        warm = new_section.get("warm", {}).get("latency", {})
        print(
            f"[gate] service: {new_section.get('jobs')} jobs x {clients} clients, "
            f"HTTP identical to batch, warm hit rate 1.0 | latency cold "
            f"p50 {cold.get('p50_s', 0) * 1000:.0f}ms p99 {cold.get('p99_s', 0) * 1000:.0f}ms, "
            f"warm p50 {warm.get('p50_s', 0) * 1000:.0f}ms "
            f"p99 {warm.get('p99_s', 0) * 1000:.0f}ms (not gated)"
        )


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="the BENCH_vcs.json checked into the repository")
    parser.add_argument("fresh", help="the BENCH_vcs.json produced by this run")
    args = parser.parse_args()

    committed = load(args.committed)
    fresh = load(args.fresh)
    errors = []

    if committed.get("workload") != fresh.get("workload"):
        errors.append(
            "workload definition differs (not comparable):\n"
            f"  committed: {committed.get('workload')}\n"
            f"  fresh:     {fresh.get('workload')}"
        )
    else:
        for mode in GATED_MODES:
            old_rows = machine_rows(committed, mode)
            new_rows = machine_rows(fresh, mode)
            if set(old_rows) != set(new_rows):
                errors.append(
                    f"{mode}: machine sets differ: {sorted(old_rows)} vs {sorted(new_rows)}"
                )
                continue
            for name in old_rows:
                old, new = old_rows[name], new_rows[name]
                for key in ("dp_work", "schedule_digest"):
                    if old.get(key) != new.get(key):
                        errors.append(
                            f"{mode} / {name}: {key} changed: "
                            f"{old.get(key)!r} -> {new.get(key)!r}"
                        )
                old_wall, new_wall = old.get("wall_time_s"), new.get("wall_time_s")
                if old_wall and new_wall:
                    print(
                        f"[gate] {mode:5s} / {name}: wall {old_wall:.2f}s -> {new_wall:.2f}s "
                        f"({new_wall / old_wall:.2f}x, not gated)"
                    )

    # The backend sweep shares the workload definition; without
    # comparability the per-backend diffs would only bury the real error.
    comparable = committed.get("workload") == fresh.get("workload")
    old_backends = committed.get("backends") if comparable else None
    new_backends = fresh.get("backends") if comparable else None
    if not comparable:
        print("[gate] workload definitions differ; skipping backend gate")
    elif old_backends is None:
        # Only the committed report may legitimately predate the registry;
        # a fresh report must always carry the sweep (gated below).
        print("[gate] committed report predates the backend sweep; skipping backend gate")
    elif new_backends is None:
        errors.append(
            "fresh report is missing the 'backends' sweep the committed report has "
            "(bench_report.py no longer measuring the registry backends?)"
        )
    elif set(old_backends) != set(new_backends):
        errors.append(
            f"backend sets differ: {sorted(old_backends)} vs {sorted(new_backends)}"
        )
    else:
        for backend in sorted(old_backends):
            old_rows = {m["machine"]: m for m in old_backends[backend].get("machines", [])}
            new_rows = {m["machine"]: m for m in new_backends[backend].get("machines", [])}
            if set(old_rows) != set(new_rows):
                errors.append(
                    f"backend {backend}: machine sets differ: "
                    f"{sorted(old_rows)} vs {sorted(new_rows)}"
                )
                continue
            for name in old_rows:
                old, new = old_rows[name], new_rows[name]
                for key in ("dp_work", "schedule_digest"):
                    if old.get(key) != new.get(key):
                        errors.append(
                            f"backend {backend} / {name}: {key} changed: "
                            f"{old.get(key)!r} -> {new.get(key)!r}"
                        )
        report_stage_drift(
            committed.get("backends", {}).get("vcs", {}).get("stage_timings", {}),
            new_backends.get("vcs", {}).get("stage_timings", {}),
        )

    check_scenarios(committed.get("scenarios"), fresh.get("scenarios"), errors)
    check_policy(committed.get("policy"), fresh.get("policy"), errors)
    check_deduction_blocks(fresh.get("deduction"), errors)
    report_deduction_drift(committed.get("deduction"), fresh.get("deduction"))

    parallel = fresh.get("parallel", {})
    if parallel.get("schedules_identical_serial_vs_parallel") is not True:
        errors.append(
            "parallel runner produced schedules that differ from the serial run "
            f"(parallel section: {parallel})"
        )
    else:
        cold_throughput = parallel.get("throughput_speedup_vs_serial")
        throughput_note = (
            f"{cold_throughput:.2f}x throughput, not gated"
            if cold_throughput is not None
            else f"throughput skipped: {parallel.get('skipped', 'no reason recorded')}"
        )
        print(
            f"[gate] parallel runner: {parallel.get('jobs')} workers on "
            f"{parallel.get('cpu_count')} cpus, "
            f"serial {parallel.get('serial_wall_time_s', 0):.2f}s "
            f"-> parallel {parallel.get('wall_time_s', 0):.2f}s "
            f"({throughput_note}), schedules identical"
        )
    check_runner(fresh.get("runner"), errors)
    check_service(fresh.get("service"), errors)

    if fresh.get("schedules_identical_trail_vs_copy") is not True:
        errors.append("trail and copy probing modes disagree in the fresh run")

    if errors:
        print("\n[gate] PERF REGRESSION GATE FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print("[gate] ok: dp_work and schedule digests match the committed report")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
