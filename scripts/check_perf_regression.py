#!/usr/bin/env python
"""CI perf-regression gate: compare a fresh ``BENCH_vcs.json`` against
the committed one.

Gated (the job fails on any mismatch):

* the workload definition (kernels, synthetic blocks, machines) — a drift
  here means the two reports are not comparable at all;
* per machine and probing mode: ``dp_work`` (deterministic deduction
  effort) and ``schedule_digest`` (SHA-256 over every produced schedule)
  — together they detect both silent behaviour changes and schedule
  regressions;
* per scheduler backend (``cars``/``vcs``/``list``/``hybrid``) and
  machine: ``dp_work`` and ``schedule_digest`` of the registry sweep —
  a behaviour change in *any* backend fails the gate, not just the
  default pair;
* the fresh report's serial-vs-parallel identity flag — the parallel
  runner must not change any schedule.

Reported but NOT gated: wall times, throughput and the per-decision-stage
timing breakdown (host dependent).

Usage::

    python scripts/check_perf_regression.py BENCH_vcs.json BENCH_fresh.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

#: Probing modes whose deterministic outputs are gated.
GATED_MODES = ("trail", "copy")


def load(path: str) -> dict:
    try:
        return json.loads(Path(path).read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise SystemExit(f"[gate] cannot read {path}: {exc}")


def machine_rows(report: dict, mode: str) -> dict:
    return {m["machine"]: m for m in report.get(mode, {}).get("machines", [])}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("committed", help="the BENCH_vcs.json checked into the repository")
    parser.add_argument("fresh", help="the BENCH_vcs.json produced by this run")
    args = parser.parse_args()

    committed = load(args.committed)
    fresh = load(args.fresh)
    errors = []

    if committed.get("workload") != fresh.get("workload"):
        errors.append(
            "workload definition differs (not comparable):\n"
            f"  committed: {committed.get('workload')}\n"
            f"  fresh:     {fresh.get('workload')}"
        )
    else:
        for mode in GATED_MODES:
            old_rows = machine_rows(committed, mode)
            new_rows = machine_rows(fresh, mode)
            if set(old_rows) != set(new_rows):
                errors.append(
                    f"{mode}: machine sets differ: {sorted(old_rows)} vs {sorted(new_rows)}"
                )
                continue
            for name in old_rows:
                old, new = old_rows[name], new_rows[name]
                for key in ("dp_work", "schedule_digest"):
                    if old.get(key) != new.get(key):
                        errors.append(
                            f"{mode} / {name}: {key} changed: "
                            f"{old.get(key)!r} -> {new.get(key)!r}"
                        )
                old_wall, new_wall = old.get("wall_time_s"), new.get("wall_time_s")
                if old_wall and new_wall:
                    print(
                        f"[gate] {mode:5s} / {name}: wall {old_wall:.2f}s -> {new_wall:.2f}s "
                        f"({new_wall / old_wall:.2f}x, not gated)"
                    )

    # The backend sweep shares the workload definition; without
    # comparability the per-backend diffs would only bury the real error.
    comparable = committed.get("workload") == fresh.get("workload")
    old_backends = committed.get("backends") if comparable else None
    new_backends = fresh.get("backends") if comparable else None
    if not comparable:
        print("[gate] workload definitions differ; skipping backend gate")
    elif old_backends is None:
        # Only the committed report may legitimately predate the registry;
        # a fresh report must always carry the sweep (gated below).
        print("[gate] committed report predates the backend sweep; skipping backend gate")
    elif new_backends is None:
        errors.append(
            "fresh report is missing the 'backends' sweep the committed report has "
            "(bench_report.py no longer measuring the registry backends?)"
        )
    elif set(old_backends) != set(new_backends):
        errors.append(
            f"backend sets differ: {sorted(old_backends)} vs {sorted(new_backends)}"
        )
    else:
        for backend in sorted(old_backends):
            old_rows = {m["machine"]: m for m in old_backends[backend].get("machines", [])}
            new_rows = {m["machine"]: m for m in new_backends[backend].get("machines", [])}
            if set(old_rows) != set(new_rows):
                errors.append(
                    f"backend {backend}: machine sets differ: "
                    f"{sorted(old_rows)} vs {sorted(new_rows)}"
                )
                continue
            for name in old_rows:
                old, new = old_rows[name], new_rows[name]
                for key in ("dp_work", "schedule_digest"):
                    if old.get(key) != new.get(key):
                        errors.append(
                            f"backend {backend} / {name}: {key} changed: "
                            f"{old.get(key)!r} -> {new.get(key)!r}"
                        )
        stage_timings = new_backends.get("vcs", {}).get("stage_timings", {})
        for stage, entry in stage_timings.items():
            print(
                f"[gate] vcs stage {stage}: {entry.get('wall_time_s', 0):.2f}s "
                f"over {entry.get('calls', 0)} calls (not gated)"
            )

    runner = fresh.get("parallel", {})
    if runner.get("schedules_identical_serial_vs_parallel") is not True:
        errors.append(
            "parallel runner produced schedules that differ from the serial run "
            f"(parallel section: {runner})"
        )
    else:
        print(
            f"[gate] parallel runner: {runner.get('jobs')} workers on "
            f"{runner.get('cpu_count')} cpus, serial {runner.get('serial_wall_time_s', 0):.2f}s "
            f"-> parallel {runner.get('wall_time_s', 0):.2f}s "
            f"({(runner.get('throughput_speedup_vs_serial') or 0):.2f}x throughput, not gated), "
            "schedules identical"
        )

    if fresh.get("schedules_identical_trail_vs_copy") is not True:
        errors.append("trail and copy probing modes disagree in the fresh run")

    if errors:
        print("\n[gate] PERF REGRESSION GATE FAILED:", file=sys.stderr)
        for error in errors:
            print(f"  - {error}", file=sys.stderr)
        return 1
    print("[gate] ok: dp_work and schedule digests match the committed report")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
