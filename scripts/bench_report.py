#!/usr/bin/env python
"""Hot-path benchmark report: emit ``BENCH_vcs.json``.

Runs the proposed scheduler over the paper's three machine configurations
(2c-8i-1lat, 4c-16i-1lat, 4c-16i-2lat) on the hand-written kernels plus a
seeded synthetic workload, and records for each configuration and probing
mode (trail vs legacy copy):

* wall time and schedules/second,
* deterministic DP work (deduction rule firings), including the per-rule-
  class split (``dp_rule_<RuleName>`` counters),
* trail counters (probes, rollbacks, redos, copies avoided), probe-cache
  hit/miss counters, candidate-pruning / early-cut counters and
  propagation-queue push/coalesce counters, plus the share of the VCS
  stage wall spent in the two probing stages (fix-cycles +
  fix-communications),
* total AWCT (quality invariance check),
* a SHA-256 digest of every produced schedule (the byte-identity key the
  CI perf-regression gate compares).

A registry sweep additionally runs every scheduler backend
(``cars``/``vcs``/``list``/``hybrid``) over the same workload and records
per-backend ``dp_work`` and schedule digests (gated) plus the VCS
pipeline's per-decision-stage wall-time breakdown (reported only).

A scenario-matrix sample (``ring``/``p2p`` machine families crossed with
the ``membound``/``exitdense`` workload families) records a gated
``dp_work`` + schedule digest per (machine, workload family, backend)
cell, so interconnect-topology and workload-family behaviour is
byte-tracked like the default configurations.

A ``policy`` section records the anytime-quality curve of the budget
policy layer: each block re-scheduled under a ``finalize_partial``
policy at 25/50/75/100% of its own full-run ``dp_work``, with mean AWCT
ratios vs the full run and vs pure CARS, tier transitions and the
partial-finalize rate (the gate requires the section and warns on curve
drift).

The trail-mode workload is run twice through the parallel batch runner
(``repro.runner``): once serially and once with ``--jobs`` workers, so
the report also records the sharded runner's wall-time throughput and
verifies that parallel execution leaves every schedule byte-identical.

Optionally (``--baseline-rev``, default the repository's seed commit) the
same workload is also run against a past git revision in a subprocess, so
the report demonstrates the wall-time speedup of the current hot path and
verifies that the produced schedules are byte-identical to the baseline's.

Usage::

    PYTHONPATH=src python scripts/bench_report.py            # full report
    PYTHONPATH=src python scripts/bench_report.py --skip-baseline --jobs 4
    REPRO_BENCH_BLOCKS=4 PYTHONPATH=src python scripts/bench_report.py

The perf smoke job of CI runs this with ``REPRO_BENCH_BLOCKS=1`` and
``REPRO_JOBS=2``, gates on the result with
``scripts/check_perf_regression.py`` and uploads the JSON as an
artifact, tracking the trajectory from PR 1 onward.
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tarfile
import tempfile
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
if not any((Path(p) / "repro").is_dir() for p in sys.path if p):
    sys.path.insert(0, str(REPO_ROOT / "src"))

#: The v0 seed revision: copy-per-probe deduction, linear rule dispatch.
DEFAULT_BASELINE_REV = "746df46"

# --------------------------------------------------------------------------- #
# the measurement driver (run in-process for the current tree and as a
# subprocess for the baseline revision — the same code path for fairness)
# --------------------------------------------------------------------------- #
DRIVER = r"""
import json, sys, time


def build_workload(n_synth):
    from repro.workloads import (
        paper_figure1_block, fir_kernel, dot_product_kernel,
        dct_butterfly_kernel, string_search_kernel,
    )
    from repro.workloads.synth import SuperblockGenerator, GeneratorConfig

    blocks = [
        paper_figure1_block(),
        fir_kernel(taps=3),
        dot_product_kernel(width=3),
        dct_butterfly_kernel(),
        string_search_kernel(),
    ]
    gen = SuperblockGenerator(GeneratorConfig(min_ops=24, max_ops=48), seed=7)
    blocks += gen.generate_many("bench-synth", n_synth)
    return blocks


def vcs_config_for(mode):
    if mode == "default":
        return None
    from repro.scheduler import VcsConfig
    try:
        return VcsConfig(use_trail=(mode == "trail"))
    except TypeError:  # revision predates the use_trail knob
        return None


def make_scheduler(mode):
    from repro.scheduler import VirtualClusterScheduler
    config = vcs_config_for(mode)
    return VirtualClusterScheduler() if config is None else VirtualClusterScheduler(config)


def schedule_all(blocks, machine, mode):
    # All proposed-scheduler results for one machine, in block order.
    # Shards across the parallel batch runner when the tree has one
    # (REPRO_JOBS workers); old revisions fall back to the serial loop.
    try:
        from repro.runner import BatchScheduler, ScheduleJob, run_schedule_job, schedule_job_id
    except ImportError:
        return [make_scheduler(mode).schedule(block, machine) for block in blocks]
    jobs = [
        ScheduleJob(
            job_id=schedule_job_id("vcs", "bench", machine.name, index, block.name),
            scheduler="vcs",
            block=block,
            machine=machine,
            vcs_config=vcs_config_for(mode),
            check_schedule=False,
        )
        for index, block in enumerate(blocks)
    ]
    return BatchScheduler().map(run_schedule_job, jobs).values


def main(mode, n_synth, out_path):
    from repro.machine import paper_2c_8i_1lat, paper_4c_16i_1lat, paper_4c_16i_2lat

    machines = [paper_2c_8i_1lat(), paper_4c_16i_1lat(), paper_4c_16i_2lat()]
    blocks = build_workload(n_synth)
    report = {"mode": mode, "machines": []}
    for machine in machines:
        runs, work, fingerprints = 0, 0, []
        stats_total = {}
        awct_total = 0.0
        t0 = time.perf_counter()
        for block, result in zip(blocks, schedule_all(blocks, machine, mode)):
            runs += 1
            work += result.work
            awct_total += result.awct if result.ok else 0.0
            for key, value in getattr(result, "stats", {}).items():
                stats_total[key] = stats_total.get(key, 0) + value
            s = result.schedule
            fingerprints.append([
                block.name,
                sorted(s.cycles.items()) if s else None,
                sorted(s.clusters.items()) if s else None,
                sorted(
                    (c.value, c.producer, c.cycle, c.src_cluster, c.dst_cluster)
                    for c in (s.comms if s else [])
                ),
            ])
        wall = time.perf_counter() - t0
        report["machines"].append({
            "machine": machine.name,
            "wall_time_s": wall,
            "schedules": runs,
            "schedules_per_sec": runs / wall if wall > 0 else None,
            "dp_work": work,
            "awct_total": awct_total,
            "stats": stats_total,
            "fingerprints": fingerprints,
        })
    json.dump(report, open(out_path, "w"))


if __name__ == "__main__":
    main(sys.argv[1], int(sys.argv[2]), sys.argv[3])
"""


def run_driver(python_path: str, mode: str, n_synth: int, jobs: int = 1) -> dict:
    with tempfile.TemporaryDirectory() as tmp:
        driver = Path(tmp) / "driver.py"
        out = Path(tmp) / "out.json"
        driver.write_text(DRIVER)
        env = dict(os.environ)
        env["PYTHONPATH"] = python_path
        env["REPRO_JOBS"] = str(jobs)
        subprocess.run(
            [sys.executable, str(driver), mode, str(n_synth), str(out)],
            check=True,
            env=env,
        )
        return json.loads(out.read_text())


def export_revision(rev: str) -> tempfile.TemporaryDirectory:
    """Materialise *rev* into a temporary directory via ``git archive``."""
    tmp = tempfile.TemporaryDirectory(prefix=f"bench-baseline-{rev}-")
    archive = subprocess.run(
        ["git", "archive", rev],
        check=True,
        cwd=REPO_ROOT,
        stdout=subprocess.PIPE,
    )
    with tempfile.NamedTemporaryFile(suffix=".tar") as tar_file:
        tar_file.write(archive.stdout)
        tar_file.flush()
        with tarfile.open(tar_file.name) as tar:
            tar.extractall(tmp.name)
    return tmp


def measure_backends(n_synth: int) -> dict:
    """Serial sweep of every registered scheduler backend over the bench
    workload (current tree only — old revisions predate the registry).

    Returns, per backend and machine, the deterministic ``dp_work`` and a
    SHA-256 digest of every :class:`ScheduleResult` fingerprint (gated by
    the CI perf-regression gate), the wall time (reported, not gated),
    and — for the VCS pipeline — aggregated per-decision-stage call
    counts and wall times."""
    from repro.machine import paper_configurations
    from repro.runner import fingerprint_digest
    from repro.scheduler import available_backends, create

    # build_workload is shared with the DRIVER for workload parity.
    namespace: dict = {"__name__": "bench_driver"}
    exec(compile(DRIVER, "<driver>", "exec"), namespace)
    blocks = namespace["build_workload"](n_synth)

    backends: dict = {}
    for name in available_backends():
        backend = create(name)
        per_machine = []
        stage_totals: dict = {}
        for machine in paper_configurations():
            t0 = time.perf_counter()
            results = [backend.schedule(block, machine) for block in blocks]
            wall = time.perf_counter() - t0
            for result in results:
                for stage, entry in result.stage_timings.items():
                    slot = stage_totals.setdefault(stage, {"calls": 0, "wall_time_s": 0.0})
                    slot["calls"] += entry["calls"]
                    slot["wall_time_s"] += entry["wall_time_s"]
            per_machine.append(
                {
                    "machine": machine.name,
                    "wall_time_s": wall,
                    "dp_work": sum(r.work for r in results),
                    "schedule_digest": fingerprint_digest(r.fingerprint() for r in results),
                    "fallback_blocks": sum(1 for r in results if r.fallback_used),
                }
            )
        entry = {"machines": per_machine}
        if stage_totals:
            entry["stage_timings"] = stage_totals
        backends[name] = entry
    return backends


#: The gated scenario sample: every machine of these families crossed with
#: these workload families (>= 2 interconnect topologies x >= 2 workload
#: families).  Fixed block count so the committed digests are environment
#: independent (REPRO_BENCH_BLOCKS scales only the main bench workload).
SCENARIO_MACHINE_FAMILIES = ("ring", "p2p")
SCENARIO_WORKLOAD_FAMILIES = ("membound", "exitdense")
SCENARIO_BACKENDS = ("vcs",)
SCENARIO_BLOCKS = 1


def measure_scenarios() -> dict:
    """The scenario-matrix sweep the CI gate records (current tree only).

    Runs the proposed backend over a small sample of the scenario matrix —
    ring and point-to-point machines crossed with the memory-bound and
    exit-dense workload families — and records each cell's deterministic
    ``dp_work`` and schedule digest.  Wall time is reported, not gated."""
    from repro.analysis.experiments import run_scenario_matrix

    t0 = time.perf_counter()
    cells, _records = run_scenario_matrix(
        SCENARIO_MACHINE_FAMILIES,
        SCENARIO_WORKLOAD_FAMILIES,
        backends=SCENARIO_BACKENDS,
        blocks_per_benchmark=SCENARIO_BLOCKS,
    )
    return {
        "config": {
            "machine_families": list(SCENARIO_MACHINE_FAMILIES),
            "workload_families": list(SCENARIO_WORKLOAD_FAMILIES),
            "backends": list(SCENARIO_BACKENDS),
            "blocks_per_benchmark": SCENARIO_BLOCKS,
        },
        "wall_time_s": time.perf_counter() - t0,
        "cells": [cell.as_row() for cell in cells],
    }


def measure_runner(n_synth: int, jobs: int) -> dict:
    """The runner-layer performance section (current tree only).

    Three measurements, all on the bench workload with the result cache
    disabled unless stated:

    * **pool** — the same job stream run as several small batches on the
      shared persistent pool (one executor spin-up, reused) vs with a
      fresh ``ProcessPoolExecutor`` per batch (the historical mode); the
      wall-time ratio is the price per-batch spin-up used to charge.
    * **parallel** — warm-pool parallel vs serial wall over the whole
      workload.  The throughput ratio is gated ≥ 1.0 on multi-core hosts
      and *honestly skipped* (explicit ``skipped`` reason) on 1-CPU
      hosts, where a "speedup" would really measure pool overhead.
      Schedule byte-identity serial-vs-parallel is always asserted.
    * **matrix** — the gated 12-cell scenario sample run twice against a
      fresh temp cache: the cold leg computes and stores, the warm leg
      must be 100% cache hits (``warm_recomputed == 0``) with
      byte-identical cell digests.
    """
    from repro.analysis.experiments import run_scenario_matrix
    from repro.machine import paper_configurations
    from repro.api import schedule_many
    from repro.runner import (
        BatchScheduler,
        CacheSpec,
        CacheStats,
        ScheduleJob,
        schedule_job_id,
        shared_pool_stats,
        shutdown_shared_pools,
    )

    namespace: dict = {"__name__": "bench_driver"}
    exec(compile(DRIVER, "<driver>", "exec"), namespace)
    blocks = namespace["build_workload"](n_synth)
    job_list = [
        ScheduleJob(
            job_id=schedule_job_id("vcs", "bench", machine.name, index, block.name),
            scheduler="vcs",
            block=block,
            machine=machine,
            check_schedule=False,
        )
        for machine in paper_configurations()
        for index, block in enumerate(blocks)
    ]
    no_cache = CacheSpec.disabled()
    cpu_count = os.cpu_count() or 1
    n_batches = 4
    batches = [job_list[i::n_batches] for i in range(n_batches)]

    # --- pool reuse vs per-batch spin-up ------------------------------- #
    shutdown_shared_pools()
    reused_runner = BatchScheduler(jobs=jobs, persistent=True)
    # Warm-up batch: spin the shared pool up and pre-import the workers,
    # so the reuse leg measures steady-state batches, not the first spin-up.
    schedule_many(job_list[:2], runner=reused_runner, cache=no_cache)
    t0 = time.perf_counter()
    for batch in batches:
        schedule_many(batch, runner=reused_runner, cache=no_cache)
    reused_wall = time.perf_counter() - t0
    pool_stats = shared_pool_stats()

    fresh_runner = BatchScheduler(jobs=jobs, persistent=False)
    t0 = time.perf_counter()
    for batch in batches:
        schedule_many(batch, runner=fresh_runner, cache=no_cache)
    fresh_wall = time.perf_counter() - t0

    pool = {
        "jobs": jobs,
        "batches": n_batches,
        "batch_jobs": len(job_list),
        "reused_pool_wall_s": reused_wall,
        "fresh_pool_wall_s": fresh_wall,
        "reuse_speedup_vs_fresh": fresh_wall / reused_wall if reused_wall else None,
        "shared_pool_stats": pool_stats,
    }

    # --- warm-pool parallel vs serial throughput ----------------------- #
    serial_runner = BatchScheduler(jobs=1)
    t0 = time.perf_counter()
    serial_batch = schedule_many(job_list, runner=serial_runner, cache=no_cache)
    serial_wall = time.perf_counter() - t0
    # The shared pool is already warm from the pool measurement above.
    t0 = time.perf_counter()
    parallel_batch = schedule_many(job_list, runner=reused_runner, cache=no_cache)
    parallel_wall = time.perf_counter() - t0
    identical = [r.fingerprint() for r in serial_batch.values] == [
        r.fingerprint() for r in parallel_batch.values
    ]
    parallel = {
        "jobs": jobs,
        "cpu_count": cpu_count,
        "serial_wall_s": serial_wall,
        "warm_parallel_wall_s": parallel_wall,
        "schedules_identical_serial_vs_parallel": identical,
    }
    if cpu_count <= 1:
        parallel["throughput_speedup_vs_serial"] = None
        parallel["skipped"] = (
            "single-CPU host: parallel wall time measures pool overhead, "
            "not speedup"
        )
    else:
        parallel["throughput_speedup_vs_serial"] = (
            serial_wall / parallel_wall if parallel_wall else None
        )

    # --- warm vs cold matrix re-run through the result cache ----------- #
    with tempfile.TemporaryDirectory(prefix="bench-cache-") as tmp:
        spec = CacheSpec(root=tmp, enabled=True)
        cold_stats = CacheStats()
        t0 = time.perf_counter()
        cold_cells, _ = run_scenario_matrix(
            SCENARIO_MACHINE_FAMILIES,
            SCENARIO_WORKLOAD_FAMILIES,
            backends=SCENARIO_BACKENDS,
            blocks_per_benchmark=SCENARIO_BLOCKS,
            cache=spec,
            cache_stats=cold_stats,
        )
        cold_wall = time.perf_counter() - t0
        warm_stats = CacheStats()
        t0 = time.perf_counter()
        warm_cells, _ = run_scenario_matrix(
            SCENARIO_MACHINE_FAMILIES,
            SCENARIO_WORKLOAD_FAMILIES,
            backends=SCENARIO_BACKENDS,
            blocks_per_benchmark=SCENARIO_BLOCKS,
            cache=spec,
            cache_stats=warm_stats,
        )
        warm_wall = time.perf_counter() - t0
    matrix = {
        "cells": len(cold_cells),
        "cold_wall_s": cold_wall,
        "warm_wall_s": warm_wall,
        "warm_speedup_vs_cold": cold_wall / warm_wall if warm_wall else None,
        "cold_cache": cold_stats.to_dict(),
        "warm_cache": warm_stats.to_dict(),
        "warm_recomputed": warm_stats.misses,
        "digests_identical_warm_vs_cold": (
            [cell.as_row() for cell in cold_cells]
            == [cell.as_row() for cell in warm_cells]
        ),
    }
    return {"pool": pool, "parallel": parallel, "matrix": matrix}


#: Concurrent HTTP clients of the service load benchmark (the gate
#: requires >= 4).
SERVICE_CLIENTS = 4


def measure_service(jobs: int, n_clients: int = SERVICE_CLIENTS) -> dict:
    """The HTTP job-server load benchmark (current tree only).

    Submits the gated 12-cell scenario sample (the same flat job list
    as the ``matrix`` measurement) to a live in-process
    :class:`repro.service.JobServer` with a fresh temp result cache,
    from ``n_clients`` concurrent clients: a cold pass that computes
    and stores, then a warm pass that must be served 100% from cache.
    Gated: the aggregate HTTP schedule digest and ``dp_work`` must be
    byte-identical to the batch path's, and the warm hit rate must be
    1.0.  Submit-to-result latency percentiles are reported, not gated.
    """
    # Runs as a script, so the scripts directory is on sys.path.
    from check_service_identity import batch_reference, http_pass, latency_summary

    from repro.analysis.experiments import scenario_matrix_jobs
    from repro.runner import BatchScheduler, CacheSpec, fingerprint_digest
    from repro.service import ServerThread

    job_list = scenario_matrix_jobs(
        SCENARIO_MACHINE_FAMILIES,
        SCENARIO_WORKLOAD_FAMILIES,
        SCENARIO_BACKENDS,
        blocks_per_benchmark=SCENARIO_BLOCKS,
    )
    reference = batch_reference(job_list, jobs)
    with tempfile.TemporaryDirectory(prefix="bench-service-") as tmp:
        with ServerThread(
            runner=BatchScheduler(jobs=jobs), cache=CacheSpec(root=tmp)
        ) as server:
            t0 = time.perf_counter()
            cold_responses, cold_latencies, cold_errors = http_pass(
                server.url, job_list, n_clients
            )
            cold_wall = time.perf_counter() - t0
            t0 = time.perf_counter()
            warm_responses, warm_latencies, warm_errors = http_pass(
                server.url, job_list, n_clients
            )
            warm_wall = time.perf_counter() - t0

    def pass_section(responses, latencies, errors, wall):
        done = [r for r in responses if r is not None and r.state == "done"]
        return {
            "wall_s": wall,
            "completed": len(done),
            "errors": len(errors) + sum(1 for r in responses if r is None),
            "cache_hits": sum(1 for r in done if r.cache == "hit"),
            # A digest over the per-job digests (one per response, in
            # submission order) — comparable to the batch-side ``digest``.
            "http_digest": fingerprint_digest([r.digest for r in done]),
            "http_dp_work": sum(r.work for r in done),
            "latency": latency_summary(latencies),
        }

    cold = pass_section(cold_responses, cold_latencies, cold_errors, cold_wall)
    warm = pass_section(warm_responses, warm_latencies, warm_errors, warm_wall)
    n_jobs = len(job_list)
    return {
        "clients": n_clients,
        "workers": jobs,
        "jobs": n_jobs,
        "digest": fingerprint_digest([r["digest"] for r in reference]),
        "dp_work": sum(r["dp_work"] for r in reference),
        "cold": cold,
        "warm": warm,
        "warm_hit_rate": warm["cache_hits"] / n_jobs if n_jobs else 0.0,
        "http_identical_to_batch": (
            cold["http_digest"] == warm["http_digest"]
            and cold["http_dp_work"] == warm["http_dp_work"] == sum(
                r["dp_work"] for r in reference
            )
            and [r.digest if r is not None else None for r in cold_responses]
            == [r["digest"] for r in reference]
        ),
    }


#: The anytime-quality sample: budget fractions of each block's own full-run
#: ``dp_work`` (deterministic, so the recorded curve is environment
#: independent) under a ``finalize_partial`` policy, on one machine.
POLICY_FRACTIONS = (0.25, 0.5, 0.75, 1.0)


def measure_policy(n_synth: int) -> dict:
    """The anytime-quality curve of the budget-policy layer (current tree).

    For every bench block: measure the full (unlimited) VCS run's
    ``dp_work``, then re-run under a ``finalize_partial`` policy whose
    ``max_dp_work`` is 25/50/75/100% of that — each run emits a complete
    valid schedule (partial extraction, fallback, or the real thing) —
    and record AWCT relative to the full run and to the pure-CARS
    baseline, plus tier transitions and the partial-finalize rate.  All
    recorded values are deterministic; the perf gate requires the section
    to exist and warns (never fails) on curve drift."""
    from repro.machine import paper_4c_16i_1lat
    from repro.scheduler import (
        CarsScheduler,
        SchedulePolicy,
        VcsConfig,
        VirtualClusterScheduler,
    )

    namespace: dict = {"__name__": "bench_driver"}
    exec(compile(DRIVER, "<driver>", "exec"), namespace)
    blocks = namespace["build_workload"](n_synth)
    machine = paper_4c_16i_1lat()

    t0 = time.perf_counter()
    per_block = []
    totals = {
        fraction: {"vs_full": 0.0, "vs_cars": 0.0, "partial": 0, "fallback": 0}
        for fraction in POLICY_FRACTIONS
    }
    n_blocks = 0
    for block in blocks:
        full = VirtualClusterScheduler().schedule(block, machine)
        cars = CarsScheduler().schedule(block, machine)
        if not (full.ok and cars.ok):
            continue
        n_blocks += 1
        row = {
            "block": block.name,
            "full_dp_work": full.work,
            "full_awct": full.awct,
            "cars_awct": cars.awct,
            "points": [],
        }
        for fraction in POLICY_FRACTIONS:
            limit = max(1, int(full.work * fraction))
            policy = SchedulePolicy(exhaustion_mode="finalize_partial", max_dp_work=limit)
            result = VirtualClusterScheduler(VcsConfig(policy=policy)).schedule(
                block, machine
            )
            info = result.policy or {}
            row["points"].append(
                {
                    "fraction": fraction,
                    "dp_limit": limit,
                    "awct": result.awct if result.ok else None,
                    "source": info.get("source"),
                    "tier": info.get("tier"),
                    "partial_finalize": bool(info.get("partial_finalize")),
                    "tier_transitions": [t["tier"] for t in info.get("transitions", [])],
                }
            )
            totals[fraction]["vs_full"] += result.awct / full.awct
            totals[fraction]["vs_cars"] += result.awct / cars.awct
            totals[fraction]["partial"] += bool(info.get("partial_finalize"))
            totals[fraction]["fallback"] += bool(result.fallback_used)
        per_block.append(row)

    curve = [
        {
            "fraction": fraction,
            "mean_awct_ratio_vs_full": entry["vs_full"] / n_blocks,
            "mean_awct_ratio_vs_cars": entry["vs_cars"] / n_blocks,
            "partial_finalize_rate": entry["partial"] / n_blocks,
            "fallback_rate": entry["fallback"] / n_blocks,
        }
        for fraction, entry in totals.items()
    ]
    return {
        "config": {
            "machine": machine.name,
            "mode": "finalize_partial",
            "fractions": list(POLICY_FRACTIONS),
        },
        "wall_time_s": time.perf_counter() - t0,
        "anytime_curve": curve,
        "blocks": per_block,
    }


def deduction_counters(report: dict) -> dict:
    """Aggregate the deduction-layer counters of one driver report.

    Sums the per-machine ``stats`` and splits them into the per-rule-class
    ``dp_work`` breakdown, the probe-cache hit rate and the propagation-
    queue coalesce rate.  Reported in the summary (and compared by the
    perf gate as non-gating warnings); the gated totals stay ``dp_work``
    and the schedule digests."""
    totals: dict = {}
    for machine in report["machines"]:
        for key, value in machine.get("stats", {}).items():
            totals[key] = totals.get(key, 0) + value
    prefix = "dp_rule_"
    by_rule = {
        key.removeprefix(prefix): value
        for key, value in sorted(totals.items())
        if key.startswith(prefix)
    }
    hits = totals.get("probe_cache_hits", 0)
    misses = totals.get("probe_cache_misses", 0)
    pushed = totals.get("queue_pushed", 0)
    coalesced = totals.get("queue_coalesced", 0)
    return {
        "dp_work_by_rule": by_rule,
        "probing": {
            "probes": totals.get("probes", 0),
            "rollbacks": totals.get("rollbacks", 0),
            "redos": totals.get("redos", 0),
            # Zero at the default configuration: both knobs are opt-in.
            # Recorded anyway so the gate can assert the block's presence
            # and an opt-in bench run shows how much the knobs skip.
            "candidates_pruned": totals.get("candidates_pruned", 0),
            "early_cut_skips": totals.get("early_cut_skips", 0),
        },
        "probe_cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": hits / (hits + misses) if hits + misses else None,
        },
        "queue": {
            "pushed": pushed,
            "coalesced": coalesced,
            "coalesce_rate": (
                coalesced / (pushed + coalesced) if pushed + coalesced else None
            ),
        },
    }


#: The two probing stages the fix-cycles fast path targets; their share of
#: the VCS stage wall is the headline number PR 6 drives down.
PROBING_STAGES = ("fix-cycles", "fix-communications")


def fix_cycles_wall_share(stage_timings: dict) -> float | None:
    """Fraction of the VCS per-stage wall spent in the probing stages.

    Wall times are host dependent, so the share is reported (and compared
    by the perf gate as a non-gating warning), never gated."""
    total = sum(entry.get("wall_time_s", 0.0) for entry in stage_timings.values())
    if not total:
        return None
    probing = sum(
        stage_timings.get(stage, {}).get("wall_time_s", 0.0) for stage in PROBING_STAGES
    )
    return probing / total


def profile_vcs_leg(n_synth: int, top_n: int, out_path: str) -> None:
    """cProfile the trail-mode vcs leg in-process and write the top-N
    functions (by cumulative and by internal time) as a text artifact.

    Runs a dedicated serial pass over the bench workload — the gated
    numbers always come from unprofiled subprocess runs, so enabling the
    profiler cannot skew them."""
    import cProfile
    import io
    import pstats

    from repro.machine import paper_configurations
    from repro.scheduler import VcsConfig, VirtualClusterScheduler

    namespace: dict = {"__name__": "bench_driver"}
    exec(compile(DRIVER, "<driver>", "exec"), namespace)
    blocks = namespace["build_workload"](n_synth)
    scheduler = VirtualClusterScheduler(VcsConfig(use_trail=True))

    profiler = cProfile.Profile()
    profiler.enable()
    for machine in paper_configurations():
        for block in blocks:
            scheduler.schedule(block, machine)
    profiler.disable()

    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    for sort in ("cumulative", "tottime"):
        buffer.write(f"== vcs trail leg, top {top_n} by {sort} ==\n")
        stats.sort_stats(sort).print_stats(top_n)
        buffer.write("\n")
    Path(out_path).write_text(buffer.getvalue())
    print(f"[bench] wrote {out_path} (cProfile top {top_n}, vcs trail leg)")


def parallel_section(jobs: int, serial_wall: float, parallel_wall: float, identical: bool) -> dict:
    """The cold-pool parallel-vs-serial section of the summary.

    ``cpu_count`` is recorded honestly, and on a single-CPU host the
    throughput ratio is *skipped* with an explicit reason instead of
    publishing a sub-1.0 "speedup" that really measures pool spin-up
    overhead.  The byte-identity flag is always recorded — identity holds
    on any host."""
    cpu_count = os.cpu_count() or 1
    section = {
        "jobs": jobs,
        "cpu_count": cpu_count,
        "wall_time_s": parallel_wall,
        "serial_wall_time_s": serial_wall,
        "schedules_identical_serial_vs_parallel": identical,
    }
    if cpu_count <= 1 and jobs > 1:
        section["throughput_speedup_vs_serial"] = None
        section["skipped"] = (
            "single-CPU host: parallel wall time measures pool overhead, not speedup"
        )
    else:
        section["throughput_speedup_vs_serial"] = (
            serial_wall / parallel_wall if parallel_wall else None
        )
    return section


def digest_fingerprints(report: dict) -> dict:
    """Replace each machine's raw fingerprint list with its SHA-256 digest.

    The digest is what the committed report stores and what the CI
    perf-regression gate compares, so schedule byte-identity is tracked
    without committing the schedules themselves.
    """
    from repro.runner import fingerprint_digest

    machines = []
    for m in report["machines"]:
        entry = {k: v for k, v in m.items() if k != "fingerprints"}
        entry["schedule_digest"] = fingerprint_digest(m["fingerprints"])
        machines.append(entry)
    return {**report, "machines": machines}


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--output", default=str(REPO_ROOT / "BENCH_vcs.json"))
    parser.add_argument(
        "--blocks",
        type=int,
        default=int(os.environ.get("REPRO_BENCH_BLOCKS", "2")),
        help="synthetic superblocks added to the kernel workload",
    )
    parser.add_argument(
        "--baseline-rev",
        default=DEFAULT_BASELINE_REV,
        help="git revision to compare against (seed commit by default)",
    )
    parser.add_argument("--skip-baseline", action="store_true")
    parser.add_argument(
        "--cprofile",
        type=int,
        default=0,
        metavar="N",
        help="also cProfile the trail-mode vcs leg and write the top-N "
        "functions to --cprofile-output (0 disables; nightly artifact)",
    )
    parser.add_argument(
        "--cprofile-output",
        default=str(REPO_ROOT / "BENCH_profile_vcs.txt"),
        help="where --cprofile writes its text report",
    )
    parser.add_argument(
        "--jobs",
        default=None,
        help="workers for the parallel-runner measurement (default: $REPRO_JOBS or 2)",
    )
    args = parser.parse_args()

    from repro.runner import resolve_jobs

    if args.jobs is None and "REPRO_JOBS" not in os.environ:
        jobs = 2  # the serial run is measured separately; exercise the pool
    else:
        # An explicit worker count (flag or env) is honoured as-is so CI can
        # matrix the gate over REPRO_JOBS={1,2} and verify that the recorded
        # digests are identical whether the runner shards or not.
        jobs = resolve_jobs(args.jobs)

    src = str(REPO_ROOT / "src")
    print(f"[bench] current tree, trail mode, serial ({args.blocks} synthetic blocks)...")
    trail = run_driver(src, "trail", args.blocks, jobs=1)
    print(f"[bench] current tree, trail mode, parallel ({jobs} workers)...")
    parallel = run_driver(src, "trail", args.blocks, jobs=jobs)
    print("[bench] current tree, copy mode...")
    copy = run_driver(src, "copy", args.blocks, jobs=1)
    print("[bench] current tree, backend sweep (registry)...")
    backends = measure_backends(args.blocks)
    print("[bench] current tree, scenario-matrix sample (ring/p2p x workload families)...")
    scenarios = measure_scenarios()
    print("[bench] current tree, anytime policy curve (finalize_partial @ 25/50/75/100%)...")
    policy = measure_policy(args.blocks)
    print(
        "[bench] current tree, runner layer "
        f"(pool reuse, warm throughput, matrix cache; {jobs} workers)..."
    )
    runner = measure_runner(args.blocks, max(jobs, 2))
    print(
        "[bench] current tree, HTTP job server "
        f"({SERVICE_CLIENTS} clients x 12-cell matrix, cold+warm; {max(jobs, 2)} workers)..."
    )
    service = measure_service(max(jobs, 2))
    if args.cprofile > 0:
        print(f"[bench] current tree, cProfile of the trail-mode vcs leg (top {args.cprofile})...")
        profile_vcs_leg(args.blocks, args.cprofile, args.cprofile_output)

    baseline = None
    baseline_identical = None
    if not args.skip_baseline:
        try:
            tree = export_revision(args.baseline_rev)
        except subprocess.CalledProcessError:
            print(f"[bench] baseline revision {args.baseline_rev!r} unavailable; skipping")
        else:
            with tree:
                print(f"[bench] baseline revision {args.baseline_rev}...")
                baseline = run_driver(str(Path(tree.name) / "src"), "default", args.blocks)
            baseline_identical = all(
                b["fingerprints"] == t["fingerprints"]
                for b, t in zip(baseline["machines"], trail["machines"])
            )

    def total_wall(report):
        return sum(m["wall_time_s"] for m in report["machines"])

    trail_wall, copy_wall = total_wall(trail), total_wall(copy)
    parallel_wall = total_wall(parallel)
    parallel_identical = all(
        s["fingerprints"] == p["fingerprints"]
        for s, p in zip(trail["machines"], parallel["machines"])
    )
    summary = {
        "generated_unix": time.time(),
        "workload": {
            "kernels": 5,
            "synthetic_blocks": args.blocks,
            "machines": [m["machine"] for m in trail["machines"]],
        },
        "trail": digest_fingerprints(trail),
        "copy": digest_fingerprints(copy),
        "trail_vs_copy_speedup": copy_wall / trail_wall if trail_wall else None,
        "schedules_identical_trail_vs_copy": all(
            t["fingerprints"] == c["fingerprints"]
            for t, c in zip(trail["machines"], copy["machines"])
        ),
        "parallel": parallel_section(jobs, trail_wall, parallel_wall, parallel_identical),
        "runner": runner,
        "service": service,
        "backends": backends,
        "scenarios": scenarios,
        "policy": policy,
        "deduction": {
            **deduction_counters(trail),
            "fix_cycles_wall_share": fix_cycles_wall_share(
                backends.get("vcs", {}).get("stage_timings", {})
            ),
        },
    }
    if baseline is not None:
        base_wall = total_wall(baseline)
        summary["baseline"] = {
            "rev": args.baseline_rev,
            **digest_fingerprints(baseline),
        }
        summary["baseline_vs_current_speedup"] = (
            base_wall / trail_wall if trail_wall else None
        )
        summary["schedules_identical_vs_baseline"] = baseline_identical

    Path(args.output).write_text(json.dumps(summary, indent=2) + "\n")

    print(f"\n[bench] wrote {args.output}")
    print(f"[bench] trail {trail_wall:.2f}s | copy {copy_wall:.2f}s | "
          f"trail-vs-copy {summary['trail_vs_copy_speedup']:.2f}x | "
          f"identical={summary['schedules_identical_trail_vs_copy']}")
    cold_speedup = summary["parallel"]["throughput_speedup_vs_serial"]
    cold_note = (
        f"throughput {cold_speedup:.2f}x"
        if cold_speedup is not None
        else f"throughput skipped ({summary['parallel']['skipped']})"
    )
    print(f"[bench] runner: parallel({jobs} workers, {os.cpu_count()} cpus) {parallel_wall:.2f}s | "
          f"serial {trail_wall:.2f}s | {cold_note} | "
          f"identical={parallel_identical}")
    pool_info, warm_info, matrix_info = runner["pool"], runner["parallel"], runner["matrix"]
    warm_speedup = warm_info["throughput_speedup_vs_serial"]
    warm_note = (
        f"warm throughput {warm_speedup:.2f}x"
        if warm_speedup is not None
        else f"warm throughput skipped ({warm_info['skipped']})"
    )
    print(
        f"[bench] pool: reuse {pool_info['reused_pool_wall_s']:.2f}s vs fresh "
        f"{pool_info['fresh_pool_wall_s']:.2f}s over {pool_info['batches']} batches "
        f"({pool_info['reuse_speedup_vs_fresh']:.2f}x) | {warm_note} | "
        f"identical={warm_info['schedules_identical_serial_vs_parallel']}"
    )
    print(
        f"[bench] result cache: matrix cold {matrix_info['cold_wall_s']:.2f}s -> warm "
        f"{matrix_info['warm_wall_s']:.2f}s ({matrix_info['warm_speedup_vs_cold']:.1f}x), "
        f"{matrix_info['warm_recomputed']} of {matrix_info['cells']} cells recomputed warm, "
        f"digests identical={matrix_info['digests_identical_warm_vs_cold']}"
    )
    print(
        f"[bench] service: {service['jobs']} jobs x {service['clients']} clients over HTTP | "
        f"cold p50 {service['cold']['latency']['p50_s'] * 1000:.0f}ms "
        f"p99 {service['cold']['latency']['p99_s'] * 1000:.0f}ms | "
        f"warm p50 {service['warm']['latency']['p50_s'] * 1000:.0f}ms | "
        f"warm hit rate {service['warm_hit_rate']:.0%} | "
        f"identical={service['http_identical_to_batch']}"
    )
    if baseline is not None:
        print(f"[bench] baseline({args.baseline_rev}) {total_wall(baseline):.2f}s | "
              f"speedup {summary['baseline_vs_current_speedup']:.2f}x | "
              f"byte-identical={baseline_identical}")
    copies_avoided = sum(
        m["stats"].get("copies_avoided", 0) for m in trail["machines"]
    )
    print(f"[bench] copies avoided by the trail: {copies_avoided}")
    deduction = summary["deduction"]
    cache, queue = deduction["probe_cache"], deduction["queue"]
    hit_rate = cache["hit_rate"]
    coalesce_rate = queue["coalesce_rate"]
    print(
        f"[bench] probe cache: {cache['hits']} hits / {cache['misses']} misses"
        + (f" ({hit_rate:.1%})" if hit_rate is not None else "")
        + f" | queue: {queue['pushed']} pushed, {queue['coalesced']} coalesced"
        + (f" ({coalesce_rate:.1%})" if coalesce_rate is not None else "")
    )
    probing = deduction["probing"]
    print(
        f"[bench] probing: {probing['probes']} probes, {probing['rollbacks']} rollbacks, "
        f"{probing['redos']} redos | pruned {probing['candidates_pruned']} candidates, "
        f"early-cut {probing['early_cut_skips']} probes"
    )
    share = deduction["fix_cycles_wall_share"]
    if share is not None:
        print(f"[bench] fix-cycles wall share (vcs probing stages): {share:.1%}")
    top_rules = sorted(deduction["dp_work_by_rule"].items(), key=lambda item: -item[1])[:4]
    if top_rules:
        split = " | ".join(f"{name} {count}" for name, count in top_rules)
        print(f"[bench] dp_work by rule (top): {split}")
    for name, entry in backends.items():
        wall = sum(m["wall_time_s"] for m in entry["machines"])
        work = sum(m["dp_work"] for m in entry["machines"])
        print(f"[bench] backend {name:8s} wall {wall:.2f}s | dp_work {work}")
    n_cells = len(scenarios["cells"])
    topologies = sorted({cell["machine_family"] for cell in scenarios["cells"]})
    print(
        f"[bench] scenario sample: {n_cells} cells over {'/'.join(topologies)} "
        f"in {scenarios['wall_time_s']:.2f}s"
    )
    curve_text = " | ".join(
        f"{point['fraction']:.0%}: {point['mean_awct_ratio_vs_full']:.3f}x full, "
        f"{point['mean_awct_ratio_vs_cars']:.3f}x cars, "
        f"partial {point['partial_finalize_rate']:.0%}"
        for point in policy["anytime_curve"]
    )
    print(f"[bench] anytime curve ({policy['config']['machine']}): {curve_text}")
    vcs_stages = backends.get("vcs", {}).get("stage_timings", {})
    if vcs_stages:
        breakdown = " | ".join(
            f"{stage} {entry['wall_time_s']:.2f}s/{entry['calls']}"
            for stage, entry in vcs_stages.items()
        )
        print(f"[bench] vcs stage timing: {breakdown}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
