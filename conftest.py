"""Pytest bootstrap: make the ``src`` layout importable without installation.

The project is normally installed with ``pip install -e .``; this hook keeps
``pytest`` (and the benchmark harness) working in environments where an
editable install is not possible (e.g. offline machines without the
``wheel`` package).
"""

import os
import sys

try:  # Installed package (pip install -e .) takes precedence.
    import repro  # noqa: F401
except ImportError:  # Fallback: make the src layout importable in place.
    _SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)

import pytest


@pytest.fixture(autouse=True, scope="session")
def _hermetic_result_cache(tmp_path_factory):
    """Point the on-disk result cache at a per-session temp directory.

    Keeps the test suite hermetic: runs never read results cached by
    earlier suite invocations in ``~/.cache/repro`` and never pollute it.
    Tests that need a specific cache location pass an explicit
    ``CacheSpec``/``--cache-dir`` instead.
    """
    if "REPRO_CACHE_DIR" not in os.environ:
        cache_dir = tmp_path_factory.mktemp("repro-cache")
        os.environ["REPRO_CACHE_DIR"] = str(cache_dir)
    yield
