"""Pytest bootstrap: make the ``src`` layout importable without installation.

The project is normally installed with ``pip install -e .``; this hook keeps
``pytest`` (and the benchmark harness) working in environments where an
editable install is not possible (e.g. offline machines without the
``wheel`` package).
"""

import os
import sys

try:  # Installed package (pip install -e .) takes precedence.
    import repro  # noqa: F401
except ImportError:  # Fallback: make the src layout importable in place.
    _SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
