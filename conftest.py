"""Pytest bootstrap: make the ``src`` layout importable without installation.

The project is normally installed with ``pip install -e .``; this hook keeps
``pytest`` (and the benchmark harness) working in environments where an
editable install is not possible (e.g. offline machines without the
``wheel`` package).
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)
