"""Tests for the asyncio HTTP job server (``repro.service``).

The contract under test: the service is a *transport*, not a scheduler —
every job dispatched over HTTP flows through the identical
:func:`repro.api.schedule_many` path as a local batch, so responses are
byte-identical to batch results (digest and ``dp_work``), repeated
submissions are result-cache hits, and the failure taxonomy
(error/timeout/crash/cancelled) passes through unchanged.  On top of
that, the fair per-client queue must not let a slow tenant starve a
fast one, a tenant's default :class:`SchedulePolicy` must follow its
jobs (budget exhaustion lands as a ``finalize_partial`` result), and
cancellation works both while queued (immediate) and mid-run
(cooperative).
"""

import threading
import time

import pytest

from repro.api import ScheduleRequest, schedule_many
from repro.machine import paper_2c_8i_1lat
from repro.runner import BatchScheduler, CacheSpec, fingerprint_digest
from repro.scheduler import VcsConfig
from repro.scheduler.policy import SchedulePolicy
from repro.service import ServerThread, ServiceClient, ServiceError
from repro.service.queue import FairQueue, ServiceJob
from repro.workloads import (
    GeneratorConfig,
    SuperblockGenerator,
    dot_product_kernel,
    paper_figure1_block,
)

#: ~0.9s of vcs scheduling on the 2-cluster paper machine — long enough
#: to observe/cancel a running job without flakiness, short enough for CI.
_SLOW_SIZE = 100


def _slow_block(seed: int = 7):
    config = GeneratorConfig(min_ops=_SLOW_SIZE, max_ops=_SLOW_SIZE, ilp=4.0, exit_every=6)
    return SuperblockGenerator(config, seed=seed).generate(f"service-slow/{seed}")


def _request(block, client="default", policy=None, job_name=""):
    return ScheduleRequest(
        block=block,
        machine=paper_2c_8i_1lat(),
        backend="vcs",
        vcs=VcsConfig(work_budget=500_000),
        policy=policy,
        client=client,
        job_name=job_name,
    )


def _batch_reference(requests):
    batch = schedule_many(requests, cache=CacheSpec.disabled())
    return [
        (fingerprint_digest([result.fingerprint()]), result.work)
        for result in batch.values
    ]


@pytest.fixture()
def server(tmp_path):
    with ServerThread(
        runner=BatchScheduler(jobs=1), cache=CacheSpec(root=str(tmp_path / "cache"))
    ) as thread:
        yield thread


@pytest.fixture()
def serial_server(tmp_path):
    """One job per dispatch round — deterministic queue observation."""
    with ServerThread(
        runner=BatchScheduler(jobs=1),
        cache=CacheSpec(root=str(tmp_path / "cache")),
        max_batch=1,
    ) as thread:
        yield thread


# --------------------------------------------------------------------------- #
# byte identity over the wire
# --------------------------------------------------------------------------- #
class TestHttpIdentity:
    def test_concurrent_clients_byte_identical_to_batch(self, server):
        requests = [
            _request(paper_figure1_block(), client="client-a"),
            _request(dot_product_kernel(), client="client-b"),
            _request(_slow_block(3), client="client-a"),
            _request(_slow_block(4), client="client-b"),
        ]
        reference = _batch_reference(requests)

        responses = [None] * len(requests)

        def worker(positions):
            client = ServiceClient(server.url)
            for index in positions:
                responses[index] = client.schedule(requests[index])

        threads = [
            threading.Thread(target=worker, args=(range(start, len(requests), 2),))
            for start in (0, 1)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

        for response, (digest, work) in zip(responses, reference):
            assert response.state == "done"
            assert response.digest == digest
            assert response.work == work

    def test_warm_resubmission_is_a_cache_hit(self, server):
        client = ServiceClient(server.url)
        request = _request(paper_figure1_block())
        cold = client.schedule(request)
        warm = client.schedule(request)
        assert cold.cache == "miss" and warm.cache == "hit"
        assert cold.digest == warm.digest
        assert cold.work == warm.work
        stats = client.stats()
        assert stats["cache"]["hits"] >= 1

    def test_health_and_stats(self, server):
        client = ServiceClient(server.url)
        health = client.health()
        assert health["ok"] is True and health["version"]
        stats = client.stats()
        assert stats["max_batch"] >= 1
        assert stats["jobs"]["total"] == 0

    def test_submit_rejects_malformed_requests(self, server):
        client = ServiceClient(server.url)
        wire = _request(paper_figure1_block()).to_dict()
        wire["backend"]["name"] = "no-such-backend"
        with pytest.raises(ServiceError) as excinfo:
            client._call("POST", "/api/v1/jobs", wire)
        assert excinfo.value.status == 400
        assert "invalid schedule request" in excinfo.value.message
        with pytest.raises(ServiceError) as excinfo:
            client._call("POST", "/api/v1/jobs", {"nonsense": 1})
        assert excinfo.value.status == 400

    def test_unknown_job_is_404(self, server):
        with pytest.raises(ServiceError) as excinfo:
            ServiceClient(server.url).status("j-999999")
        assert excinfo.value.status == 404


# --------------------------------------------------------------------------- #
# cancellation: queued = immediate, running = cooperative
# --------------------------------------------------------------------------- #
class TestCancellation:
    def test_cancel_while_queued(self, serial_server):
        client = ServiceClient(serial_server.url)
        # The slow job occupies the single dispatch slot; the second job
        # is still queued when the cancel lands.
        running = client.submit(_request(_slow_block(11)))
        queued = client.submit(_request(paper_figure1_block()))
        cancelled = client.cancel(queued.job_id)
        assert cancelled.state == "cancelled"
        response = client.result(queued.job_id)
        assert response.state == "cancelled"
        assert response.failure["kind"] == "cancelled"
        # The in-flight job is untouched.
        assert client.result(running.job_id).state == "done"
        assert client.client_state("default")["cancelled"] == 1

    def test_cancel_mid_run_discards_the_result(self, serial_server):
        client = ServiceClient(serial_server.url)
        status = client.submit(_request(_slow_block(12), client="tenant"))
        deadline = time.monotonic() + 30
        while time.monotonic() < deadline:
            status = client.status(status.job_id)
            if status.state != "queued":
                break
            time.sleep(0.01)
        assert status.state == "running"
        acknowledged = client.cancel(status.job_id)
        assert acknowledged.state in ("cancelling", "cancelled")
        response = client.result(status.job_id)
        assert response.state == "cancelled"
        assert response.failure["kind"] == "cancelled"
        assert client.client_state("tenant")["cancelled"] == 1
        assert client.client_state("tenant")["completed"] == 0

    def test_cancel_terminal_job_is_a_no_op(self, server):
        client = ServiceClient(server.url)
        done = client.schedule(_request(paper_figure1_block()))
        status = client.cancel(done.job_id)
        assert status.state == "done"


# --------------------------------------------------------------------------- #
# per-client policy and budget exhaustion
# --------------------------------------------------------------------------- #
class TestClientPolicy:
    def test_budget_exhaustion_finalizes_partial(self, server):
        client = ServiceClient(server.url)
        state = client.set_policy(
            "tenant", SchedulePolicy("finalize_partial", max_dp_work=200)
        )
        assert state["policy"] is not None
        # The request carries no policy of its own -> the tenant default
        # is merged in; 200 dp_work cannot finish the paper block (983).
        response = client.schedule(_request(paper_figure1_block(), client="tenant"))
        assert response.state == "done"
        assert response.policy is not None
        assert response.policy["partial_finalize"] is True
        accounting = client.client_state("tenant")
        assert accounting["partial_finalizes"] == 1
        assert accounting["completed"] == 1

    def test_request_policy_beats_client_default(self, server):
        client = ServiceClient(server.url)
        client.set_policy("tenant", SchedulePolicy("finalize_partial", max_dp_work=200))
        roomy = SchedulePolicy("finalize_partial", max_dp_work=500_000)
        response = client.schedule(
            _request(paper_figure1_block(), client="tenant", policy=roomy)
        )
        assert response.state == "done"
        assert response.policy["partial_finalize"] is False

    def test_clearing_the_policy(self, server):
        client = ServiceClient(server.url)
        client.set_policy("tenant", SchedulePolicy("finalize_partial", max_dp_work=200))
        state = client.set_policy("tenant", None)
        assert state["policy"] is None
        response = client.schedule(_request(paper_figure1_block(), client="tenant"))
        assert response.state == "done"
        assert response.policy is None


# --------------------------------------------------------------------------- #
# queue fairness
# --------------------------------------------------------------------------- #
class TestFairness:
    def test_slow_tenant_does_not_starve_a_fast_one(self, serial_server):
        client = ServiceClient(serial_server.url)
        hog_jobs = [
            client.submit(_request(_slow_block(20 + i), client="hog", job_name=f"hog-{i}"))
            for i in range(3)
        ]
        nimble = client.submit(
            _request(paper_figure1_block(), client="nimble", job_name="nimble-0")
        )
        nimble_response = client.result(nimble.job_id)
        assert nimble_response.state == "done"
        nimble_done = client.status(nimble.job_id).finished_s
        last_hog = client.result(hog_jobs[-1].job_id)
        assert last_hog.state == "done"
        hog_done = client.status(hog_jobs[-1].job_id).finished_s
        # Round-robin rounds: the nimble tenant's only job must not wait
        # behind the hog's whole backlog.
        assert nimble_done < hog_done

    def test_fair_queue_rotates_between_clients(self):
        queue = FairQueue()
        jobs = []
        for client, count in (("a", 3), ("b", 2), ("c", 1)):
            for index in range(count):
                job = ServiceJob(job_id=f"{client}-{index}", client=client, request=None)
                jobs.append(job)
                queue.push(job)
        order = []
        while len(queue):
            order.extend(job.job_id for job in queue.take_round(limit=3))
        assert order == ["a-0", "b-0", "c-0", "a-1", "b-1", "a-2"]

    def test_fair_queue_skips_cancelled_jobs(self):
        queue = FairQueue()
        first = ServiceJob(job_id="a-0", client="a", request=None)
        second = ServiceJob(job_id="a-1", client="a", request=None)
        queue.push(first)
        queue.push(second)
        first.cancel_requested = True
        assert len(queue) == 1
        assert [job.job_id for job in queue.take_round(limit=4)] == ["a-1"]
