"""Tests for the scenario matrix: machine specs/families, interconnect
topologies, workload families and the matrix driver + CLI."""

import os
import pickle
import subprocess
import sys

import pytest

from repro.analysis.experiments import run_scenario_matrix
from repro.machine import (
    BusConfig,
    ClusterConfig,
    ClusteredMachine,
    ClusterSpec,
    InterconnectConfig,
    MachineSpec,
    PointToPointConfig,
    RingConfig,
    all_machine_specs,
    machine_by_name,
    machine_families,
    machine_family,
    paper_configurations,
)
from repro.runner import BatchScheduler
from repro.scheduler import (
    CarsScheduler,
    Schedule,
    VirtualClusterScheduler,
    validate_schedule,
)
from repro.scheduler.schedule import ScheduledComm
from repro.workloads import (
    all_kernels,
    build_family,
    workload_families,
    workload_family,
    workload_family_names,
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# --------------------------------------------------------------------------- #
# interconnect topologies
# --------------------------------------------------------------------------- #
class TestInterconnect:
    def test_bus_matches_legacy_semantics(self):
        bus = BusConfig(count=2, latency=3, pipelined=False)
        assert bus.topology == "bus"
        assert bus.effective_latency(4) == 3
        assert bus.effective_occupancy(4) == 3
        assert bus.channel_count(4) == 2

    def test_ring_worst_case_hops(self):
        ring = RingConfig(count=1, latency=1)
        assert ring.effective_latency(2) == 1
        assert ring.effective_latency(4) == 2
        assert ring.effective_latency(8) == 4
        assert ring.channel_count(8) == 1

    def test_p2p_single_hop_per_cluster_ports(self):
        p2p = PointToPointConfig(count=1, latency=2, pipelined=False)
        assert p2p.effective_latency(8) == 2
        assert p2p.effective_occupancy(8) == 2
        assert p2p.channel_count(4) == 4

    def test_unknown_topology_rejected(self):
        with pytest.raises(ValueError):
            InterconnectConfig(topology="mesh")

    def test_machine_properties_delegate(self):
        machine = machine_by_name("4c-ring-lat1")
        assert machine.copy_latency == 2
        assert machine.copy_occupancy == 1
        assert machine.channel_count == 1

    def test_bus_machine_properties_unchanged(self):
        machine = paper_configurations()[2]  # 4clust 1b 2lat, non-pipelined
        assert machine.copy_latency == 2
        assert machine.copy_occupancy == 2
        assert machine.channel_count == 1


# --------------------------------------------------------------------------- #
# machine specs and families
# --------------------------------------------------------------------------- #
class TestMachineSpec:
    def test_every_spec_round_trips_through_dict(self):
        for name, spec in all_machine_specs().items():
            assert MachineSpec.from_dict(spec.to_dict()) == spec, name

    def test_every_spec_round_trips_through_machine(self):
        for name, spec in all_machine_specs().items():
            machine = spec.to_machine()
            assert MachineSpec.from_machine(machine).to_machine() == machine, name

    def test_specs_pickle(self):
        specs = all_machine_specs()
        assert pickle.loads(pickle.dumps(specs)) == specs

    def test_paper_family_byte_identical_to_presets(self):
        family = machine_family("paper")
        assert family.machines() == paper_configurations()
        # Field-level identity with the historical hard-coded construction.
        legacy = ClusteredMachine(
            name="2clust 1b 1lat",
            clusters=(ClusterConfig.uniform(1), ClusterConfig.uniform(1)),
            bus=BusConfig(count=1, latency=1, pipelined=True),
        )
        assert family.spec("2clust 1b 1lat").to_machine() == legacy

    def test_machine_by_name_and_unknown(self):
        assert machine_by_name("4clust 1b 2lat").n_clusters == 4
        with pytest.raises(KeyError):
            machine_by_name("not-a-machine")
        with pytest.raises(KeyError):
            machine_family("not-a-family")

    def test_family_names_unique_across_registry(self):
        names = [family.name for family in machine_families()]
        assert len(names) == len(set(names))
        all_machine_specs()  # raises on conflicting duplicate spec names

    def test_register_constraint_validated(self):
        with pytest.raises(ValueError):
            ClusterSpec.uniform(n_registers=0)

    def test_duplicate_fu_kinds_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            ClusterSpec(fu_counts=(("int", 1), ("int", 4)))

    def test_notes_do_not_affect_equality(self):
        a = MachineSpec.uniform("m", 2, notes="x")
        b = MachineSpec.uniform("m", 2, notes="y")
        assert a == b


class TestNewTopologiesSchedule:
    """Every backend produces validated schedules on the new topologies."""

    @pytest.mark.parametrize(
        "machine_name",
        ["4c-ring-lat1", "8c-ring-lat1", "2c-p2p-lat1", "4c-p2p-lat2"],
    )
    def test_kernels_schedule_and_validate(self, machine_name):
        machine = machine_by_name(machine_name)
        block = all_kernels()["dot"]
        for scheduler in (CarsScheduler(), VirtualClusterScheduler()):
            result = scheduler.schedule(block, machine)
            assert result.ok
            validate_schedule(result.schedule).raise_if_invalid()

    def test_hetero_machine_cars(self):
        machine = machine_by_name("4c-hetero-fp02")
        for block in all_kernels().values():
            result = CarsScheduler().schedule(block, machine)
            assert result.ok
            validate_schedule(result.schedule).raise_if_invalid()

    def test_ring_consumer_waits_for_worst_case_latency(self):
        """On a 4-cluster ring the modelled copy latency is 2, so a consumer
        one cycle after the copy is flagged."""
        machine = machine_by_name("4c-ring-lat1")
        block = all_kernels()["fig1"]
        result = VirtualClusterScheduler().schedule(block, machine)
        assert result.ok
        for comm in result.schedule.comms:
            for consumer in block.graph.consumers_of(comm.value):
                if result.schedule.clusters[consumer] != comm.src_cluster:
                    assert result.schedule.cycles[consumer] >= comm.cycle + 2


class TestRegisterFileConstraint:
    def test_generous_constraint_passes(self):
        machine = machine_by_name("2c-bus1-r32")
        result = VirtualClusterScheduler().schedule(all_kernels()["dot"], machine)
        assert result.ok
        assert validate_schedule(result.schedule).ok

    def test_oversubscribed_register_file_detected(self):
        base = machine_by_name("2c-bus1-r32")
        tight = ClusteredMachine(
            name="2c-r1",
            clusters=tuple(
                ClusterConfig(fu_counts=c.fu_counts, issue_width=c.issue_width, n_registers=1)
                for c in base.clusters
            ),
            bus=base.bus,
        )
        block = all_kernels()["dot"]
        result = VirtualClusterScheduler().schedule(block, base)
        schedule = result.schedule
        constrained = Schedule(
            block=block,
            machine=tight,
            cycles=schedule.cycles,
            clusters=schedule.clusters,
            comms=list(schedule.comms),
        )
        report = validate_schedule(constrained)
        assert any("register" in error for error in report.errors)

    def test_unconstrained_machines_skip_the_check(self):
        machine = paper_configurations()[0]
        block = all_kernels()["dot"]
        result = VirtualClusterScheduler().schedule(block, machine)
        assert validate_schedule(result.schedule).ok

    def test_copy_delivered_value_counts_in_destination(self):
        """A communicated value occupies a register in the destination
        cluster from arrival to last use."""
        machine = machine_by_name("2c-bus1-r32")
        block = all_kernels()["fig1"]
        result = VirtualClusterScheduler().schedule(block, machine)
        if not result.schedule.comms:
            pytest.skip("schedule placed everything in one cluster")
        from repro.scheduler.correctness import _peak_live_values

        peaks = _peak_live_values(result.schedule)
        assert all(peak >= 0 for peak in peaks.values())
        comm = result.schedule.comms[0]
        assert comm.dst_cluster is None or peaks[comm.dst_cluster] >= 1


# --------------------------------------------------------------------------- #
# workload families
# --------------------------------------------------------------------------- #
class TestWorkloadFamilies:
    def test_registry_names_unique(self):
        names = workload_family_names()
        assert len(names) == len(set(names))

    def test_every_family_builds_deterministically(self):
        for family in workload_families():
            first = family.build(1)
            second = family.build(1)
            assert [b.name for w in first for b in w.blocks] == [
                b.name for w in second for b in w.blocks
            ], family.name

    def test_parametric_families_have_the_advertised_character(self):
        membound = workload_family("membound")
        assert all(p.generator.mem_fraction >= 0.5 for p in membound.profiles)
        longchain = workload_family("longchain")
        assert all(p.generator.ilp <= 1.2 for p in longchain.profiles)
        exitdense = workload_family("exitdense")
        assert all(p.generator.exit_every <= 3 for p in exitdense.profiles)

    def test_kernel_family_fixed_blocks(self):
        workloads = build_family("kernels")
        assert len(workloads) == 1
        assert [b.name for b in workloads[0].blocks] == [b.name for b in all_kernels().values()]

    def test_unknown_family_raises_with_known_names(self):
        with pytest.raises(KeyError, match="ilp-sweep"):
            workload_family("desktop")


# --------------------------------------------------------------------------- #
# the matrix driver
# --------------------------------------------------------------------------- #
class TestScenarioMatrix:
    def test_cells_cover_the_cross_product(self):
        cells, records = run_scenario_matrix(
            ["p2p"], ["exitdense", "kernels"], backends=("vcs",), blocks_per_benchmark=1
        )
        keys = {(c.machine, c.workload_family, c.backend) for c in cells}
        machines = {spec.name for spec in machine_family("p2p").specs}
        assert keys == {(m, wf, "vcs") for m in machines for wf in ("exitdense", "kernels")}
        assert all(c.schedule_digest for c in cells)
        assert all(c.n_blocks > 0 for c in cells)

    def test_parallel_matches_serial(self):
        serial, _ = run_scenario_matrix(
            ["ring"],
            ["kernels"],
            backends=("cars", "vcs"),
            blocks_per_benchmark=2,
            runner=BatchScheduler(jobs=1),
        )
        parallel, _ = run_scenario_matrix(
            ["ring"],
            ["kernels"],
            backends=("cars", "vcs"),
            blocks_per_benchmark=2,
            runner=BatchScheduler(jobs=2, chunk_size=1),
        )
        assert [c.as_row() for c in serial] == [c.as_row() for c in parallel]

    def test_overlapping_workload_families_rejected(self):
        with pytest.raises(ValueError, match="non-overlapping"):
            run_scenario_matrix(["paper"], ["paper", "specint"], blocks_per_benchmark=1)

    def test_shared_machine_names_deduplicated(self):
        # cluster-sweep and bus-sweep both contain 4c-bus1-lat1.
        cells, _ = run_scenario_matrix(
            ["cluster-sweep", "bus-sweep"],
            ["kernels"],
            backends=("cars",),
            blocks_per_benchmark=1,
        )
        machines = [c.machine for c in cells]
        assert len(machines) == len(set(machines))


# --------------------------------------------------------------------------- #
# CLI surface
# --------------------------------------------------------------------------- #
class TestScenarioCli:
    @staticmethod
    def _run(*argv):
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        return subprocess.run(
            [sys.executable, os.path.join(REPO_ROOT, "scripts", "run_suite.py"), *argv],
            capture_output=True,
            text=True,
            env=env,
            cwd=REPO_ROOT,
        )

    def test_list_machine_families(self):
        proc = self._run("--list-machine-families")
        assert proc.returncode == 0
        for name in ("paper", "ring", "p2p", "bus-sweep"):
            assert name in proc.stdout

    def test_list_workload_families(self):
        proc = self._run("--list-workload-families")
        assert proc.returncode == 0
        for name in ("ilp-sweep", "membound", "exitdense", "kernels"):
            assert name in proc.stdout

    def test_list_machines_covers_every_family(self):
        proc = self._run("--list-machines")
        assert proc.returncode == 0
        for name in ("2clust 1b 1lat", "4c-ring-lat1", "2c-p2p-lat1"):
            assert name in proc.stdout

    def test_unknown_machine_family_exits_nonzero(self):
        proc = self._run("--experiment", "matrix", "--machine-family", "nope")
        assert proc.returncode != 0
        assert "unknown machine family" in proc.stderr

    def test_unknown_workload_family_exits_nonzero(self):
        proc = self._run("--experiment", "matrix", "--workload-family", "nope")
        assert proc.returncode != 0
        assert "unknown workload family" in proc.stderr

    def test_matrix_experiment_runs(self, tmp_path):
        out = tmp_path / "matrix.json"
        proc = self._run(
            "--experiment",
            "matrix",
            "--machine-family",
            "p2p",
            "--workload-family",
            "kernels",
            "--blocks",
            "1",
            "--quiet",
            "--output",
            str(out),
        )
        assert proc.returncode == 0, proc.stderr
        import json

        results = json.loads(out.read_text())["results"]
        # Matrix-only runs do not generate (or list) the figure suite.
        assert results["workload"]["benchmarks"] == []
        assert results["matrix"]["workload_families"] == ["kernels"]
        assert len(results["matrix"]["cells"]) == 6

    def test_no_cache_and_cache_dir_conflict(self):
        proc = self._run("--no-cache", "--cache-dir", "/tmp/x")
        assert proc.returncode != 0
        assert "mutually exclusive" in proc.stderr
        assert "--no-cache" in proc.stderr and "--cache-dir" in proc.stderr

    def test_cache_dir_must_be_a_directory(self, tmp_path):
        not_a_dir = tmp_path / "occupied"
        not_a_dir.write_text("file, not a directory")
        proc = self._run("--cache-dir", str(not_a_dir))
        assert proc.returncode != 0
        assert "not a directory" in proc.stderr
        assert str(not_a_dir) in proc.stderr

    def _matrix_args(self, out, *extra):
        return (
            "--experiment", "matrix",
            "--machine-family", "p2p",
            "--workload-family", "kernels",
            "--blocks", "1",
            "--quiet",
            "--output", str(out),
            *extra,
        )

    def test_cache_dir_serves_warm_rerun_from_cache(self, tmp_path):
        import json

        cache_dir = tmp_path / "cache"
        cold_out, warm_out = tmp_path / "cold.json", tmp_path / "warm.json"
        cold = self._run(*self._matrix_args(cold_out, "--cache-dir", str(cache_dir)))
        warm = self._run(*self._matrix_args(warm_out, "--cache-dir", str(cache_dir)))
        assert cold.returncode == 0, cold.stderr
        assert warm.returncode == 0, warm.stderr
        cold_report = json.loads(cold_out.read_text())
        warm_report = json.loads(warm_out.read_text())
        assert cold_report["meta"]["cache"]["dir"] == str(cache_dir)
        assert cold_report["meta"]["cache"]["hits"] == 0
        warm_cache = warm_report["meta"]["cache"]
        assert warm_cache["misses"] == 0 and warm_cache["hits"] == warm_cache["lookups"] > 0
        # The warm run recomputed nothing yet reports identical cells.
        assert warm_report["results"]["matrix"] == cold_report["results"]["matrix"]

    def test_no_cache_disables_caching(self, tmp_path):
        import json

        out = tmp_path / "nocache.json"
        proc = self._run(*self._matrix_args(out, "--no-cache"))
        assert proc.returncode == 0, proc.stderr
        cache_meta = json.loads(out.read_text())["meta"]["cache"]
        assert cache_meta["enabled"] is False
        assert cache_meta["dir"] is None
        assert cache_meta["lookups"] == 0


class TestScheduledCommLatency:
    def test_comm_occupies_its_window(self):
        comm = ScheduledComm(value="v", producer=0, cycle=3, src_cluster=0)
        assert comm.occupies(3, occupancy=2)
        assert comm.occupies(4, occupancy=2)
        assert not comm.occupies(5, occupancy=2)
