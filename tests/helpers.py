"""Shared test fixtures: small hand-built superblocks and machines."""

from __future__ import annotations

from repro.ir import OpClass, SuperblockBuilder
from repro.ir.superblock import Superblock


def linear_chain_block(length: int = 4, latency: int = 2, name: str = "chain") -> Superblock:
    """op0 -> op1 -> ... -> exit, a single dependence chain."""
    builder = SuperblockBuilder(name)
    previous = None
    for i in range(length):
        value = f"v{i}"
        srcs = [previous] if previous is not None else []
        builder.add_op("add", OpClass.INT, dests=[value], srcs=srcs, latency=latency)
        previous = value
    builder.add_exit(probability=1.0, srcs=[previous], latency=1)
    return builder.build(execution_count=10)


def wide_block(width: int = 4, latency: int = 1, name: str = "wide") -> Superblock:
    """*width* independent operations feeding one reduction and an exit."""
    builder = SuperblockBuilder(name)
    produced = []
    for i in range(width):
        value = f"v{i}"
        builder.add_op("add", OpClass.INT, dests=[value], srcs=[f"in{i}"], latency=latency)
        produced.append(value)
    builder.add_op("add", OpClass.INT, dests=["sum"], srcs=produced[:2], latency=latency)
    builder.add_exit(probability=1.0, srcs=["sum"], latency=1)
    return builder.build(execution_count=5)


def two_exit_block(name: str = "twoexit") -> Superblock:
    """A block with an early (0.4) and a final (0.6) exit."""
    builder = SuperblockBuilder(name)
    builder.add_op("load", OpClass.MEM, dests=["a"], srcs=["p"], latency=2)
    builder.add_op("add", OpClass.INT, dests=["b"], srcs=["a"], latency=1)
    builder.add_exit(probability=0.4, srcs=["b"], latency=1)
    builder.add_op("mul", OpClass.INT, dests=["c"], srcs=["b"], latency=2, speculative=False)
    builder.add_op("sub", OpClass.INT, dests=["d"], srcs=["c"], latency=1)
    builder.add_exit(probability=0.6, srcs=["d"], latency=1)
    return builder.build(execution_count=20)
