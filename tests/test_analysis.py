"""Tests for metrics, compile-effort statistics, reports and experiments."""

import pytest

from repro.analysis import (
    EffortThresholds,
    collect_effort,
    compare_block,
    evaluate_benchmark,
    format_compile_time_table,
    format_speedup_series,
    geometric_mean,
)
from repro.analysis.compile_time import fraction_within
from repro.analysis.experiments import (
    run_compile_time_experiment,
    run_cross_input_experiment,
    run_speedup_experiment,
    run_workload,
)
from repro.analysis.metrics import BlockComparison, evaluated_awct, speedup
from repro.analysis.report import format_table
from repro.machine import paper_2c_8i_1lat
from repro.scheduler import CarsScheduler, VirtualClusterScheduler
from repro.workloads import build_benchmark, profile_by_name, train_variant


@pytest.fixture(scope="module")
def small_workload():
    return build_benchmark(profile_by_name("130.li").scaled(3))


@pytest.fixture(scope="module")
def small_record(small_workload):
    return run_workload(small_workload, paper_2c_8i_1lat(), work_budget=30_000)


class TestMetrics:
    def test_speedup_and_geomean(self):
        assert speedup(110.0, 100.0) == pytest.approx(1.1)
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([])
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            speedup(10.0, 0.0)

    def test_block_comparison_properties(self):
        comparison = BlockComparison(
            block_name="b",
            execution_count=10,
            baseline_awct=12.0,
            proposed_awct=10.0,
            baseline_work=5,
            proposed_work=50,
        )
        assert comparison.baseline_cycles == pytest.approx(120.0)
        assert comparison.proposed_cycles == pytest.approx(100.0)
        assert comparison.speedup == pytest.approx(1.2)

    def test_compare_block_from_results(self, small_workload):
        block = small_workload.blocks[0]
        machine = paper_2c_8i_1lat()
        cars = CarsScheduler().schedule(block, machine)
        vcs = VirtualClusterScheduler().schedule(block, machine)
        comparison = compare_block(cars, vcs)
        assert comparison.block_name == block.name
        assert comparison.speedup >= 1.0 - 1e-9 or comparison.proposed_fallback

    def test_compare_block_rejects_mismatched_blocks(self, small_workload):
        machine = paper_2c_8i_1lat()
        first = CarsScheduler().schedule(small_workload.blocks[0], machine)
        second = CarsScheduler().schedule(small_workload.blocks[1], machine)
        with pytest.raises(ValueError):
            compare_block(first, second)

    def test_evaluated_awct_with_other_profile(self, small_workload):
        block = small_workload.blocks[0]
        machine = paper_2c_8i_1lat()
        result = CarsScheduler().schedule(block, machine)
        same = evaluated_awct(result.schedule)
        other_profile = train_variant(small_workload).blocks[0]
        other = evaluated_awct(result.schedule, other_profile)
        assert same == pytest.approx(result.awct)
        assert other > 0

    def test_benchmark_aggregation(self):
        rows = [
            BlockComparison("a", 10, 10.0, 8.0, 1, 2),
            BlockComparison("b", 5, 6.0, 6.0, 1, 2, proposed_fallback=True),
        ]
        agg = evaluate_benchmark("bench", "specint", "m", rows)
        assert agg.n_blocks == 2
        assert agg.baseline_cycles == pytest.approx(130.0)
        assert agg.proposed_cycles == pytest.approx(110.0)
        assert agg.speedup == pytest.approx(130.0 / 110.0)
        assert agg.fallback_fraction == pytest.approx(0.5)


class TestCompileEffort:
    def test_thresholds(self):
        thresholds = EffortThresholds(small=10, medium=100, large=1000)
        assert thresholds.as_tuple() == (10, 100, 1000)
        assert len(thresholds.labels) == 3

    def test_collect_and_fractions(self, small_record):
        stats = collect_effort("VCS", "2clust", small_record.proposed_results)
        assert stats.n_blocks == 3
        assert 0.0 <= stats.fraction_within(1) <= 1.0
        assert stats.fraction_within(10**9) == 1.0
        fracs = stats.fractions(EffortThresholds())
        assert set(fracs) == set(EffortThresholds().labels)
        assert stats.total_work == sum(stats.work_per_block)

    def test_fraction_within_helper(self, small_record):
        assert fraction_within(small_record.baseline_results, 10**9) == 1.0

    def test_empty_stats(self):
        stats = collect_effort("X", "m", [])
        assert stats.fraction_within(10) == 1.0
        assert stats.n_blocks == 0


class TestReports:
    def test_format_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2], [333, 4]])
        lines = text.splitlines()
        assert len(lines) == 4
        assert "a" in lines[0] and "bb" in lines[0]

    def test_format_speedup_series_includes_means(self, small_record):
        comparison = small_record.comparison()
        text = format_speedup_series([comparison])
        assert "130.li" in text
        assert "Spec Mean" in text
        assert "Mean" in text

    def test_format_compile_time_table(self, small_record):
        cars_stats, vcs_stats = small_record.effort()
        text = format_compile_time_table([cars_stats, vcs_stats], EffortThresholds())
        assert "CARS" in text and "VCS" in text
        assert "1s-equiv" in text


class TestExperimentRunners:
    def test_run_workload_record(self, small_record, small_workload):
        assert len(small_record.baseline_results) == small_workload.n_blocks
        assert len(small_record.proposed_results) == small_workload.n_blocks
        comparison = small_record.comparison()
        assert comparison.name == "130.li"
        assert comparison.speedup >= 0.99

    def test_speedup_experiment_shape(self, small_workload):
        grouped = run_speedup_experiment(
            [small_workload], [paper_2c_8i_1lat()], work_budget=20_000
        )
        assert set(grouped) == {"2clust 1b 1lat"}
        assert len(grouped["2clust 1b 1lat"]) == 1

    def test_compile_time_experiment_shape(self, small_workload):
        stats = run_compile_time_experiment(
            [small_workload], [paper_2c_8i_1lat()], EffortThresholds(large=20_000)
        )
        assert len(stats) == 2  # CARS + VCS for the single machine
        assert {s.scheduler for s in stats} == {"CARS", "VCS"}

    def test_cross_input_experiment_shape(self, small_workload):
        grouped = run_cross_input_experiment(
            [small_workload], [paper_2c_8i_1lat()], work_budget=20_000
        )
        rows = grouped["2clust 1b 1lat"]
        assert len(rows) == 1
        assert rows[0].n_blocks == small_workload.n_blocks
