"""Tests of the top-level public API surface."""

import repro


class TestPublicApi:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_docstring_example(self):
        block = repro.paper_figure1_block()
        machine = repro.example_2cluster()
        proposed = repro.VirtualClusterScheduler().schedule(block, machine)
        baseline = repro.CarsScheduler().schedule(block, machine)
        assert proposed.awct <= baseline.awct

    def test_paper_configurations_exposed(self):
        machines = repro.paper_configurations()
        assert [m.n_clusters for m in machines] == [2, 4, 4]

    def test_suite_helpers_exposed(self):
        assert len(repro.all_profiles()) == 14
        workload = repro.build_benchmark(repro.profile_by_name("rasta").scaled(1))
        assert workload.n_blocks == 1
