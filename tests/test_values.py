"""Unit tests for repro.ir.values."""

from repro.ir.values import ValueNamer


class TestValueNamer:
    def test_fresh_names_are_unique(self):
        namer = ValueNamer()
        names = [namer.fresh() for _ in range(100)]
        assert len(set(names)) == 100

    def test_prefix_override(self):
        namer = ValueNamer()
        assert namer.fresh("addr").startswith("addr")

    def test_default_prefix(self):
        namer = ValueNamer(prefix="t")
        assert namer.fresh().startswith("t")

    def test_membership_and_len(self):
        namer = ValueNamer()
        name = namer.fresh()
        assert name in namer
        assert "unissued" not in namer
        assert len(namer) == 1

    def test_fresh_many(self):
        namer = ValueNamer()
        names = list(namer.fresh_many(5))
        assert len(names) == 5
        assert len(namer.issued) == 5

    def test_issued_returns_copy(self):
        namer = ValueNamer()
        namer.fresh()
        issued = namer.issued
        issued.add("bogus")
        assert "bogus" not in namer
