"""Unit tests for the machine model."""

import pytest

from repro.ir.operation import OpClass, Operation
from repro.machine import (
    BusConfig,
    ClusterConfig,
    ClusteredMachine,
    FuKind,
    example_1cluster_fig4,
    example_2cluster,
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
    paper_configurations,
    unified,
)
from repro.machine.resources import fu_kind_for


class TestResources:
    def test_fu_kind_mapping(self):
        assert fu_kind_for(OpClass.INT) is FuKind.INT
        assert fu_kind_for(OpClass.BRANCH) is FuKind.BRANCH
        assert fu_kind_for(OpClass.COPY) is None


class TestClusterConfig:
    def test_uniform(self):
        cluster = ClusterConfig.uniform(count_per_kind=2)
        assert cluster.fu_count(FuKind.INT) == 2
        assert cluster.total_fus == 8
        assert cluster.issue_width == 8

    def test_explicit_issue_width(self):
        cluster = ClusterConfig({FuKind.INT: 1, FuKind.BRANCH: 1}, issue_width=2)
        assert cluster.issue_width == 2
        assert cluster.supports(FuKind.INT)
        assert not cluster.supports(FuKind.FP)

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig({FuKind.INT: -1})

    def test_empty_cluster_rejected(self):
        with pytest.raises(ValueError):
            ClusterConfig({})


class TestBusConfig:
    def test_occupancy_pipelined(self):
        assert BusConfig(count=1, latency=2, pipelined=True).occupancy == 1

    def test_occupancy_non_pipelined(self):
        assert BusConfig(count=1, latency=2, pipelined=False).occupancy == 2

    def test_invalid_latency(self):
        with pytest.raises(ValueError):
            BusConfig(latency=0)

    def test_invalid_count(self):
        with pytest.raises(ValueError):
            BusConfig(count=-1)


class TestClusteredMachine:
    def test_paper_2c(self):
        machine = paper_2c_8i_1lat()
        assert machine.n_clusters == 2
        assert machine.total_issue_width == 8
        assert machine.is_clustered
        assert machine.is_homogeneous
        assert machine.copy_latency == 1

    def test_paper_4c_configs(self):
        one = paper_4c_16i_1lat()
        two = paper_4c_16i_2lat()
        assert one.n_clusters == two.n_clusters == 4
        assert one.total_issue_width == two.total_issue_width == 16
        assert one.bus.latency == 1 and two.bus.latency == 2
        assert one.bus.pipelined and not two.bus.pipelined

    def test_paper_configurations_order(self):
        names = [m.name for m in paper_configurations()]
        assert names == ["2clust 1b 1lat", "4clust 1b 1lat", "4clust 1b 2lat"]

    def test_example_machines(self):
        two = example_2cluster()
        assert two.cluster_capacity(0, OpClass.INT) == 1
        assert two.cluster_capacity(0, OpClass.FP) == 0
        one = example_1cluster_fig4()
        assert one.per_cycle_capacity(OpClass.INT) == 2
        assert one.per_cycle_capacity(OpClass.BRANCH) == 1
        assert not one.is_clustered

    def test_unified(self):
        machine = unified(issue_width=6, fus_per_kind=2)
        assert machine.n_clusters == 1
        assert machine.total_issue_width == 6

    def test_per_cycle_capacity_copy_is_bus_count(self):
        machine = paper_2c_8i_1lat()
        assert machine.per_cycle_capacity(OpClass.COPY) == 1

    def test_can_execute(self):
        machine = example_2cluster()
        int_op = Operation(0, "add", OpClass.INT, latency=1)
        fp_op = Operation(1, "fadd", OpClass.FP, latency=3)
        assert machine.can_execute(0, int_op)
        assert not machine.can_execute(0, fp_op)

    def test_machine_needs_clusters(self):
        with pytest.raises(ValueError):
            ClusteredMachine(name="none", clusters=())

    def test_resource_length_lower_bound(self):
        machine = example_2cluster()  # 1 INT + 1 BRANCH per cluster
        ops = [Operation(i, "add", OpClass.INT, latency=1) for i in range(5)]
        # 5 INT ops on 2 INT units -> at least 3 cycles.
        assert machine.resource_length_lower_bound(ops) == 3

    def test_resource_length_lower_bound_empty(self):
        assert paper_2c_8i_1lat().resource_length_lower_bound([]) == 0

    def test_resource_lower_bound_unsupported_class(self):
        machine = example_2cluster()
        fp_ops = [Operation(0, "fadd", OpClass.FP, latency=3)]
        with pytest.raises(ValueError):
            machine.resource_length_lower_bound(fp_ops)

    def test_fu_count_lookup(self):
        machine = paper_4c_16i_1lat()
        for cluster in machine.cluster_ids:
            for op_class in (OpClass.INT, OpClass.FP, OpClass.MEM, OpClass.BRANCH):
                assert machine.fu_count(cluster, op_class) == 1
        assert machine.total_fu_count(OpClass.INT) == 4
