"""Unit tests for SuperblockBuilder, Superblock and validation."""

import pytest

from repro.ir import (
    DepKind,
    OpClass,
    SuperblockBuilder,
    ValidationError,
    validate_superblock,
)
from repro.workloads import paper_figure1_block

from tests.helpers import linear_chain_block, two_exit_block, wide_block


class TestBuilderDependences:
    def test_flow_dependence_created(self):
        b = SuperblockBuilder("t")
        p = b.add_op("add", OpClass.INT, dests=["x"])
        c = b.add_op("add", OpClass.INT, dests=["y"], srcs=["x"])
        edge = b.graph.edge(p, c)
        assert edge is not None
        assert edge.kind is DepKind.DATA
        assert edge.value == "x"

    def test_live_in_recorded_for_undefined_source(self):
        b = SuperblockBuilder("t")
        b.add_op("add", OpClass.INT, dests=["x"], srcs=["outside"])
        block = b.build()
        assert "outside" in block.live_ins

    def test_anti_dependence_on_redefinition(self):
        b = SuperblockBuilder("t")
        first = b.add_op("add", OpClass.INT, dests=["x"])
        user = b.add_op("add", OpClass.INT, dests=["y"], srcs=["x"])
        second = b.add_op("add", OpClass.INT, dests=["x"])
        assert b.graph.edge(user, second) is not None
        assert b.graph.edge(first, second) is not None

    def test_store_ordering(self):
        b = SuperblockBuilder("t")
        store1 = b.add_op("store", OpClass.MEM, dests=[], srcs=["a"])
        load = b.add_op("load", OpClass.MEM, dests=["x"], srcs=["p"])
        store2 = b.add_op("store", OpClass.MEM, dests=[], srcs=["x"])
        assert b.graph.edge(store1, load) is not None
        assert b.graph.edge(load, store2) is not None
        assert b.graph.edge(store1, store2) is not None

    def test_exits_are_ordered_by_control_edges(self):
        block = two_exit_block()
        exits = block.exit_ids
        assert block.graph.must_precede(exits[0], exits[1])

    def test_non_speculative_op_pinned_below_exit(self):
        b = SuperblockBuilder("t")
        b.add_op("add", OpClass.INT, dests=["x"])
        e = b.add_exit(probability=0.5, srcs=["x"])
        s = b.add_op("store", OpClass.MEM, dests=[], srcs=["x"], speculative=False)
        assert b.graph.edge(e, s) is not None

    def test_speculative_op_not_pinned(self):
        b = SuperblockBuilder("t")
        b.add_op("add", OpClass.INT, dests=["x"])
        e = b.add_exit(probability=0.5, srcs=["x"])
        free = b.add_op("add", OpClass.INT, dests=["y"], srcs=["x"], speculative=True)
        assert b.graph.edge(e, free) is None

    def test_branch_via_add_op_rejected(self):
        b = SuperblockBuilder("t")
        with pytest.raises(ValueError):
            b.add_op("br", OpClass.BRANCH)

    def test_final_exit_added_automatically(self):
        b = SuperblockBuilder("t")
        b.add_op("add", OpClass.INT, dests=["x"])
        b.add_exit(probability=0.25, srcs=["x"])
        block = b.build()
        assert len(block.exits) == 2
        assert abs(block.total_exit_probability - 1.0) < 1e-9

    def test_fresh_value_helper(self):
        b = SuperblockBuilder("t")
        assert b.fresh_value() != b.fresh_value()


class TestSuperblockQueries:
    def test_exit_probability_lookup(self):
        block = two_exit_block()
        first, second = block.exit_ids
        assert block.exit_probability(first) == pytest.approx(0.4)
        assert block.exit_probability(second) == pytest.approx(0.6)

    def test_exit_probability_rejects_non_exit(self):
        block = two_exit_block()
        with pytest.raises(ValueError):
            block.exit_probability(0)

    def test_count_by_class(self):
        block = two_exit_block()
        counts = block.count_by_class()
        assert counts[OpClass.BRANCH] == 2
        assert counts[OpClass.MEM] == 1

    def test_critical_path_length_linear_chain(self):
        block = linear_chain_block(length=3, latency=2)
        # 3 ops of latency 2 chained, then a 1-cycle exit: 2+2+2+1
        assert block.critical_path_length() == 7

    def test_with_exit_probabilities(self):
        block = two_exit_block()
        first, second = block.exit_ids
        variant = block.with_exit_probabilities({first: 0.9, second: 0.1})
        assert variant.exit_probability(first) == pytest.approx(0.9)
        # The original block is untouched.
        assert block.exit_probability(first) == pytest.approx(0.4)
        # Structure preserved.
        assert variant.size == block.size

    def test_with_exit_probabilities_rejects_non_exit(self):
        block = two_exit_block()
        with pytest.raises(ValueError):
            block.with_exit_probabilities({0: 0.5})

    def test_copy_independent(self):
        block = two_exit_block()
        clone = block.copy()
        assert clone.size == block.size
        assert clone.graph is not block.graph


class TestValidation:
    def test_valid_blocks_pass(self):
        for block in (linear_chain_block(), wide_block(), two_exit_block(), paper_figure1_block()):
            validate_superblock(block)

    def test_probability_sum_enforced(self):
        b = SuperblockBuilder("t")
        b.add_op("add", OpClass.INT, dests=["x"])
        b.add_exit(probability=0.3, srcs=["x"])
        block = b.build(final_exit_probability=0.3)  # sums to 0.6
        with pytest.raises(ValidationError):
            validate_superblock(block)

    def test_missing_exit_rejected(self):
        from repro.ir.depgraph import DependenceGraph
        from repro.ir.operation import Operation
        from repro.ir.superblock import Superblock

        g = DependenceGraph()
        g.add_operation(Operation(0, "add", OpClass.INT, latency=1))
        block = Superblock(name="noexit", graph=g)
        with pytest.raises(ValidationError):
            validate_superblock(block)

    def test_empty_block_rejected(self):
        from repro.ir.depgraph import DependenceGraph
        from repro.ir.superblock import Superblock

        with pytest.raises(ValidationError):
            validate_superblock(Superblock(name="empty", graph=DependenceGraph()))

    def test_scheduler_inserted_copies_rejected(self):
        from repro.ir.operation import make_copy

        b = SuperblockBuilder("t")
        b.add_op("add", OpClass.INT, dests=["x"])
        b.add_exit(probability=1.0, srcs=["x"])
        block = b.build()
        block.graph.add_operation(make_copy(99, "x"))
        with pytest.raises(ValidationError):
            validate_superblock(block)
