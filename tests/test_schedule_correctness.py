"""Tests for the Schedule container and the validity checker."""

import pytest

from repro.machine import example_2cluster, paper_2c_8i_1lat, paper_4c_16i_2lat
from repro.scheduler import (
    Schedule,
    ScheduledComm,
    ScheduleError,
    ScheduleResult,
    validate_schedule,
)

from tests.helpers import linear_chain_block, two_exit_block


def _chain_schedule(machine=None):
    """A correct single-cluster schedule of the 3-op chain block."""
    machine = machine or example_2cluster()
    block = linear_chain_block(length=3, latency=2)
    cycles = {0: 0, 1: 2, 2: 4, 3: 6}
    clusters = {op_id: 0 for op_id in cycles}
    return Schedule(block=block, machine=machine, cycles=cycles, clusters=clusters)


class TestScheduleMetrics:
    def test_awct_and_total_cycles(self):
        schedule = _chain_schedule()
        # Exit (op 3, latency 1) at cycle 6 -> AWCT 7; execution count 10.
        assert schedule.awct == pytest.approx(7.0)
        assert schedule.total_cycles == pytest.approx(70.0)

    def test_length(self):
        schedule = _chain_schedule()
        assert schedule.length == 7

    def test_cluster_load(self):
        schedule = _chain_schedule()
        load = schedule.cluster_load()
        assert load[0] == 4
        assert load[1] == 0

    def test_comm_lookup(self):
        schedule = _chain_schedule()
        schedule.comms.append(ScheduledComm(value="v0", producer=0, cycle=2, src_cluster=0))
        assert schedule.comm_for_value("v0").cycle == 2
        assert schedule.comm_for_value("nope") is None
        assert schedule.n_communications == 1

    def test_as_table_mentions_all_cycles(self):
        schedule = _chain_schedule()
        table = schedule.as_table()
        assert "cycle   0" in table and "cycle   6" in table

    def test_scheduled_comm_occupancy(self):
        comm = ScheduledComm(value="v", producer=0, cycle=3, src_cluster=0)
        assert comm.occupies(3, occupancy=2)
        assert comm.occupies(4, occupancy=2)
        assert not comm.occupies(5, occupancy=2)


class TestScheduleResult:
    def test_result_properties(self):
        schedule = _chain_schedule()
        result = ScheduleResult(
            scheduler="test", block=schedule.block, machine=schedule.machine, schedule=schedule
        )
        assert result.ok
        assert result.awct == schedule.awct
        assert result.total_cycles == schedule.total_cycles

    def test_missing_schedule_raises_on_awct(self):
        schedule = _chain_schedule()
        result = ScheduleResult(
            scheduler="test", block=schedule.block, machine=schedule.machine, schedule=None
        )
        assert not result.ok
        with pytest.raises(ValueError):
            _ = result.awct


class TestValidation:
    def test_valid_schedule_passes(self):
        report = validate_schedule(_chain_schedule())
        assert report.ok
        report.raise_if_invalid()

    def test_dependence_violation_detected(self):
        schedule = _chain_schedule()
        schedule.cycles[1] = 1  # producer finishes at 2
        report = validate_schedule(schedule)
        assert not report.ok
        assert any("dependence" in error for error in report.errors)
        with pytest.raises(ScheduleError):
            report.raise_if_invalid()

    def test_missing_cycle_detected(self):
        schedule = _chain_schedule()
        del schedule.cycles[2]
        assert not validate_schedule(schedule).ok

    def test_missing_cluster_detected(self):
        schedule = _chain_schedule()
        del schedule.clusters[2]
        assert not validate_schedule(schedule).ok

    def test_unknown_cluster_detected(self):
        schedule = _chain_schedule()
        schedule.clusters[0] = 7
        assert not validate_schedule(schedule).ok

    def test_cross_cluster_value_needs_copy(self):
        schedule = _chain_schedule()
        schedule.clusters[1] = 1  # consumer of v0 moves to the other cluster
        report = validate_schedule(schedule)
        assert any("without a copy" in error for error in report.errors)

    def test_cross_cluster_value_with_copy_passes(self):
        schedule = _chain_schedule()
        schedule.clusters[1] = 1
        schedule.cycles[1] = 3   # copy of v0 (issued at 2) arrives at 3
        schedule.cycles[2] = 6   # copy of v1 (issued at 5) arrives at 6
        schedule.cycles[3] = 8
        schedule.comms.append(ScheduledComm(value="v0", producer=0, cycle=2, src_cluster=0, dst_cluster=1))
        # v1 now also crosses back from cluster 1 to cluster 0.
        schedule.comms.append(ScheduledComm(value="v1", producer=1, cycle=5, src_cluster=1, dst_cluster=0))
        report = validate_schedule(schedule)
        assert report.ok, report.errors

    def test_copy_before_producer_ready_detected(self):
        schedule = _chain_schedule()
        schedule.clusters[1] = 1
        schedule.comms.append(ScheduledComm(value="v0", producer=0, cycle=0, src_cluster=0, dst_cluster=1))
        report = validate_schedule(schedule)
        assert any("before the" in error for error in report.errors)

    def test_copy_from_wrong_cluster_detected(self):
        schedule = _chain_schedule()
        schedule.clusters[1] = 1
        schedule.cycles[1] = 3
        schedule.comms.append(ScheduledComm(value="v0", producer=0, cycle=2, src_cluster=1, dst_cluster=1))
        report = validate_schedule(schedule)
        assert any("reads from cluster" in error for error in report.errors)

    def test_fu_oversubscription_detected(self):
        block = two_exit_block()
        machine = example_2cluster()
        # All operations in cluster 0, cycle 0: the single INT/MEM units overflow.
        cycles = {op.op_id: 0 for op in block.operations}
        clusters = {op.op_id: 0 for op in block.operations}
        report = validate_schedule(Schedule(block=block, machine=machine, cycles=cycles, clusters=clusters))
        assert not report.ok

    def test_bus_oversubscription_detected(self):
        schedule = _chain_schedule(paper_4c_16i_2lat())
        schedule.comms.append(ScheduledComm(value="x", producer=0, cycle=2, src_cluster=0))
        schedule.comms.append(ScheduledComm(value="y", producer=0, cycle=3, src_cluster=0))
        report = validate_schedule(schedule)
        assert any("channel" in error for error in report.errors)

    def test_pipelined_bus_allows_back_to_back_copies(self):
        schedule = _chain_schedule(paper_2c_8i_1lat())
        schedule.comms.append(ScheduledComm(value="x", producer=0, cycle=2, src_cluster=0))
        schedule.comms.append(ScheduledComm(value="y", producer=0, cycle=3, src_cluster=0))
        assert not any("channel" in e for e in validate_schedule(schedule).errors)

    def test_negative_cycle_detected(self):
        schedule = _chain_schedule()
        schedule.cycles[0] = -1
        assert not validate_schedule(schedule).ok
