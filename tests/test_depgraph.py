"""Unit tests for repro.ir.depgraph."""

import pytest

from repro.ir.depgraph import DepKind, DependenceGraph
from repro.ir.operation import OpClass, Operation


def _op(op_id, latency=2, op_class=OpClass.INT, dests=(), srcs=()):
    return Operation(op_id, "add", op_class, latency=latency, dests=tuple(dests), srcs=tuple(srcs))


def _diamond():
    """0 -> 1, 0 -> 2, 1 -> 3, 2 -> 3."""
    g = DependenceGraph()
    for i in range(4):
        g.add_operation(_op(i, dests=[f"v{i}"]))
    g.add_edge(0, 1, DepKind.DATA, value="v0")
    g.add_edge(0, 2, DepKind.DATA, value="v0")
    g.add_edge(1, 3, DepKind.DATA, value="v1")
    g.add_edge(2, 3, DepKind.DATA, value="v2")
    return g


class TestConstruction:
    def test_duplicate_operation_rejected(self):
        g = DependenceGraph()
        g.add_operation(_op(0))
        with pytest.raises(ValueError):
            g.add_operation(_op(0))

    def test_edge_to_unknown_operation_rejected(self):
        g = DependenceGraph()
        g.add_operation(_op(0))
        with pytest.raises(KeyError):
            g.add_edge(0, 1)

    def test_self_edge_rejected(self):
        g = DependenceGraph()
        g.add_operation(_op(0))
        with pytest.raises(ValueError):
            g.add_edge(0, 0)

    def test_default_latency_is_source_latency_for_data(self):
        g = DependenceGraph()
        g.add_operation(_op(0, latency=3))
        g.add_operation(_op(1))
        edge = g.add_edge(0, 1, DepKind.DATA)
        assert edge.latency == 3

    def test_default_latency_zero_for_control(self):
        g = DependenceGraph()
        g.add_operation(_op(0, latency=3))
        g.add_operation(_op(1))
        edge = g.add_edge(0, 1, DepKind.CONTROL)
        assert edge.latency == 0

    def test_parallel_edge_keeps_max_latency(self):
        g = DependenceGraph()
        g.add_operation(_op(0, latency=1))
        g.add_operation(_op(1))
        g.add_edge(0, 1, DepKind.ANTI, latency=0)
        g.add_edge(0, 1, DepKind.DATA, latency=3, value="v0")
        edge = g.edge(0, 1)
        assert edge.latency == 3
        assert edge.kind is DepKind.DATA

    def test_negative_latency_rejected(self):
        g = DependenceGraph()
        g.add_operation(_op(0))
        g.add_operation(_op(1))
        with pytest.raises(ValueError):
            g.add_edge(0, 1, latency=-1)


class TestQueries:
    def test_topological_order_respects_edges(self):
        g = _diamond()
        order = g.topological_order()
        assert order.index(0) < order.index(1) < order.index(3)
        assert order.index(0) < order.index(2) < order.index(3)

    def test_must_precede_transitive(self):
        g = _diamond()
        assert g.must_precede(0, 3)
        assert not g.must_precede(3, 0)
        assert not g.must_precede(1, 2)

    def test_are_ordered(self):
        g = _diamond()
        assert g.are_ordered(0, 3)
        assert g.are_ordered(3, 0)
        assert not g.are_ordered(1, 2)

    def test_min_distance_longest_path(self):
        g = _diamond()
        # 0 -> 1 -> 3 has latency 2 + 2.
        assert g.min_distance(0, 3) == 4
        assert g.min_distance(1, 2) is None

    def test_predecessors_successors(self):
        g = _diamond()
        assert {e.src for e in g.predecessors(3)} == {1, 2}
        assert {e.dst for e in g.successors(0)} == {1, 2}

    def test_register_edges(self):
        g = _diamond()
        assert len(g.register_edges()) == 4

    def test_producer_and_consumers(self):
        g = _diamond()
        assert g.producer_of("v0") == 0
        assert g.consumers_of("v0") == [1, 2]
        assert g.producer_of("nope") is None

    def test_is_acyclic(self):
        g = _diamond()
        assert g.is_acyclic()

    def test_copy_is_independent(self):
        g = _diamond()
        clone = g.copy()
        clone.add_operation(_op(99))
        assert 99 in clone
        assert 99 not in g
        assert len(list(clone.edges())) == len(list(g.edges()))

    def test_len_and_contains(self):
        g = _diamond()
        assert len(g) == 4
        assert 2 in g and 7 not in g

    def test_as_networkx_is_a_copy(self):
        g = _diamond()
        nxg = g.as_networkx()
        nxg.add_node(1234)
        assert 1234 not in g
