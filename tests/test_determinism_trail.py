"""Determinism: trail-based in-place probing must not change any schedule.

``VcsConfig.use_trail`` switches the scheduler between trail-based
apply-then-undo probing and the legacy copy-per-candidate probing.  Both
modes follow the same decision sequence by construction; these tests assert
the strongest observable form of that claim — byte-identical schedules
(cycles, cluster assignment, communications), identical deterministic work
counts and identical AWCT-target trajectories — on the paper's worked
example, the hand-written kernels and a seeded synthetic suite.
"""

import pytest

from repro.machine import (
    example_2cluster,
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
)
from repro.scheduler import VcsConfig, VirtualClusterScheduler
from repro.workloads import (
    dct_butterfly_kernel,
    dot_product_kernel,
    fir_kernel,
    paper_figure1_block,
    string_search_kernel,
)
from repro.workloads.synth import GeneratorConfig, SuperblockGenerator

MACHINES = [paper_2c_8i_1lat(), paper_4c_16i_1lat(), paper_4c_16i_2lat()]

KERNELS = [
    paper_figure1_block(),
    fir_kernel(taps=3),
    dot_product_kernel(width=3),
    dct_butterfly_kernel(),
    string_search_kernel(),
]


def fingerprint(result):
    """Everything observable about a scheduling run, order-normalised."""
    schedule = result.schedule
    if schedule is None:
        body = None
    else:
        body = (
            sorted(schedule.cycles.items()),
            sorted(schedule.clusters.items()),
            [
                (c.value, c.producer, c.cycle, c.src_cluster, c.dst_cluster)
                for c in schedule.comms
            ],
        )
    return (result.work, result.awct_target_steps, result.fallback_used, body)


def run_both(block, machine, **config_kwargs):
    trail = VirtualClusterScheduler(
        VcsConfig(use_trail=True, **config_kwargs)
    ).schedule(block, machine)
    copy = VirtualClusterScheduler(
        VcsConfig(use_trail=False, **config_kwargs)
    ).schedule(block, machine)
    return trail, copy


class TestPaperExample:
    def test_paper_example_identical(self):
        trail, copy = run_both(paper_figure1_block(), example_2cluster())
        assert fingerprint(trail) == fingerprint(copy)
        assert trail.awct == pytest.approx(9.4, abs=1e-6)
        # The trail run never copied a state; the copy run never probed one.
        assert trail.stats["copies"] == 0 and trail.stats["probes"] > 0
        assert copy.stats["probes"] == 0 and copy.stats["copies"] > 0
        assert trail.stats["copies_avoided"] >= copy.stats["copies"]


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("block", KERNELS, ids=lambda b: b.name)
class TestKernelsIdentical:
    def test_schedules_byte_identical(self, block, machine):
        trail, copy = run_both(block, machine)
        assert fingerprint(trail) == fingerprint(copy)


class TestSyntheticSuiteIdentical:
    def test_seeded_synthetic_blocks(self):
        gen = SuperblockGenerator(GeneratorConfig(min_ops=10, max_ops=26), seed=20)
        blocks = gen.generate_many("determinism", 4)
        machine = paper_2c_8i_1lat()
        for block in blocks:
            trail, copy = run_both(block, machine)
            assert fingerprint(trail) == fingerprint(copy), block.name

    def test_ablation_configs_identical(self):
        """The equivalence holds for the ablation configurations too."""
        block = paper_figure1_block()
        machine = paper_2c_8i_1lat()
        for kwargs in (
            {"enable_plc": False},
            {"eager_mapping": True},
            {"use_matching": False},
            {"stage1_slack_limit": 0.0},
        ):
            trail, copy = run_both(block, machine, **kwargs)
            assert fingerprint(trail) == fingerprint(copy), kwargs

    def test_budget_exhaustion_identical(self):
        """Work accounting matches exactly, so both modes exhaust a budget
        at the same point and fall back identically."""
        block = string_search_kernel()
        machine = paper_4c_16i_1lat()
        for budget in (10, 200, 2000):
            trail, copy = run_both(block, machine, work_budget=budget)
            assert fingerprint(trail) == fingerprint(copy), budget
            assert trail.timed_out == copy.timed_out

    def test_trail_mode_repeatable(self):
        """Two trail runs of the same input are identical (no hidden state)."""
        block = dct_butterfly_kernel()
        machine = paper_4c_16i_2lat()
        first = VirtualClusterScheduler(VcsConfig(use_trail=True)).schedule(block, machine)
        second = VirtualClusterScheduler(VcsConfig(use_trail=True)).schedule(block, machine)
        assert fingerprint(first) == fingerprint(second)
