"""Tests for the proposed virtual cluster scheduler."""

import pytest

from repro.bounds import min_awct
from repro.machine import (
    example_2cluster,
    paper_2c_8i_1lat,
    paper_4c_16i_1lat,
    paper_4c_16i_2lat,
    unified,
)
from repro.scheduler import CarsScheduler, VcsConfig, VirtualClusterScheduler, validate_schedule
from repro.workloads import (
    dct_butterfly_kernel,
    dot_product_kernel,
    fir_kernel,
    paper_figure1_block,
    string_search_kernel,
)

from tests.helpers import linear_chain_block

# See test_cars.py: the reduced example machine cannot execute memory or
# floating-point operations, so the kernel sweep uses the paper machines.
MACHINES = [
    paper_2c_8i_1lat(),
    paper_4c_16i_1lat(),
    paper_4c_16i_2lat(),
]

KERNELS = [
    paper_figure1_block(),
    fir_kernel(taps=3),
    dot_product_kernel(width=3),
    dct_butterfly_kernel(),
    string_search_kernel(),
]


class TestVcsBasics:
    def test_result_metadata(self):
        result = VirtualClusterScheduler().schedule(paper_figure1_block(), example_2cluster())
        assert result.scheduler == "VCS"
        assert result.ok
        assert result.work > 0
        assert result.awct_target_steps >= 1

    def test_schedules_every_operation(self):
        block = paper_figure1_block()
        result = VirtualClusterScheduler().schedule(block, paper_2c_8i_1lat())
        assert set(result.schedule.cycles) == set(block.op_ids)

    def test_respects_awct_lower_bound(self):
        for block in KERNELS:
            for machine in MACHINES:
                result = VirtualClusterScheduler().schedule(block, machine)
                assert result.awct >= min_awct(block, machine) - 1e-9

    def test_chain_block_is_trivially_optimal(self):
        block = linear_chain_block(length=4, latency=2)
        result = VirtualClusterScheduler().schedule(block, paper_4c_16i_1lat())
        assert result.awct == pytest.approx(min_awct(block))
        assert result.schedule.n_communications == 0
        assert not result.fallback_used

    def test_single_cluster_machine(self):
        block = dot_product_kernel(width=3)
        result = VirtualClusterScheduler().schedule(block, unified())
        assert validate_schedule(result.schedule).ok
        assert result.schedule.n_communications == 0


@pytest.mark.parametrize("machine", MACHINES, ids=lambda m: m.name)
@pytest.mark.parametrize("block", KERNELS, ids=lambda b: b.name)
class TestVcsValidity:
    def test_schedules_are_valid(self, block, machine):
        result = VirtualClusterScheduler().schedule(block, machine)
        report = validate_schedule(result.schedule)
        assert report.ok, report.errors


class TestVcsQuality:
    def test_never_worse_than_cars_on_kernels(self):
        """With the CARS fallback the technique is never worse than the
        baseline on the hand-written kernels; on most it is strictly
        better somewhere."""
        strictly_better = 0
        for machine in MACHINES:
            for block in KERNELS:
                cars = CarsScheduler().schedule(block, machine)
                vcs = VirtualClusterScheduler().schedule(block, machine)
                assert vcs.awct <= cars.awct + 1e-9 or vcs.fallback_used
                if vcs.awct < cars.awct - 1e-9:
                    strictly_better += 1
        assert strictly_better >= 3

    def test_paper_example_beats_cars(self):
        """Section 5: the proposed technique schedules the running example
        at AWCT 9.4 on the 2-cluster example machine; CARS stays at 9.8."""
        block = paper_figure1_block()
        machine = example_2cluster()
        cars = CarsScheduler().schedule(block, machine)
        vcs = VirtualClusterScheduler().schedule(block, machine)
        assert vcs.awct == pytest.approx(9.4, abs=1e-6)
        assert cars.awct == pytest.approx(9.8, abs=1e-6)
        assert not vcs.fallback_used

    def test_paper_example_needs_second_awct_target(self):
        """The first target (AWCT 9.1) is proven infeasible and the second
        (9.4) succeeds, mirroring the paper's walk-through."""
        result = VirtualClusterScheduler().schedule(paper_figure1_block(), example_2cluster())
        assert result.awct_target_steps == 2


class TestVcsConfigurations:
    def test_work_budget_triggers_cars_fallback(self):
        config = VcsConfig(work_budget=10)
        result = VirtualClusterScheduler(config).schedule(
            paper_figure1_block(), example_2cluster()
        )
        assert result.fallback_used
        assert result.timed_out
        assert validate_schedule(result.schedule).ok

    def test_no_fallback_returns_empty_schedule(self):
        config = VcsConfig(work_budget=10, fallback_to_cars=False)
        result = VirtualClusterScheduler(config).schedule(
            paper_figure1_block(), example_2cluster()
        )
        assert not result.ok
        assert result.timed_out

    def test_time_limit_respected(self):
        config = VcsConfig(time_limit=0.0)
        result = VirtualClusterScheduler(config).schedule(
            paper_figure1_block(), example_2cluster()
        )
        assert result.fallback_used

    def test_plc_ablation_still_valid(self):
        config = VcsConfig(enable_plc=False)
        for machine in (example_2cluster(), paper_4c_16i_2lat()):
            result = VirtualClusterScheduler(config).schedule(paper_figure1_block(), machine)
            assert validate_schedule(result.schedule).ok

    def test_eager_mapping_ablation_still_valid(self):
        config = VcsConfig(eager_mapping=True)
        result = VirtualClusterScheduler(config).schedule(
            dct_butterfly_kernel(), paper_2c_8i_1lat()
        )
        assert validate_schedule(result.schedule).ok

    def test_matching_ablation_still_valid(self):
        config = VcsConfig(use_matching=False)
        result = VirtualClusterScheduler(config).schedule(
            dct_butterfly_kernel(), paper_4c_16i_1lat()
        )
        assert validate_schedule(result.schedule).ok

    def test_stage1_slack_limit_configurable(self):
        config = VcsConfig(stage1_slack_limit=0.0)
        result = VirtualClusterScheduler(config).schedule(
            paper_figure1_block(), example_2cluster()
        )
        assert validate_schedule(result.schedule).ok

    def test_deterministic(self):
        block = string_search_kernel()
        machine = paper_4c_16i_1lat()
        first = VirtualClusterScheduler().schedule(block, machine)
        second = VirtualClusterScheduler().schedule(block, machine)
        assert first.awct == second.awct
        assert first.schedule.cycles == second.schedule.cycles
        assert first.schedule.clusters == second.schedule.clusters
