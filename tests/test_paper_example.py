"""Integration tests reproducing the paper's worked example (Sections 2-5).

These tests pin down the numbers the paper states explicitly for the Figure 1
superblock: the AWCT formula value, the scheduling-graph structure of Figure
4, the deductions of Section 5 (B1 cannot sit in cycle 6; the forced fusion
of I0/I3/B0; the failure of the 9.1 target and the success of 9.4) and the
final schedule quality relative to a list scheduler.
"""

import pytest

from repro.bounds import ExitBoundEnumerator, awct, min_awct
from repro.deduction import DeductionProcess, SchedulingState, SetExitDeadlines
from repro.machine import example_1cluster_fig4, example_2cluster
from repro.scheduler import CarsScheduler, VirtualClusterScheduler, validate_schedule
from repro.sgraph import SchedulingGraph
from repro.workloads import paper_figure1_block

I0, I1, I2, I3, B0, I4, B1 = range(7)


@pytest.fixture()
def block():
    return paper_figure1_block()


class TestSection2Awct:
    def test_awct_formula(self, block):
        """Section 2.2: B0 in cycle 4 and B1 in cycle 6 give AWCT 8.4."""
        assert awct(block, {B0: 4, B1: 6}) == pytest.approx(8.4)

    def test_min_awct_unclustered(self, block):
        assert min_awct(block) == pytest.approx(8.4)

    def test_exit_probabilities(self, block):
        assert block.exit_probability(B0) == pytest.approx(0.3)
        assert block.exit_probability(B1) == pytest.approx(0.7)


class TestSection3SchedulingGraph:
    def test_figure4_bounds(self, block):
        """Figure 4 annotates estarts 0/2/2/2/4/4/6 for I0..B1."""
        from repro.bounds import compute_estart

        estart = compute_estart(block.graph)
        assert [estart[i] for i in range(7)] == [0, 2, 2, 2, 4, 4, 6]

    def test_figure4_edges(self, block):
        """The SG has an edge between the two branches and between any pair
        not ordered by dependences; I4 has no edge with its producers."""
        sg = SchedulingGraph(block, example_1cluster_fig4())
        assert sg.has_edge(B0, B1)
        assert not sg.has_edge(I1, I4)
        assert not sg.has_edge(I0, I1)
        assert sg.has_edge(I1, I2)

    def test_branch_pair_has_no_same_cycle_combination(self, block):
        sg = SchedulingGraph(block, example_1cluster_fig4())
        distances = [c.distance for c in sg.combinations(B0, B1)]
        assert 0 not in distances


class TestSection5Deductions:
    def test_b1_cannot_sit_in_cycle_6(self, block):
        machine = example_2cluster()
        state = SchedulingState(block, machine, SchedulingGraph(block, machine))
        result = DeductionProcess().apply(state, SetExitDeadlines.from_mapping({B0: 4, B1: 6}))
        assert not result.ok

    def test_forced_virtual_cluster_of_i0_i3_b0(self, block):
        """Figure 9.c: at deadlines (4, 7), I0, I3 and B0 share a virtual
        cluster because no copy fits between them."""
        machine = example_2cluster()
        state = SchedulingState(block, machine, SchedulingGraph(block, machine))
        result = DeductionProcess().apply(state, SetExitDeadlines.from_mapping({B0: 4, B1: 7}))
        assert result.ok
        assert result.state.same_vc(I0, I3)
        assert result.state.same_vc(I3, B0)

    def test_first_two_targets_match_paper(self, block):
        """The enhanced minAWCT probes make the first target 9.1 (B0@4,
        B1@7) and the second 9.4 (B0@5, B1@7), as in the paper."""
        machine = example_2cluster()
        scheduler = VirtualClusterScheduler()
        dp = DeductionProcess()
        from repro.deduction import WorkBudget
        from repro.scheduler.pipeline import ProbeEngine, StageContext

        ctx = StageContext(
            dp=dp,
            budget=WorkBudget(None),
            config=scheduler.config,
            engine=ProbeEngine(scheduler.config),
        )
        tightened = scheduler._tighten_exit_bounds(
            block, machine, SchedulingGraph(block, machine), ctx
        )
        enumerator = ExitBoundEnumerator(block, machine, initial_cycles=tightened)
        targets = enumerator.targets(2)
        assert targets[0].exit_cycles == {B0: 4, B1: 7}
        assert targets[0].awct == pytest.approx(9.1)
        assert targets[1].exit_cycles == {B0: 5, B1: 7}
        assert targets[1].awct == pytest.approx(9.4)


class TestSection5FinalSchedule:
    def test_vcs_schedule_matches_paper_quality(self, block):
        machine = example_2cluster()
        result = VirtualClusterScheduler().schedule(block, machine)
        assert result.awct == pytest.approx(9.4)
        assert validate_schedule(result.schedule).ok
        # Figure 9.d places B0 in cycle 5 and B1 in cycle 7.
        assert result.schedule.cycles[B0] == 5
        assert result.schedule.cycles[B1] == 7
        # One value crosses clusters, as in the example's single "com".
        assert result.schedule.n_communications >= 1

    def test_workload_is_split_across_clusters(self, block):
        machine = example_2cluster()
        result = VirtualClusterScheduler().schedule(block, machine)
        load = result.schedule.cluster_load()
        assert load[0] > 0 and load[1] > 0

    def test_list_scheduling_baseline_is_slower(self, block):
        machine = example_2cluster()
        cars = CarsScheduler().schedule(block, machine)
        vcs = VirtualClusterScheduler().schedule(block, machine)
        assert vcs.awct < cars.awct
